//! Integration test: the Figure 4/5 lowering pipeline preserves behaviour.
//!
//! The accumulator design (compiled from SystemVerilog by Moore) is
//! simulated in its Behavioural form, then lowered to Structural LLHD and
//! simulated again — with both engines. All four traces must agree.

use llhd::ir::Module;
use llhd::verifier::{module_dialect, verify_module, Dialect};
use llhd_opt::pipeline::{lower_to_structural, LoweringOptions};
use llhd_sim::api::{EngineKind, SimSession};
use llhd_sim::{SimConfig, SimResult};
use llhd_workspace::*;

fn run(module: &Module, top: &str, config: &SimConfig, engine: EngineKind) -> SimResult {
    llhd_blaze::register();
    SimSession::builder(module, top)
        .engine(engine)
        .config(config.clone())
        .build()
        .expect("session builds")
        .run()
        .expect("simulation runs")
}

#[test]
fn behavioural_and_structural_accumulator_traces_match() {
    let module = llhd_designs::accumulator_example().expect("accumulator compiles");
    assert!(verify_module(&module).is_ok());
    assert_eq!(module_dialect(&module), Dialect::Behavioural);

    let mut lowered = module.clone();
    let report = lower_to_structural(&mut lowered, &LoweringOptions::default());
    assert_eq!(report.lowered_processes + report.desequentialized_processes, 2);
    assert!(verify_module(&lowered).is_ok());

    let config = SimConfig::until_nanos(150);
    let behavioural = run(&module, "acc_tb", &config, EngineKind::Interpret);
    let structural = run(&lowered, "acc_tb", &config, EngineKind::Interpret);
    let behavioural_blaze = run(&module, "acc_tb", &config, EngineKind::Compile);
    let structural_blaze = run(&lowered, "acc_tb", &config, EngineKind::Compile);

    assert!(behavioural.trace.equivalent(&structural.trace));
    assert!(behavioural.trace.equivalent(&behavioural_blaze.trace));
    assert!(behavioural.trace.equivalent(&structural_blaze.trace));

    // And the accumulator actually accumulated.
    let final_q = behavioural
        .trace
        .changes_of("q")
        .last()
        .and_then(|e| e.value.to_u64())
        .unwrap_or(0);
    assert!(final_q >= 10, "q reached {}", final_q);
}

#[test]
fn every_design_lowering_is_sound() {
    // For each benchmark design, lowering must keep the module verifiable
    // and must not change simulation behaviour, even when some processes are
    // rejected (testbenches).
    for design in llhd_designs::all_designs() {
        let module = design.build().unwrap();
        let mut lowered = module.clone();
        lower_to_structural(&mut lowered, &LoweringOptions::default());
        verify_module(&lowered)
            .unwrap_or_else(|e| panic!("{} fails to verify after lowering: {:?}", design.name, e));
        let config = SimConfig::until_nanos(design.sim_time_ns(15))
            .with_trace_filter(&[design.probe_signal]);
        let before = run(&module, design.top, &config, EngineKind::Interpret);
        let after = run(&lowered, design.top, &config, EngineKind::Interpret);
        assert!(
            before.trace.equivalent(&after.trace),
            "{}: lowering changed behaviour",
            design.name
        );
    }
}
