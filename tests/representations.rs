//! Integration test: the three representations (in-memory, text, bitcode)
//! are equivalent for every benchmark design, as required by §2 of the
//! paper.

use llhd::assembly::{parse_module, write_module};
use llhd::bitcode::{decode_module, encode_module};
use llhd::verifier::verify_module;
use llhd_workspace::*;

#[test]
fn text_roundtrip_for_all_designs() {
    for design in llhd_designs::all_designs() {
        let module = design.build().unwrap();
        let text = write_module(&module);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: text does not reparse: {}", design.name, e));
        assert_eq!(
            write_module(&reparsed),
            text,
            "{}: text round-trip is not stable",
            design.name
        );
        assert!(verify_module(&reparsed).is_ok());
    }
}

#[test]
fn bitcode_roundtrip_for_all_designs() {
    for design in llhd_designs::all_designs() {
        let module = design.build().unwrap();
        let text = write_module(&module);
        let bytes = encode_module(&module);
        let decoded = decode_module(&bytes)
            .unwrap_or_else(|e| panic!("{}: bitcode does not decode: {}", design.name, e));
        assert_eq!(
            write_module(&decoded),
            text,
            "{}: bitcode round-trip changes the module",
            design.name
        );
        assert!(
            bytes.len() < text.len(),
            "{}: bitcode ({} B) should be denser than text ({} B)",
            design.name,
            bytes.len(),
            text.len()
        );
    }
}

#[test]
fn moore_output_is_behavioural_and_parseable() {
    let module = llhd_designs::accumulator_example().unwrap();
    let text = write_module(&module);
    assert!(text.contains("proc @"));
    assert!(text.contains("entity @"));
    let reparsed = parse_module(&text).unwrap();
    assert_eq!(reparsed.num_units(), module.num_units());
}
