//! Property-based tests on the core data structures and invariants, driven
//! by the in-repo deterministic helper in `llhd_workspace::propcheck`.

use llhd::eval::eval_binary;
use llhd::ir::Opcode;
use llhd::value::{ApInt, ConstValue, LogicBit, LogicVector, TimeValue};
use llhd_workspace::propcheck::forall;
use llhd_workspace::{prop_assert, prop_assert_eq};

/// ApInt arithmetic agrees with native u64 arithmetic modulo 2^width for
/// widths up to 64.
#[test]
fn apint_matches_u64_model() {
    forall("apint matches u64 model", |rng| {
        let a = rng.u64();
        let b = rng.u64();
        let width = rng.range_usize(1, 64);
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let (am, bm) = (a & mask, b & mask);
        let x = ApInt::from_u64(width, am);
        let y = ApInt::from_u64(width, bm);
        prop_assert_eq!(x.add(&y).to_u64(), am.wrapping_add(bm) & mask);
        prop_assert_eq!(x.sub(&y).to_u64(), am.wrapping_sub(bm) & mask);
        prop_assert_eq!(x.mul(&y).to_u64(), am.wrapping_mul(bm) & mask);
        prop_assert_eq!(x.and(&y).to_u64(), am & bm);
        prop_assert_eq!(x.or(&y).to_u64(), am | bm);
        prop_assert_eq!(x.xor(&y).to_u64(), am ^ bm);
        if let (Some(quotient), Some(remainder)) = (am.checked_div(bm), am.checked_rem(bm)) {
            prop_assert_eq!(x.udiv(&y).to_u64(), quotient);
            prop_assert_eq!(x.urem(&y).to_u64(), remainder);
        }
        prop_assert_eq!(x.ucmp(&y), am.cmp(&bm));
        Ok(())
    });
}

/// Wide ApInt addition/subtraction are inverses, and decimal printing
/// round-trips.
#[test]
fn apint_wide_roundtrips() {
    forall("wide apint roundtrips", |rng| {
        let limbs = rng.vec(1, 3, |r| r.u64());
        let width = rng.range_usize(65, 192);
        let value = ApInt::from_limbs(width, limbs);
        let one = ApInt::one(width);
        prop_assert_eq!(value.add(&one).sub(&one), value.clone());
        prop_assert_eq!(value.neg().neg(), value.clone());
        let printed = value.to_string_unsigned();
        prop_assert_eq!(ApInt::from_str_radix10(width, &printed), Some(value));
        Ok(())
    });
}

/// The shared evaluator's comparisons are consistent: exactly one of `ult`,
/// `eq`, `ugt` holds.
#[test]
fn comparison_trichotomy() {
    forall("comparison trichotomy", |rng| {
        let a = rng.u32();
        let b = rng.u32();
        let x = ConstValue::int(32, a as u64);
        let y = ConstValue::int(32, b as u64);
        let lt = eval_binary(Opcode::Ult, &x, &y).unwrap().is_truthy();
        let eq = eval_binary(Opcode::Eq, &x, &y).unwrap().is_truthy();
        let gt = eval_binary(Opcode::Ugt, &x, &y).unwrap().is_truthy();
        prop_assert_eq!(usize::from(lt) + usize::from(eq) + usize::from(gt), 1);
        Ok(())
    });
}

/// IEEE 1164 resolution is commutative and idempotent for every pair of
/// logic states, and logic vector string printing round-trips.
#[test]
fn logic_resolution_properties() {
    forall("logic resolution properties", |rng| {
        let x = LogicBit::ALL[rng.range_usize(0, 8)];
        let y = LogicBit::ALL[rng.range_usize(0, 8)];
        prop_assert_eq!(x.resolve(y), y.resolve(x));
        // Resolution is idempotent for every driver state except don't-care,
        // which the IEEE 1164 table resolves to X even against itself.
        if x != LogicBit::DontCare {
            prop_assert_eq!(x.resolve(x), x);
        } else {
            prop_assert_eq!(x.resolve(x), LogicBit::Unknown);
        }
        let bits = rng.vec(1, 15, |r| LogicBit::ALL[r.range_usize(0, 8)]);
        let vector = LogicVector::from_bits(bits);
        let printed = vector.to_string();
        prop_assert_eq!(LogicVector::from_str(&printed), Some(vector));
        Ok(())
    });
}

/// Time values order consistently with their components and advancing by a
/// physical delay is monotone.
#[test]
fn time_ordering() {
    forall("time ordering", |rng| {
        let a = rng.u32();
        let b = rng.u32();
        let d = rng.range_u64(1, 999) as u32;
        let ta = TimeValue::from_femtos(a as u128);
        let tb = TimeValue::from_femtos(b as u128);
        prop_assert_eq!(ta < tb, a < b);
        let delay = TimeValue::from_femtos(d as u128);
        prop_assert!(ta.advance_by(&delay) > ta);
        Ok(())
    });
}

/// Assembly and bitcode round-trips hold for randomly shaped (but
/// well-formed) arithmetic functions.
#[test]
fn random_function_roundtrips() {
    use llhd::ir::{Module, Signature, UnitBuilder, UnitData, UnitKind, UnitName};
    use llhd::ty::int_ty;

    forall("random function roundtrips", |rng| {
        let ops = rng.vec(1, 39, |r| r.range_usize(0, 5));
        let width = rng.range_usize(1, 63);

        let mut unit = UnitData::new(
            UnitKind::Function,
            UnitName::global("random"),
            Signature::new_func(vec![int_ty(width), int_ty(width)], int_ty(width)),
        );
        let a = unit.arg_value(0);
        let b = unit.arg_value(1);
        {
            let mut builder = UnitBuilder::new(&mut unit);
            let entry = builder.block("entry");
            builder.append_to(entry);
            let mut acc = a;
            for &op in &ops {
                acc = match op {
                    0 => builder.add(acc, b),
                    1 => builder.sub(acc, b),
                    2 => builder.and(acc, b),
                    3 => builder.or(acc, b),
                    4 => builder.xor(acc, b),
                    _ => builder.umul(acc, b),
                };
            }
            builder.ret_value(acc);
        }
        let mut module = Module::new();
        module.add_unit(unit);
        prop_assert!(llhd::verifier::verify_module(&module).is_ok());
        let text = llhd::assembly::write_module(&module);
        let reparsed = llhd::assembly::parse_module(&text).unwrap();
        prop_assert_eq!(llhd::assembly::write_module(&reparsed), text.clone());
        let bytes = llhd::bitcode::encode_module(&module);
        let decoded = llhd::bitcode::decode_module(&bytes).unwrap();
        prop_assert_eq!(llhd::assembly::write_module(&decoded), text);
        Ok(())
    });
}

/// The shared scheduler's calendar event queue pops events in
/// nondecreasing `TimeValue` order, never loses or invents events, and
/// recycles its buckets instead of growing without bound.
#[test]
fn event_queue_pops_in_nondecreasing_time_order() {
    use llhd_sim::design::SignalId;
    use llhd_sim::sched::EventQueue;

    forall("event queue pops in nondecreasing time order", |rng| {
        let mut queue = EventQueue::new();
        let mut scheduled = 0usize;
        let mut popped = 0usize;
        let mut last_popped: Option<TimeValue> = None;
        let (mut drives, mut wakes) = (vec![], vec![]);
        // Interleave bursts of schedules (at random, possibly duplicate
        // timestamps) with pops, like a running simulation would.
        let rounds = rng.range_usize(1, 20);
        for _ in 0..rounds {
            let burst = rng.range_usize(0, 8);
            for _ in 0..burst {
                // A coarse timestamp grid provokes same-instant batching.
                let time = TimeValue::new(
                    rng.range_u64(0, 9) as u128 * 1_000,
                    rng.range_u64(0, 3) as u32,
                    rng.range_u64(0, 2) as u32,
                );
                // Events scheduled in the past of an already-popped instant
                // would break monotonicity by construction; a real engine
                // never does that, so skip them here too.
                if last_popped.is_some_and(|t| time <= t) {
                    continue;
                }
                if rng.range_u64(0, 3) == 0 {
                    queue.schedule_wake(time, rng.u32() % 16, rng.u64());
                } else {
                    let sig = SignalId(rng.range_usize(0, 7));
                    queue.schedule_drive(time, sig, ConstValue::int(8, rng.range_u64(0, 255)));
                }
                scheduled += 1;
            }
            if rng.range_u64(0, 1) == 0 {
                drives.clear();
                wakes.clear();
                if let Some(t) = queue.pop_next(&mut drives, &mut wakes) {
                    if let Some(prev) = last_popped {
                        prop_assert!(
                            t > prev,
                            "popped {:?} after {:?}",
                            t,
                            prev
                        );
                    }
                    last_popped = Some(t);
                    popped += drives.len() + wakes.len();
                    prop_assert!(!drives.is_empty() || !wakes.is_empty());
                }
            }
        }
        // Drain the rest: strictly increasing instants, all events seen.
        loop {
            drives.clear();
            wakes.clear();
            match queue.pop_next(&mut drives, &mut wakes) {
                None => break,
                Some(t) => {
                    if let Some(prev) = last_popped {
                        prop_assert!(t > prev, "popped {:?} after {:?}", t, prev);
                    }
                    last_popped = Some(t);
                    popped += drives.len() + wakes.len();
                }
            }
        }
        prop_assert_eq!(popped, scheduled);
        prop_assert!(queue.is_empty());
        // Each schedule allocates at most one bucket, so this can never
        // flake; the tight recycling guarantee is covered by the
        // deterministic `buckets_are_reused_after_pops` unit test in
        // `llhd_sim::sched`.
        prop_assert!(queue.allocated_buckets() <= scheduled.max(1));
        Ok(())
    });
}

/// Superinstruction-fused execution is observably identical to the
/// unfused/unspecialized path: both engines are driven through seeded
/// random step/peek/poke schedules in lockstep, and every intermediate
/// signal value, the simulation clock, and the final trace must agree
/// byte for byte.
#[test]
fn fused_and_unfused_blaze_agree_under_random_schedules() {
    use llhd::assembly::parse_module;
    use llhd::value::ConstValue;
    use llhd_blaze::{compile_design_with, BlazeOptions, BlazeSimulator};
    use llhd_sim::{elaborate, SimConfig};
    use std::sync::Arc;

    // A design that exercises the fusion patterns: array+mux selection,
    // compare+drive, compare+branch in a looping process, and memory ops.
    let module = parse_module(
        r#"
        entity @alu (i8$ %a, i8$ %b, i1$ %sel) -> (i8$ %y, i1$ %flag) {
            %ap = prb i8$ %a
            %bp = prb i8$ %b
            %sp = prb i1$ %sel
            %sum = add i8 %ap, %bp
            %xorv = xor i8 %ap, %bp
            %ys = array [%sum, %xorv]
            %y0 = mux [2 x i8] %ys, %sp
            %delay = const time 1ns
            drv i8$ %y, %y0 after %delay
            %limit = const i8 100
            %big = ugt i8 %sum, %limit
            drv i1$ %flag, %big after %delay
        }
        proc @pulse () -> (i8$ %a) {
        entry:
            %zero = const i8 0
            %one = const i8 1
            %step = const time 2ns
            %i = var i8 %zero
            br %loop
        loop:
            %cur = ld i8* %i
            %next = add i8 %cur, %one
            st i8* %i, %next
            drv i8$ %a, %next after %step
            %cap = const i8 50
            %more = ult i8 %next, %cap
            br %more, %end, %pause
        pause:
            wait %loop for %step
        end:
            halt
        }
        entity @top () -> () {
            %z8 = const i8 0
            %z1 = const i1 0
            %a = sig i8 %z8
            %b = sig i8 %z8
            %sel = sig i1 %z1
            %y = sig i8 %z8
            %flag = sig i1 %z1
            inst @alu (%a, %b, %sel) -> (%y, %flag)
            inst @pulse () -> (%a)
        }
        "#,
    )
    .unwrap();
    let elaborated = Arc::new(elaborate(&module, "top").unwrap());
    let pokeable = ["top.b", "top.sel"];
    let observable = ["top.a", "top.b", "top.sel", "top.y", "top.flag"];
    let signals: Vec<_> = observable
        .iter()
        .map(|name| elaborated.signal_by_name(name).unwrap())
        .collect();

    forall("fused blaze matches unfused under schedules", |rng| {
        let config = SimConfig::until_nanos(rng.range_u64(20, 200) as u128);
        let fused = compile_design_with(
            &module,
            Arc::clone(&elaborated),
            BlazeOptions::default(),
        )
        .unwrap();
        let generic = compile_design_with(
            &module,
            Arc::clone(&elaborated),
            BlazeOptions {
                fuse: false,
                specialize: false,
                islands: true,
            },
        )
        .unwrap();
        let mut fused = BlazeSimulator::new(fused, config.clone());
        let mut generic = BlazeSimulator::new(generic, config);
        let actions = rng.range_usize(1, 40);
        for _ in 0..actions {
            match rng.range_u64(0, 3) {
                // Advance both engines one scheduler cycle.
                0 | 1 => {
                    let a = fused.step().unwrap();
                    let b = generic.step().unwrap();
                    prop_assert_eq!(a, b);
                }
                // Poke the same random value into both.
                2 => {
                    let name = pokeable[rng.range_usize(0, pokeable.len() - 1)];
                    let sig = elaborated.signal_by_name(name).unwrap();
                    let value = if name.ends_with("sel") {
                        ConstValue::bool(rng.range_u64(0, 1) == 1)
                    } else {
                        ConstValue::int(8, rng.range_u64(0, 255))
                    };
                    fused.poke(sig, value.clone());
                    generic.poke(sig, value);
                }
                // Peek every observable signal; values must agree.
                _ => {
                    for &sig in &signals {
                        prop_assert_eq!(fused.signal_value(sig), generic.signal_value(sig));
                    }
                }
            }
            prop_assert_eq!(fused.time(), generic.time());
        }
        // Run both out and require byte-identical traces and statistics.
        while fused.step().unwrap() {
            prop_assert!(generic.step().unwrap());
        }
        prop_assert!(!generic.step().unwrap());
        let fused = fused.finish();
        let generic = generic.finish();
        prop_assert_eq!(fused.trace.events(), generic.trace.events());
        prop_assert_eq!(fused.signal_changes, generic.signal_changes);
        prop_assert_eq!(fused.end_time, generic.end_time);
        Ok(())
    });
}

/// Checkpointing at a seeded random step and restoring into a *fresh*
/// engine is invisible: the resumed run's final trace, end time, and
/// change count are byte-identical to an uninterrupted run of the same
/// horizon — on both engines.
#[test]
fn checkpoint_restore_is_invisible_at_any_cut_point() {
    use llhd::assembly::parse_module;
    use llhd_sim::api::{EngineKind, SimSession};
    use llhd_sim::SimConfig;

    llhd_blaze::register();
    // A process with live variables and a resume point, feeding an entity,
    // so the checkpoint has to carry instance state, pending events, and
    // scheduler bookkeeping — not just signal values.
    let module = parse_module(
        r#"
        entity @scale (i8$ %a) -> (i8$ %y) {
            %ap = prb i8$ %a
            %two = const i8 2
            %yv = umul i8 %ap, %two
            %delay = const time 1ns
            drv i8$ %y, %yv after %delay
        }
        proc @pulse () -> (i8$ %a) {
        entry:
            %zero = const i8 0
            %one = const i8 1
            %step = const time 2ns
            %i = var i8 %zero
            br %loop
        loop:
            %cur = ld i8* %i
            %next = add i8 %cur, %one
            st i8* %i, %next
            drv i8$ %a, %next after %step
            wait %loop for %step
        }
        entity @top () -> () {
            %z8 = const i8 0
            %a = sig i8 %z8
            %y = sig i8 %z8
            inst @scale (%a) -> (%y)
            inst @pulse () -> (%a)
        }
        "#,
    )
    .unwrap();

    forall("checkpoint restore is invisible at any cut point", |rng| {
        let config = SimConfig::until_nanos(rng.range_u64(10, 80) as u128);
        // Cut anywhere from "before the first step" deep into the run.
        let cut = rng.range_usize(0, 30);
        for engine in [EngineKind::Interpret, EngineKind::Compile] {
            let full = SimSession::builder(&module, "top")
                .engine(engine)
                .config(config.clone())
                .build()
                .unwrap()
                .run()
                .unwrap();
            let mut first = SimSession::builder(&module, "top")
                .engine(engine)
                .config(config.clone())
                .build()
                .unwrap();
            for _ in 0..cut {
                if !first.step().unwrap() {
                    break;
                }
            }
            let state = first.checkpoint().unwrap();
            drop(first);
            let mut resumed = SimSession::builder(&module, "top")
                .engine(engine)
                .config(config.clone())
                .build()
                .unwrap();
            resumed.restore(&state).unwrap();
            while resumed.step().unwrap() {}
            let result = resumed.finish().unwrap();
            prop_assert_eq!(full.trace.events(), result.trace.events());
            prop_assert_eq!(full.end_time, result.end_time.clone());
            prop_assert_eq!(full.signal_changes, result.signal_changes);
        }
        Ok(())
    });
}

/// Island-parallel instants against the serial loop, in lockstep, under
/// seeded random interactive schedules (step / peek / poke) on a seeded
/// random generated design — both engines. Every intermediate peek, the
/// time after every step, and the final trace must be byte-identical:
/// the `threads` knob may change speed, never a single observable value.
#[test]
fn island_parallel_matches_serial_under_random_schedules() {
    use llhd::value::ConstValue;
    use llhd_designs::{fir_bank, noc_mesh};
    use llhd_sim::api::{EngineKind, SimSession};
    use llhd_sim::SimConfig;

    llhd_blaze::register();
    forall("island parallel matches serial under schedules", |rng| {
        // A fresh seeded design each iteration: lanes/rows vary the
        // island count, the generator seed varies weights and rates.
        let design = if rng.range_u64(0, 1) == 0 {
            fir_bank(rng.range_usize(2, 5), rng.range_usize(4, 10), rng.u64())
        } else {
            noc_mesh(rng.range_usize(2, 4), rng.range_usize(2, 4), rng.u64())
        };
        let module = design.build().unwrap();
        let config = SimConfig::until_nanos(rng.range_u64(20, 120) as u128);
        let threads = rng.range_usize(2, 8);
        // Poke targets: lane 0/1 data inputs exist in both families
        // (fir `x{lane}`, noc link heads `l{row}_0`).
        let pokeable: [String; 2] = if design.name.starts_with("fir-bank") {
            [format!("{}.x0", design.top), format!("{}.x1", design.top)]
        } else {
            [format!("{}.l0_0", design.top), format!("{}.l1_0", design.top)]
        };
        let probe = format!("{}.{}", design.top, design.probe_signal);
        for engine in [EngineKind::Interpret, EngineKind::Compile] {
            let mut serial = SimSession::builder(&module, &design.top)
                .engine(engine)
                .config(config.clone())
                .build()
                .unwrap();
            let mut parallel = SimSession::builder(&module, &design.top)
                .engine(engine)
                .config(config.clone())
                .threads(threads)
                .build()
                .unwrap();
            let actions = rng.range_usize(1, 30);
            for _ in 0..actions {
                match rng.range_u64(0, 3) {
                    0 | 1 => {
                        let a = serial.step().unwrap();
                        let b = parallel.step().unwrap();
                        prop_assert_eq!(a, b);
                    }
                    2 => {
                        let name = &pokeable[rng.range_usize(0, 1)];
                        let value = ConstValue::int(16, rng.range_u64(0, 0xffff));
                        serial.poke(name, value.clone()).unwrap();
                        parallel.poke(name, value).unwrap();
                    }
                    _ => {
                        prop_assert_eq!(
                            serial.peek(&probe).unwrap(),
                            parallel.peek(&probe).unwrap()
                        );
                        for name in &pokeable {
                            prop_assert_eq!(
                                serial.peek(name).unwrap(),
                                parallel.peek(name).unwrap()
                            );
                        }
                    }
                }
                prop_assert_eq!(serial.time(), parallel.time());
            }
            while serial.step().unwrap() {
                prop_assert!(parallel.step().unwrap());
            }
            prop_assert!(!parallel.step().unwrap());
            let serial = serial.finish().unwrap();
            let parallel = parallel.finish().unwrap();
            prop_assert_eq!(serial.trace.events(), parallel.trace.events());
            prop_assert_eq!(serial.signal_changes, parallel.signal_changes);
            prop_assert_eq!(serial.activations, parallel.activations);
            prop_assert_eq!(serial.end_time, parallel.end_time);
        }
        Ok(())
    });
}

/// A checkpoint cut at a seeded random step of a *parallel* run, restored
/// into a fresh parallel session, continues to the byte-identical trace
/// of an uninterrupted *serial* run — both engines. This pins down the
/// v2 header round-trip (the island-plan digest must accept itself) and
/// that the parallel instant loop replays drives in serial order even
/// across a mid-run state transplant.
#[test]
fn parallel_checkpoint_restore_matches_serial_run_at_any_cut() {
    use llhd_designs::fir_bank;
    use llhd_sim::api::{EngineKind, SimSession};
    use llhd_sim::SimConfig;

    llhd_blaze::register();
    let design = fir_bank(4, 8, 21);
    let module = design.build().unwrap();

    forall("parallel checkpoint restore matches serial", |rng| {
        let config = SimConfig::until_nanos(rng.range_u64(10, 80) as u128);
        let cut = rng.range_usize(0, 30);
        let threads = rng.range_usize(2, 6);
        for engine in [EngineKind::Interpret, EngineKind::Compile] {
            let serial = SimSession::builder(&module, &design.top)
                .engine(engine)
                .config(config.clone())
                .build()
                .unwrap()
                .run()
                .unwrap();
            let mut first = SimSession::builder(&module, &design.top)
                .engine(engine)
                .config(config.clone())
                .threads(threads)
                .build()
                .unwrap();
            for _ in 0..cut {
                if !first.step().unwrap() {
                    break;
                }
            }
            let state = first.checkpoint().unwrap();
            drop(first);
            let mut resumed = SimSession::builder(&module, &design.top)
                .engine(engine)
                .config(config.clone())
                .threads(threads)
                .build()
                .unwrap();
            resumed.restore(&state).unwrap();
            while resumed.step().unwrap() {}
            let result = resumed.finish().unwrap();
            prop_assert_eq!(serial.trace.events(), result.trace.events());
            prop_assert_eq!(serial.end_time, result.end_time.clone());
            prop_assert_eq!(serial.signal_changes, result.signal_changes);
        }
        Ok(())
    });
}

/// Checkpoint version compatibility: a synthesized version-1 header (no
/// island-plan digest) still restores — the engines just fall back to the
/// serial instant loop — while a version-2 header whose digest does not
/// match the live partition is rejected with a clear message instead of
/// replaying events under the wrong merge order.
#[test]
fn checkpoint_v1_loads_and_mismatched_plan_hash_is_rejected() {
    use llhd::bitcode::{read_varint, write_varint};
    use llhd_designs::fir_bank;
    use llhd_sim::api::{EngineKind, EngineState, SimSession};
    use llhd_sim::SimConfig;

    llhd_blaze::register();
    let design = fir_bank(3, 6, 13);
    let module = design.build().unwrap();
    let config = SimConfig::until_nanos(60);

    // Split a v2 checkpoint into (header-before-digest, digest, body).
    let split = |bytes: &[u8]| -> (usize, usize) {
        assert_eq!(&bytes[..4], b"LHCK");
        assert_eq!(bytes[4], 2, "checkpoints are version 2");
        let mut pos = 5;
        let name_len = read_varint(bytes, &mut pos).unwrap() as usize;
        pos += name_len;
        read_varint(bytes, &mut pos).unwrap(); // num_signals
        read_varint(bytes, &mut pos).unwrap(); // num_instances
        let digest_start = pos;
        read_varint(bytes, &mut pos).unwrap(); // island-plan digest
        (digest_start, pos)
    };

    for engine in [EngineKind::Interpret, EngineKind::Compile] {
        let serial = SimSession::builder(&module, &design.top)
            .engine(engine)
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let mut session = SimSession::builder(&module, &design.top)
            .engine(engine)
            .config(config.clone())
            .threads(4)
            .build()
            .unwrap();
        for _ in 0..5 {
            session.step().unwrap();
        }
        let v2 = session.checkpoint().unwrap();
        drop(session);
        let (digest_start, digest_end) = split(v2.as_bytes());

        // Downgrade to version 1: drop the digest varint. The restored
        // run must still finish byte-identical (it runs serially, and
        // serial == parallel by the differential above).
        let mut v1 = Vec::new();
        v1.extend_from_slice(&v2.as_bytes()[..4]);
        v1.push(1);
        v1.extend_from_slice(&v2.as_bytes()[5..digest_start]);
        v1.extend_from_slice(&v2.as_bytes()[digest_end..]);
        let v1 = EngineState::from_bytes(v1).expect("synthesized v1 header parses");
        assert_eq!(v1.island_plan_hash().unwrap(), None);
        let mut resumed = SimSession::builder(&module, &design.top)
            .engine(engine)
            .config(config.clone())
            .threads(4)
            .build()
            .unwrap();
        resumed.restore(&v1).expect("v1 checkpoint restores");
        while resumed.step().unwrap() {}
        let result = resumed.finish().unwrap();
        assert_eq!(serial.trace.events(), result.trace.events());

        // Tamper with the digest: same design shape, different partition
        // fingerprint. Restore must fail, and say why.
        let hash = {
            let mut pos = digest_start;
            read_varint(v2.as_bytes(), &mut pos).unwrap()
        };
        let mut tampered = v2.as_bytes()[..digest_start].to_vec();
        write_varint(&mut tampered, hash ^ 1);
        tampered.extend_from_slice(&v2.as_bytes()[digest_end..]);
        let tampered = EngineState::from_bytes(tampered).expect("tampered header still parses");
        let mut victim = SimSession::builder(&module, &design.top)
            .engine(engine)
            .config(config.clone())
            .build()
            .unwrap();
        let err = victim.restore(&tampered).unwrap_err();
        assert!(
            err.to_string().contains("island plan"),
            "unexpected error: {}",
            err
        );
    }
}
