//! Dead Code Elimination (DCE, §4.1).
//!
//! Removes pure instructions whose results are unused, and basic blocks that
//! are unreachable from the entry block.

use llhd::analysis::ControlFlowGraph;
use llhd::ir::{Opcode, UnitData, UnitKind};
use std::collections::HashSet;

/// Run dead code elimination on a unit. Returns `true` if anything changed.
pub fn run(unit: &mut UnitData) -> bool {
    let mut changed = false;
    changed |= remove_unreachable_blocks(unit);
    changed |= remove_dead_instructions(unit);
    changed
}

/// Remove blocks that cannot be reached from the entry block. Only applies
/// to control flow units; the single body block of an entity is always live.
pub fn remove_unreachable_blocks(unit: &mut UnitData) -> bool {
    if unit.kind() == UnitKind::Entity {
        return false;
    }
    let cfg = ControlFlowGraph::new(unit);
    let dead = cfg.unreachable_blocks(unit);
    let changed = !dead.is_empty();
    for block in dead {
        // Drop the instructions first so value uses inside the dead region do
        // not keep anything alive.
        for inst in unit.insts(block) {
            unit.remove_inst(inst);
        }
        unit.remove_block(block);
    }
    changed
}

/// Remove pure instructions (and unused probes, which have no side effects)
/// with no remaining uses. Iterates to a fixed point so chains of dead
/// computations disappear entirely.
pub fn remove_dead_instructions(unit: &mut UnitData) -> bool {
    let mut changed = false;
    loop {
        // Collect all used values.
        let mut used: HashSet<_> = HashSet::new();
        for inst in unit.all_insts() {
            for value in unit.inst_data(inst).all_args() {
                used.insert(value);
            }
        }
        let mut removed_any = false;
        for inst in unit.all_insts() {
            let data = unit.inst_data(inst);
            if !(data.opcode.is_pure() || data.opcode == Opcode::Prb) {
                continue;
            }
            match unit.get_inst_result(inst) {
                Some(result) if !used.contains(&result) => {
                    unit.remove_inst(inst);
                    removed_any = true;
                }
                _ => {}
            }
        }
        changed |= removed_any;
        if !removed_any {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;
    use llhd::ir::Opcode;

    #[test]
    fn removes_dead_arithmetic() {
        let mut module = parse_module(
            r#"
            func @f (i32 %x) i32 {
            entry:
                %one = const i32 1
                %dead1 = add i32 %x, %one
                %dead2 = umul i32 %dead1, %dead1
                %live = sub i32 %x, %one
                ret i32 %live
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        assert_eq!(unit.all_insts().len(), 3); // const, sub, ret
        assert!(!unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::Umul));
    }

    #[test]
    fn keeps_side_effecting_instructions() {
        let mut module = parse_module(
            r#"
            proc @p (i8$ %a) -> (i8$ %q) {
            entry:
                %ap = prb i8$ %a
                %delay = const time 1ns
                drv i8$ %q, %ap after %delay
                wait %entry, %a
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        let before = module.unit(id).all_insts().len();
        run(module.unit_mut(id));
        assert_eq!(module.unit(id).all_insts().len(), before);
    }

    #[test]
    fn removes_unreachable_blocks() {
        let mut module = parse_module(
            r#"
            func @f (i32 %x) void {
            entry:
                ret
            dead:
                %one = const i32 1
                %y = add i32 %x, %one
                ret
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        assert_eq!(module.unit(id).blocks().len(), 1);
    }

    #[test]
    fn unused_probe_is_removed() {
        // Probing a signal has no side effects, so an unused probe is dead.
        let mut module = parse_module(
            r#"
            proc @p (i8$ %a) -> () {
            entry:
                %ap = prb i8$ %a
                halt
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        assert_eq!(module.unit(id).all_insts().len(), 1);
    }
}
