//! Promotion of stack variables to SSA values (§2.5.8).
//!
//! The paper requires bounded stack and heap allocations to be promotable to
//! values so that lowering to Structural LLHD can reject any process that
//! still touches memory. This pass implements store-to-load forwarding
//! within basic blocks and removes allocations that end up without any
//! remaining loads. Variables whose loads span multiple blocks are left in
//! place (and consequently rejected by the structural lowering), which
//! matches the paper's treatment of non-promotable memory.

use llhd::ir::{Opcode, UnitData, Value};
use std::collections::HashMap;

/// Run variable-to-value promotion on a unit. Returns `true` if anything
/// changed.
pub fn run(unit: &mut UnitData) -> bool {
    let mut changed = false;
    changed |= forward_stores_to_loads(unit);
    changed |= remove_dead_variables(unit);
    changed
}

/// Replace loads with the value of the most recent store to the same
/// variable within the same basic block.
fn forward_stores_to_loads(unit: &mut UnitData) -> bool {
    let mut changed = false;
    for block in unit.blocks() {
        // Current known value per pointer.
        let mut current: HashMap<Value, Value> = HashMap::new();
        for inst in unit.insts(block) {
            let data = unit.inst_data(inst).clone();
            match data.opcode {
                Opcode::Var => {
                    // A fresh variable holds its initialiser.
                    if let Some(result) = unit.get_inst_result(inst) {
                        current.insert(result, data.args[0]);
                    }
                }
                Opcode::St => {
                    current.insert(data.args[0], data.args[1]);
                }
                Opcode::Ld => {
                    if let Some(&value) = current.get(&data.args[0]) {
                        let result = unit.inst_result(inst);
                        unit.replace_value_uses(result, value);
                        unit.remove_inst(inst);
                        changed = true;
                    }
                }
                Opcode::Call => {
                    // A call may modify memory through pointers passed to it.
                    for arg in &data.args {
                        current.remove(arg);
                    }
                }
                _ => {}
            }
        }
    }
    changed
}

/// Remove `var`/`alloc` instructions (and their stores) once no loads remain.
fn remove_dead_variables(unit: &mut UnitData) -> bool {
    let mut changed = false;
    loop {
        let mut local = false;
        for inst in unit.all_insts() {
            if !unit.has_inst(inst) {
                continue;
            }
            let data = unit.inst_data(inst);
            if !matches!(data.opcode, Opcode::Var | Opcode::Halloc) {
                continue;
            }
            let pointer = match unit.get_inst_result(inst) {
                Some(p) => p,
                None => continue,
            };
            let uses = unit.value_uses(pointer);
            // Only removable if every use is a store to (not of) the pointer
            // or a free.
            let all_dead = uses.iter().all(|&u| {
                let d = unit.inst_data(u);
                (d.opcode == Opcode::St && d.args[0] == pointer && d.args[1] != pointer)
                    || d.opcode == Opcode::Free
            });
            if !all_dead {
                continue;
            }
            for u in uses {
                unit.remove_inst(u);
            }
            unit.remove_inst(inst);
            local = true;
        }
        changed |= local;
        if !local {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;

    #[test]
    fn forwards_store_to_load_in_same_block() {
        let mut module = parse_module(
            r#"
            func @f (i32 %x) i32 {
            entry:
                %p = var i32 %x
                %one = const i32 1
                st i32* %p, %one
                %v = ld i32* %p
                %sum = add i32 %v, %x
                ret i32 %sum
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        // No loads remain; the add uses the stored constant, and the
        // variable (now only stored to) is removed entirely.
        assert!(!unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::Ld));
        assert!(!unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::Var));
        let add = unit
            .all_insts()
            .into_iter()
            .find(|&i| unit.inst_data(i).opcode == Opcode::Add)
            .unwrap();
        let value = unit.inst_data(add).args[0];
        assert_eq!(unit.get_const(value), Some(&llhd::value::ConstValue::int(32, 1)));
    }

    #[test]
    fn load_of_initial_value_is_forwarded() {
        let mut module = parse_module(
            r#"
            func @f (i32 %x) i32 {
            entry:
                %p = var i32 %x
                %v = ld i32* %p
                ret i32 %v
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        let ret = *unit.all_insts().last().unwrap();
        assert_eq!(unit.inst_data(ret).args[0], unit.arg_value(0));
    }

    #[test]
    fn cross_block_variables_are_preserved() {
        let mut module = parse_module(
            r#"
            proc @p (i1$ %clk) -> (i32$ %q) {
            first:
                %zero = const i32 0
                %i = var i32 %zero
                wait %second, %clk
            second:
                %v = ld i32* %i
                %one = const i32 1
                %next = add i32 %v, %one
                st i32* %i, %next
                %delay = const time 1ns
                drv i32$ %q, %next after %delay
                wait %second, %clk
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        run(module.unit_mut(id));
        let unit = module.unit(id);
        // The load in the second block reads the value stored in previous
        // activations; it must survive.
        assert!(unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::Ld));
        assert!(unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::Var));
    }
}
