//! Total Control Flow Elimination (TCFE, §4.4).
//!
//! After temporal code motion, most branches no longer guard any
//! side-effecting instructions. TCFE removes the resulting empty blocks,
//! merges straight-line chains, turns redundant conditional branches into
//! unconditional ones, and replaces `phi` nodes with `mux` instructions.
//! The goal is a process with exactly one basic block per temporal region.

use llhd::analysis::{ControlFlowGraph, DominatorTree};
use llhd::ir::{Block, InstData, Opcode, UnitData, UnitKind, ValueDef};

/// Run total control flow elimination on a process. Returns `true` if
/// anything changed.
pub fn run(unit: &mut UnitData) -> bool {
    if unit.kind() != UnitKind::Process {
        return false;
    }
    let mut changed = false;
    loop {
        let mut local = false;
        local |= phis_to_muxes(unit);
        local |= simplify_branches(unit);
        local |= remove_forwarding_blocks(unit);
        local |= merge_straight_line_blocks(unit);
        changed |= local;
        if !local {
            break;
        }
    }
    changed
}

/// Turn `br %c, %bb, %bb` into `br %bb`.
fn simplify_branches(unit: &mut UnitData) -> bool {
    let mut changed = false;
    for block in unit.blocks() {
        let Some(term) = unit.terminator(block) else {
            continue;
        };
        let data = unit.inst_data(term).clone();
        if data.opcode == Opcode::BrCond && data.blocks[0] == data.blocks[1] {
            let target = data.blocks[0];
            unit.remove_inst(term);
            let mut br = InstData::new(Opcode::Br, vec![]);
            br.blocks = vec![target];
            unit.append_inst(block, br, None);
            changed = true;
        }
    }
    changed
}

/// Remove blocks that contain nothing but an unconditional branch by
/// redirecting their predecessors to the branch target.
fn remove_forwarding_blocks(unit: &mut UnitData) -> bool {
    let mut changed = false;
    for block in unit.blocks() {
        if Some(block) == unit.entry_block() {
            continue;
        }
        let insts = unit.insts(block);
        if insts.len() != 1 {
            continue;
        }
        let term = insts[0];
        let data = unit.inst_data(term).clone();
        if data.opcode != Opcode::Br {
            continue;
        }
        let target = data.blocks[0];
        if target == block {
            continue;
        }
        // Phi nodes referencing this block as a predecessor would need their
        // edges rewritten per predecessor; keep it simple and leave such
        // blocks in place.
        let referenced_by_phi = unit.all_insts().iter().any(|&i| {
            let d = unit.inst_data(i);
            d.opcode == Opcode::Phi && d.blocks.contains(&block)
        });
        if referenced_by_phi {
            continue;
        }
        // Redirect all predecessors.
        let cfg = ControlFlowGraph::new(unit);
        let preds: Vec<Block> = cfg.preds(block).to_vec();
        for pred in preds {
            if let Some(pred_term) = unit.terminator(pred) {
                unit.inst_data_mut(pred_term).replace_block(block, target);
            }
        }
        unit.remove_block(block);
        changed = true;
    }
    changed
}

/// Merge a block into its unique predecessor when that predecessor branches
/// to it unconditionally.
fn merge_straight_line_blocks(unit: &mut UnitData) -> bool {
    let mut changed = false;
    loop {
        let cfg = ControlFlowGraph::new(unit);
        let mut merged = false;
        for block in unit.blocks() {
            if Some(block) == unit.entry_block() {
                continue;
            }
            let preds = cfg.preds(block);
            if preds.len() != 1 {
                continue;
            }
            let pred = preds[0];
            if pred == block {
                continue;
            }
            let Some(pred_term) = unit.terminator(pred) else {
                continue;
            };
            let pred_data = unit.inst_data(pred_term).clone();
            if pred_data.opcode != Opcode::Br || pred_data.blocks[0] != block {
                continue;
            }
            // Single-predecessor phis collapse to their only operand.
            for inst in unit.insts(block) {
                let data = unit.inst_data(inst).clone();
                if data.opcode == Opcode::Phi && data.args.len() == 1 {
                    let result = unit.inst_result(inst);
                    unit.replace_value_uses(result, data.args[0]);
                    unit.remove_inst(inst);
                }
            }
            // Move the block's instructions into the predecessor.
            unit.remove_inst(pred_term);
            for inst in unit.insts(block) {
                unit.move_inst_to_end(inst, pred);
            }
            // Any remaining references to the block (e.g. phi predecessor
            // lists in successors) now refer to the predecessor.
            for inst in unit.all_insts() {
                unit.inst_data_mut(inst).replace_block(block, pred);
            }
            unit.remove_block(block);
            merged = true;
            break;
        }
        changed |= merged;
        if !merged {
            break;
        }
    }
    changed
}

/// Replace two-way `phi` nodes whose operands dominate the join block with a
/// `mux` selected by the branch condition of the dominating block.
fn phis_to_muxes(unit: &mut UnitData) -> bool {
    let cfg = ControlFlowGraph::new(unit);
    let domtree = DominatorTree::new(unit, &cfg);
    let mut changed = false;
    for inst in unit.all_insts() {
        let data = unit.inst_data(inst).clone();
        if data.opcode != Opcode::Phi || data.args.len() != 2 {
            continue;
        }
        let block = unit.inst_block(inst).unwrap();
        let Some(dominator) = domtree.common_dominator(data.blocks[0], data.blocks[1]) else {
            continue;
        };
        let Some(dom_term) = unit.terminator(dominator) else {
            continue;
        };
        let dom_data = unit.inst_data(dom_term).clone();
        if dom_data.opcode != Opcode::BrCond {
            continue;
        }
        let cond = dom_data.args[0];
        let if_true = dom_data.blocks[1];
        // Check that the phi operands dominate the join block so the mux can
        // use them directly.
        let operands_dominate = data.args.iter().all(|&v| match unit.value_def(v) {
            ValueDef::Arg(_) => true,
            ValueDef::Inst(def) => unit
                .inst_block(def)
                .map(|b| domtree.dominates(b, block))
                .unwrap_or(false),
            ValueDef::Invalid => false,
        });
        let cond_dominates = match unit.value_def(cond) {
            ValueDef::Arg(_) => true,
            ValueDef::Inst(def) => unit
                .inst_block(def)
                .map(|b| domtree.dominates(b, block))
                .unwrap_or(false),
            ValueDef::Invalid => false,
        };
        if !operands_dominate || !cond_dominates {
            continue;
        }
        // Which incoming edge corresponds to the true branch?
        let edge_reaches = |edge: Block, pred: Block| edge == pred || domtree.dominates(edge, pred);
        let true_index = if edge_reaches(if_true, data.blocks[0]) && !edge_reaches(if_true, data.blocks[1]) {
            0
        } else if edge_reaches(if_true, data.blocks[1]) && !edge_reaches(if_true, data.blocks[0]) {
            1
        } else {
            continue;
        };
        let false_index = 1 - true_index;
        let false_value = data.args[false_index];
        let true_value = data.args[true_index];
        // Build `mux([false, true], cond)` right before the phi.
        let array_inst = unit.insert_inst_before(
            inst,
            InstData::new(Opcode::Array, vec![false_value, true_value]),
            Some(llhd::ty::array_ty(2, unit.value_type(false_value))),
        );
        let array = unit.inst_result(array_inst);
        let mux_inst = unit.insert_inst_before(
            inst,
            InstData::new(Opcode::Mux, vec![array, cond]),
            Some(unit.value_type(false_value)),
        );
        let mux = unit.inst_result(mux_inst);
        let result = unit.inst_result(inst);
        unit.replace_value_uses(result, mux);
        unit.remove_inst(inst);
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;

    /// The acc_comb process right after TCM (Figure 5f): the drive has moved
    /// to the final block, the value is selected by a phi.
    const ACC_COMB_AFTER_TCM: &str = r#"
        proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
        entry:
            %qp = prb i32$ %q
            %xp = prb i32$ %x
            %enp = prb i1$ %en
            %sum = add i32 %qp, %xp
            %delay = const time 2ns
            br %enp, %final, %enabled
        enabled:
            br %final
        final:
            %dn = phi i32 [%qp, %entry], [%sum, %enabled]
            drv i32$ %d, %dn after %delay
            wait %entry, %q, %x, %en
        }
    "#;

    #[test]
    fn acc_comb_collapses_to_single_block_with_mux() {
        let mut module = parse_module(ACC_COMB_AFTER_TCM).unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        assert!(llhd::verifier::verify_unit(unit).is_ok());
        assert_eq!(unit.blocks().len(), 1, "{}", llhd::assembly::write_unit(unit));
        let ops: Vec<_> = unit
            .all_insts()
            .iter()
            .map(|&i| unit.inst_data(i).opcode)
            .collect();
        assert!(ops.contains(&Opcode::Mux));
        assert!(!ops.contains(&Opcode::Phi));
        assert!(ops.contains(&Opcode::Drv));
        assert!(ops.contains(&Opcode::Wait));
    }

    #[test]
    fn acc_ff_collapses_to_two_blocks() {
        // The flip-flop process after TCM: the drive moved into the aux
        // block with the posedge condition.
        let src = r#"
        proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
        init:
            %delay = const time 1ns
            %clk0 = prb i1$ %clk
            wait %check, %clk
        check:
            %clk1 = prb i1$ %clk
            %dp = prb i32$ %d
            %chg = neq i1 %clk0, %clk1
            %posedge = and i1 %chg, %clk1
            br %posedge, %aux, %event
        event:
            br %aux
        aux:
            drv i32$ %q, %dp after %delay if %posedge
            br %init
        }
        "#;
        let mut module = parse_module(src).unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        assert!(llhd::verifier::verify_unit(unit).is_ok());
        assert_eq!(unit.blocks().len(), 2, "{}", llhd::assembly::write_unit(unit));
        // The drive survived with its condition.
        assert!(unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::DrvCond));
    }

    #[test]
    fn branch_with_equal_targets_becomes_unconditional() {
        let mut module = parse_module(
            r#"
            proc @p (i1$ %a) -> () {
            entry:
                %ap = prb i1$ %a
                br %ap, %next, %next
            next:
                halt
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        assert!(!unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::BrCond));
        assert_eq!(unit.blocks().len(), 1);
    }

    #[test]
    fn functions_are_untouched() {
        let mut module = parse_module(
            r#"
            func @f (i1 %c, i32 %a, i32 %b) i32 {
            entry:
                br %c, %no, %yes
            yes:
                ret i32 %a
            no:
                ret i32 %b
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(!run(module.unit_mut(id)));
    }
}
