//! Early Code Motion (ECM, §4.2).
//!
//! Eagerly hoists instructions into predecessor blocks as far up the control
//! flow graph as their operands allow. This subsumes loop-invariant code
//! motion and prepares the control flow elimination: after ECM, all
//! constants sit in the entry block and arithmetic sits at the earliest
//! point where its operands are available.
//!
//! Probes (`prb`) require special care: they sample the *current* value of a
//! signal and must therefore never move across a `wait`, i.e. never leave
//! their temporal region.

use llhd::analysis::{ControlFlowGraph, DominatorTree, TemporalRegionGraph};
use llhd::ir::{Opcode, UnitData, UnitKind, ValueDef};

/// Run early code motion on a unit. Returns `true` if anything changed.
pub fn run(unit: &mut UnitData) -> bool {
    if unit.kind() == UnitKind::Entity {
        // Entities are a single data flow graph; there is nothing to hoist.
        return false;
    }
    let mut changed = false;
    loop {
        let cfg = ControlFlowGraph::new(unit);
        let domtree = DominatorTree::new(unit, &cfg);
        let trg = TemporalRegionGraph::new(unit, &cfg);
        let mut local = false;

        for block in domtree.reverse_post_order().to_vec() {
            let Some(idom) = domtree.idom(block) else {
                continue;
            };
            if idom == block {
                continue;
            }
            for inst in unit.insts(block) {
                let data = unit.inst_data(inst);
                let opcode = data.opcode;
                let hoistable = opcode.is_pure() || opcode == Opcode::Prb;
                if !hoistable || opcode == Opcode::Phi {
                    continue;
                }
                // Probes may not leave their temporal region.
                if opcode == Opcode::Prb && trg.region(idom) != trg.region(block) {
                    continue;
                }
                // Every operand must be defined in a block that (strictly)
                // dominates the target, or be a unit argument.
                let movable = data.args.iter().all(|&arg| match unit.value_def(arg) {
                    ValueDef::Arg(_) => true,
                    ValueDef::Inst(def_inst) => match unit.inst_block(def_inst) {
                        Some(def_block) => def_block != block && domtree.dominates(def_block, idom),
                        None => false,
                    },
                    ValueDef::Invalid => false,
                });
                if !movable {
                    continue;
                }
                unit.move_inst_before_terminator(inst, idom);
                local = true;
            }
        }
        changed |= local;
        if !local {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;
    use llhd::ir::Module;

    fn apply(src: &str) -> Module {
        let mut module = parse_module(src).unwrap();
        for id in module.units() {
            run(module.unit_mut(id));
        }
        module
    }

    #[test]
    fn constants_move_to_the_entry_block() {
        let module = apply(
            r#"
            proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
            entry:
                %qp = prb i32$ %q
                %enp = prb i1$ %en
                br %enp, %final, %enabled
            enabled:
                %xp = prb i32$ %x
                %delay2 = const time 2ns
                %sum = add i32 %qp, %xp
                drv i32$ %d, %sum after %delay2
                br %final
            final:
                %delay = const time 2ns
                drv i32$ %d, %qp after %delay
                wait %entry, %q, %x, %en
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        let entry = unit.entry_block().unwrap();
        let entry_ops: Vec<_> = unit
            .insts(entry)
            .iter()
            .map(|&i| unit.inst_data(i).opcode)
            .collect();
        // Both constants, the probe of %x, and the add moved into the entry
        // block.
        assert_eq!(entry_ops.iter().filter(|&&o| o == Opcode::Const).count(), 2);
        assert!(entry_ops.contains(&Opcode::Add));
        assert_eq!(entry_ops.iter().filter(|&&o| o == Opcode::Prb).count(), 3);
    }

    #[test]
    fn probes_do_not_cross_waits() {
        let module = apply(
            r#"
            proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
            init:
                %clk0 = prb i1$ %clk
                wait %check, %clk
            check:
                %clk1 = prb i1$ %clk
                %chg = neq i1 %clk0, %clk1
                %posedge = and i1 %chg, %clk1
                br %posedge, %init, %event
            event:
                %dp = prb i32$ %d
                %delay = const time 1ns
                drv i32$ %q, %dp after %delay
                br %init
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        let blocks = unit.blocks();
        let init = blocks[0];
        let check = blocks[1];
        // %clk1 must stay in `check` (it samples the clock *after* the wait),
        // and %dp may move up to `check` but not into `init`.
        let init_probes = unit
            .insts(init)
            .iter()
            .filter(|&&i| unit.inst_data(i).opcode == Opcode::Prb)
            .count();
        assert_eq!(init_probes, 1, "only the pre-wait probe may be in init");
        let check_probes = unit
            .insts(check)
            .iter()
            .filter(|&&i| unit.inst_data(i).opcode == Opcode::Prb)
            .count();
        assert_eq!(check_probes, 2, "clk1 and dp probes belong to check");
        // The constant is free to move all the way up to init.
        let init_consts = unit
            .insts(init)
            .iter()
            .filter(|&&i| unit.inst_data(i).opcode == Opcode::Const)
            .count();
        assert_eq!(init_consts, 1);
    }

    #[test]
    fn drives_are_never_hoisted() {
        let module = apply(
            r#"
            proc @p (i1$ %en) -> (i1$ %q) {
            entry:
                %enp = prb i1$ %en
                br %enp, %done, %doit
            doit:
                %one = const i1 1
                %delay = const time 1ns
                drv i1$ %q, %one after %delay
                br %done
            done:
                wait %entry, %en
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        let doit = unit
            .blocks()
            .into_iter()
            .find(|&b| unit.block_name(b) == Some("doit"))
            .unwrap();
        assert!(unit
            .insts(doit)
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::Drv));
    }

    #[test]
    fn entities_are_untouched() {
        let mut module = parse_module(
            r#"
            entity @e (i8$ %a) -> (i8$ %q) {
                %ap = prb i8$ %a
                %one = const i8 1
                %sum = add i8 %ap, %one
                %delay = const time 0s
                drv i8$ %q, %sum after %delay
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(!run(module.unit_mut(id)));
    }
}
