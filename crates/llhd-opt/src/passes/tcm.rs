//! Temporal Code Motion (TCM, §4.3).
//!
//! `wait` instructions subdivide a process into temporal regions. TCM
//! ensures every temporal region has a single exiting block, then moves all
//! `drv` instructions into that block. The condition under which control
//! originally reached a `drv` is reconstructed from the branch decisions
//! along the way and attached to the instruction as its drive condition.
//! Finally, multiple drives of the same signal in the exiting block are
//! coalesced into a single drive selecting its value with a `mux` — the
//! data-flow equivalent of the `phi` the paper shows in Figure 5f/g.

use llhd::analysis::{ControlFlowGraph, DominatorTree, TemporalRegion, TemporalRegionGraph};
use llhd::ir::{Block, Inst, InstData, Opcode, UnitData, UnitKind, Value, ValueDef};
use std::collections::HashMap;

/// Run temporal code motion on a process. Returns `true` if anything
/// changed.
pub fn run(unit: &mut UnitData) -> bool {
    if unit.kind() != UnitKind::Process {
        return false;
    }
    let mut changed = false;
    changed |= ensure_single_exit_blocks(unit);
    changed |= move_drives(unit);
    changed |= coalesce_drives(unit);
    changed
}

/// Insert auxiliary blocks so that each temporal region has a single block
/// through which control leaves towards another region (§4.3.2).
fn ensure_single_exit_blocks(unit: &mut UnitData) -> bool {
    let cfg = ControlFlowGraph::new(unit);
    let trg = TemporalRegionGraph::new(unit, &cfg);
    let mut changed = false;
    for region_idx in 0..trg.num_regions() {
        let region = TemporalRegion(region_idx as u32);
        // Collect branch arcs that leave the region, grouped by target block.
        let mut arcs: HashMap<Block, Vec<Block>> = HashMap::new();
        let mut has_wait_exit = false;
        for block in trg.blocks_in(unit, region) {
            let Some(term) = unit.terminator(block) else {
                continue;
            };
            let data = unit.inst_data(term);
            match data.opcode {
                Opcode::Wait | Opcode::WaitTime | Opcode::Halt => has_wait_exit = true,
                Opcode::Br | Opcode::BrCond => {
                    for &target in &data.blocks {
                        if trg.region(target) != region {
                            arcs.entry(target).or_default().push(block);
                        }
                    }
                }
                _ => {}
            }
        }
        if has_wait_exit {
            // The wait block is the natural single exit; branch arcs leaving
            // the same region would be unusual and are left untouched.
            continue;
        }
        for (target, sources) in arcs {
            if sources.len() < 2 {
                continue;
            }
            // Create the auxiliary block and redirect all arcs through it.
            let aux = unit.create_block_after(Some("aux".to_string()), *sources.last().unwrap());
            for source in sources {
                let term = unit.terminator(source).unwrap();
                unit.inst_data_mut(term).replace_block(target, aux);
            }
            let mut br = InstData::new(Opcode::Br, vec![]);
            br.blocks = vec![target];
            unit.append_inst(aux, br, None);
            changed = true;
        }
    }
    changed
}

/// The single exiting block of each region, if it exists.
fn exit_block_per_region(
    unit: &UnitData,
    cfg: &ControlFlowGraph,
    trg: &TemporalRegionGraph,
) -> HashMap<TemporalRegion, Block> {
    let mut exits = HashMap::new();
    for region_idx in 0..trg.num_regions() {
        let region = TemporalRegion(region_idx as u32);
        let exiting = trg.exiting_blocks(unit, cfg, region);
        if exiting.len() == 1 {
            exits.insert(region, exiting[0]);
        }
    }
    exits
}

/// Move `drv` instructions into the single exiting block of their temporal
/// region, attaching the reconstructed path condition (§4.3.3).
fn move_drives(unit: &mut UnitData) -> bool {
    let cfg = ControlFlowGraph::new(unit);
    let trg = TemporalRegionGraph::new(unit, &cfg);
    let domtree = DominatorTree::new(unit, &cfg);
    let exits = exit_block_per_region(unit, &cfg, &trg);
    let mut changed = false;

    for inst in unit.all_insts() {
        let data = unit.inst_data(inst);
        if !matches!(data.opcode, Opcode::Drv | Opcode::DrvCond) {
            continue;
        }
        let block = unit.inst_block(inst).unwrap();
        let region = trg.region(block);
        let Some(&exit) = exits.get(&region) else {
            continue;
        };
        if block == exit {
            continue;
        }
        let Some(dominator) = domtree.common_dominator(block, exit) else {
            continue;
        };
        // Reconstruct the condition under which control flows from the
        // dominator to the drive's block.
        let Some(condition) =
            path_condition(unit, &cfg, &domtree, &trg, region, dominator, block, exit)
        else {
            continue;
        };
        // Combine with an existing drive condition.
        let data = unit.inst_data(inst).clone();
        let combined = match (condition, data.opcode) {
            (None, _) => {
                if data.opcode == Opcode::DrvCond {
                    Some(data.args[3])
                } else {
                    None
                }
            }
            (Some(cond), Opcode::DrvCond) => {
                let existing = data.args[3];
                let and =
                    insert_before_terminator(unit, exit, InstData::new(Opcode::And, vec![cond, existing]));
                Some(and)
            }
            (Some(cond), _) => Some(cond),
        };
        // Rebuild the drive in the exit block.
        let new_data = match combined {
            Some(cond) => InstData::new(
                Opcode::DrvCond,
                vec![data.args[0], data.args[1], data.args[2], cond],
            ),
            None => InstData::new(Opcode::Drv, vec![data.args[0], data.args[1], data.args[2]]),
        };
        let term = unit.terminator(exit);
        let new_inst = unit.append_inst(exit, new_data, None);
        if let Some(term) = term {
            unit.move_inst_before(new_inst, term);
        }
        unit.remove_inst(inst);
        changed = true;
    }
    changed
}

/// Compute the condition (as an `i1` value, inserted before the terminator
/// of `exit`) under which control flows from `dominator` to `target`.
/// Returns `Ok(None)`-style `Some(None)` when the flow is unconditional and
/// `None` when the condition cannot be expressed (which leaves the drive in
/// place).
#[allow(clippy::too_many_arguments)]
fn path_condition(
    unit: &mut UnitData,
    cfg: &ControlFlowGraph,
    domtree: &DominatorTree,
    trg: &TemporalRegionGraph,
    region: TemporalRegion,
    dominator: Block,
    target: Block,
    exit: Block,
) -> Option<Option<Value>> {
    if target == dominator {
        return Some(None);
    }
    // The condition for a block is the OR over its in-region predecessors of
    // (condition of predecessor AND edge condition).
    let mut result: Option<Option<Value>> = None;
    let preds: Vec<Block> = cfg
        .preds(target)
        .iter()
        .copied()
        .filter(|&p| trg.region(p) == region && (p == dominator || domtree.dominates(dominator, p)))
        .collect();
    if preds.is_empty() {
        return None;
    }
    for pred in preds {
        let pred_cond = path_condition(unit, cfg, domtree, trg, region, dominator, pred, exit)?;
        let edge_cond = edge_condition(unit, domtree, pred, target, exit)?;
        // AND the two conditions.
        let combined = match (pred_cond, edge_cond) {
            (None, None) => None,
            (Some(c), None) | (None, Some(c)) => Some(c),
            (Some(a), Some(b)) => Some(insert_before_terminator(
                unit,
                exit,
                InstData::new(Opcode::And, vec![a, b]),
            )),
        };
        // OR with the result accumulated so far.
        result = Some(match result {
            None => combined,
            Some(None) => None,
            Some(Some(prev)) => combined.map(|c| insert_before_terminator(
                    unit,
                    exit,
                    InstData::new(Opcode::Or, vec![prev, c]),
                )),
        });
        if result == Some(None) {
            // Unconditionally reachable; no point accumulating more.
            return Some(None);
        }
    }
    result
}

/// The condition attached to the edge `pred -> target`: the branch condition
/// (or its negation) for conditional branches, nothing for unconditional
/// ones. Fails if the condition value does not dominate the exit block.
fn edge_condition(
    unit: &mut UnitData,
    domtree: &DominatorTree,
    pred: Block,
    target: Block,
    exit: Block,
) -> Option<Option<Value>> {
    let term = unit.terminator(pred)?;
    let data = unit.inst_data(term).clone();
    match data.opcode {
        Opcode::Br => Some(None),
        Opcode::BrCond => {
            let cond = data.args[0];
            // The condition must be available in the exit block.
            let def_block = match unit.value_def(cond) {
                ValueDef::Arg(_) => None,
                ValueDef::Inst(def) => unit.inst_block(def),
                ValueDef::Invalid => return None,
            };
            if let Some(def_block) = def_block {
                if !domtree.dominates(def_block, exit) {
                    return None;
                }
            }
            let (if_false, if_true) = (data.blocks[0], data.blocks[1]);
            if if_false == if_true {
                return Some(None);
            }
            if target == if_true {
                Some(Some(cond))
            } else if target == if_false {
                let not = insert_before_terminator(unit, exit, InstData::new(Opcode::Not, vec![cond]));
                Some(Some(not))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Insert a value-producing instruction before the terminator of `block`,
/// returning its result.
fn insert_before_terminator(unit: &mut UnitData, block: Block, data: InstData) -> Value {
    let result_ty = data.opcode.has_result().then(|| {
        unit.default_result_type(data.opcode, &data.args, &data.imms, data.konst.as_ref(), None)
    });
    let inst = match unit.terminator(block) {
        Some(term) => unit.insert_inst_before(term, data, result_ty),
        None => unit.append_inst(block, data, result_ty),
    };
    unit.inst_result(inst)
}

/// Coalesce multiple drives of the same signal (with the same delay) within
/// one block into a single drive whose value is selected by `mux`
/// instructions (§4.3.3, Figure 5f/g).
/// Per `(signal, delay)`: the accumulated value, the accumulated drive
/// condition, and the original drive instructions it replaces.
type DriveAccumulator = HashMap<(Value, Value), (Value, Option<Value>, Vec<Inst>)>;

fn coalesce_drives(unit: &mut UnitData) -> bool {
    let mut changed = false;
    for block in unit.blocks() {
        // Accumulated (value, condition, contributing drives) per
        // (signal, delay).
        let mut acc: DriveAccumulator = HashMap::new();
        let mut order: Vec<(Value, Value)> = vec![];
        for inst in unit.insts(block) {
            let data = unit.inst_data(inst).clone();
            let (signal, value, delay, cond) = match data.opcode {
                Opcode::Drv => (data.args[0], data.args[1], data.args[2], None),
                Opcode::DrvCond => (data.args[0], data.args[1], data.args[2], Some(data.args[3])),
                _ => continue,
            };
            let key = (signal, delay);
            match acc.get_mut(&key) {
                None => {
                    order.push(key);
                    acc.insert(key, (value, cond, vec![inst]));
                }
                Some((acc_value, acc_cond, insts)) => {
                    insts.push(inst);
                    match cond {
                        None => {
                            // Unconditional drive overrides everything before.
                            *acc_value = value;
                            *acc_cond = None;
                        }
                        Some(c) => {
                            // value := c ? value : acc_value
                            let choices = insert_before_terminator(
                                unit,
                                block,
                                InstData::new(Opcode::Array, vec![*acc_value, value]),
                            );
                            let mux = insert_before_terminator(
                                unit,
                                block,
                                InstData::new(Opcode::Mux, vec![choices, c]),
                            );
                            *acc_value = mux;
                            *acc_cond = (*acc_cond).map(|prev| insert_before_terminator(
                                    unit,
                                    block,
                                    InstData::new(Opcode::Or, vec![prev, c]),
                                ));
                        }
                    }
                }
            }
        }
        for key in order {
            let (value, cond, insts) = acc.remove(&key).unwrap();
            if insts.len() < 2 {
                continue;
            }
            // Remove the original drives and emit the coalesced one.
            for inst in insts {
                unit.remove_inst(inst);
            }
            let (signal, delay) = key;
            let data = match cond {
                Some(c) => InstData::new(Opcode::DrvCond, vec![signal, value, delay, c]),
                None => InstData::new(Opcode::Drv, vec![signal, value, delay]),
            };
            let term = unit.terminator(block);
            let inst = unit.append_inst(block, data, None);
            if let Some(term) = term {
                unit.move_inst_before(inst, term);
            }
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::{parse_module, write_unit};

    /// The combinational accumulator process of Figure 5 after ECM.
    const ACC_COMB: &str = r#"
        proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
        entry:
            %qp = prb i32$ %q
            %xp = prb i32$ %x
            %enp = prb i1$ %en
            %sum = add i32 %qp, %xp
            %delay = const time 2ns
            drv i32$ %d, %qp after %delay
            br %enp, %final, %enabled
        enabled:
            drv i32$ %d, %sum after %delay
            br %final
        final:
            wait %entry, %q, %x, %en
        }
    "#;

    /// The flip-flop process of Figure 5 after ECM.
    const ACC_FF: &str = r#"
        proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
        init:
            %delay = const time 1ns
            %clk0 = prb i1$ %clk
            wait %check, %clk
        check:
            %clk1 = prb i1$ %clk
            %dp = prb i32$ %d
            %chg = neq i1 %clk0, %clk1
            %posedge = and i1 %chg, %clk1
            br %posedge, %init, %event
        event:
            drv i32$ %q, %dp after %delay
            br %init
        }
    "#;

    #[test]
    fn acc_comb_drives_coalesce_into_mux() {
        let mut module = parse_module(ACC_COMB).unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        assert!(llhd::verifier::verify_unit(unit).is_ok(), "{}", write_unit(unit));
        // Exactly one drive remains, it is unconditional, sits in the block
        // with the wait, and its value is a mux.
        let drives: Vec<_> = unit
            .all_insts()
            .into_iter()
            .filter(|&i| {
                matches!(
                    unit.inst_data(i).opcode,
                    Opcode::Drv | Opcode::DrvCond
                )
            })
            .collect();
        assert_eq!(drives.len(), 1);
        let drv = drives[0];
        assert_eq!(unit.inst_data(drv).opcode, Opcode::Drv);
        let final_block = unit
            .blocks()
            .into_iter()
            .find(|&b| {
                unit.terminator(b)
                    .map(|t| unit.inst_data(t).opcode == Opcode::Wait)
                    .unwrap_or(false)
            })
            .unwrap();
        assert_eq!(unit.inst_block(drv), Some(final_block));
        let value = unit.inst_data(drv).args[1];
        match unit.value_def(value) {
            ValueDef::Inst(def) => assert_eq!(unit.inst_data(def).opcode, Opcode::Mux),
            other => panic!("drive value should come from a mux, got {:?}", other),
        }
    }

    #[test]
    fn acc_ff_drive_gains_posedge_condition() {
        let mut module = parse_module(ACC_FF).unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        assert!(llhd::verifier::verify_unit(unit).is_ok(), "{}", write_unit(unit));
        // An auxiliary block was inserted; the drive moved there and is now
        // conditional on the posedge value.
        let drives: Vec<_> = unit
            .all_insts()
            .into_iter()
            .filter(|&i| matches!(unit.inst_data(i).opcode, Opcode::Drv | Opcode::DrvCond))
            .collect();
        assert_eq!(drives.len(), 1);
        let drv = drives[0];
        let data = unit.inst_data(drv);
        assert_eq!(data.opcode, Opcode::DrvCond);
        let cond = data.args[3];
        // The condition is the posedge value computed in `check`.
        assert_eq!(unit.value_name(cond), Some("posedge"));
        // The drive's block ends in a branch back to init, i.e. it is the
        // auxiliary exit block, not `event`.
        let drv_block = unit.inst_block(drv).unwrap();
        assert_eq!(unit.block_name(drv_block), Some("aux"));
    }

    #[test]
    fn unconditional_final_drive_overrides_earlier_ones() {
        let mut module = parse_module(
            r#"
            proc @p (i8$ %a) -> (i8$ %q) {
            entry:
                %ap = prb i8$ %a
                %one = const i8 1
                %delay = const time 1ns
                drv i8$ %q, %ap after %delay
                drv i8$ %q, %one after %delay
                wait %entry, %a
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        run(module.unit_mut(id));
        let unit = module.unit(id);
        let drives: Vec<_> = unit
            .all_insts()
            .into_iter()
            .filter(|&i| matches!(unit.inst_data(i).opcode, Opcode::Drv | Opcode::DrvCond))
            .collect();
        assert_eq!(drives.len(), 1);
        // The surviving value is the constant (the last unconditional write).
        let value = unit.inst_data(drives[0]).args[1];
        assert_eq!(
            unit.get_const(value),
            Some(&llhd::value::ConstValue::int(8, 1))
        );
    }

    #[test]
    fn entities_and_functions_are_untouched() {
        let mut module = parse_module(
            r#"
            func @f (i32 %a) i32 {
            entry:
                ret i32 %a
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(!run(module.unit_mut(id)));
    }
}
