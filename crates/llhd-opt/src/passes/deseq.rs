//! Desequentialization (Deseq, §4.6).
//!
//! Recognises flip-flops and latches in processes that TCM/TCFE have
//! canonicalized into two basic blocks (one temporal region before the
//! `wait`, one after). The condition of each drive is brought into
//! disjunctive normal form; terms that compare a "past" sample of a signal
//! (probed before the wait) against its "present" sample (probed after the
//! wait) are recognised as edge triggers, everything else becomes a level
//! trigger or a gating condition. Each successfully analysed drive becomes a
//! `reg` storage element in the resulting entity.

use crate::dnf::{dnf_of, Literal};
use llhd::analysis::{ControlFlowGraph, TemporalRegionGraph};
use llhd::ir::{
    Block, InstData, Opcode, RegMode, RegTrigger, UnitData, UnitKind, Value, ValueDef,
};
use std::collections::HashMap;

/// Try to desequentialize a process into an entity containing `reg`
/// storage elements. Returns `None` if the process does not match the
/// expected two-region shape or a drive cannot be mapped to a register.
pub fn desequentialize(unit: &UnitData) -> Option<UnitData> {
    if unit.kind() != UnitKind::Process {
        return None;
    }
    let blocks = unit.blocks();
    if blocks.len() != 2 {
        return None;
    }
    let cfg = ControlFlowGraph::new(unit);
    let trg = TemporalRegionGraph::new(unit, &cfg);
    if trg.num_regions() != 2 {
        return None;
    }
    // Identify the "past" block (ends in the wait) and the "present" block.
    let (past, present) = classify_blocks(unit, &blocks)?;

    // Reject anything but pure computation, probes, constants, drives, and
    // the terminators.
    for &block in &blocks {
        for inst in unit.insts(block) {
            let op = unit.inst_data(inst).opcode;
            let ok = op.is_pure()
                || matches!(
                    op,
                    Opcode::Prb
                        | Opcode::Drv
                        | Opcode::DrvCond
                        | Opcode::Wait
                        | Opcode::WaitTime
                        | Opcode::Br
                        | Opcode::BrCond
                );
            if !ok {
                return None;
            }
        }
    }

    // Build the replacement entity.
    let mut entity = UnitData::new(UnitKind::Entity, unit.name().clone(), unit.sig().clone());
    let mut importer = Importer {
        unit,
        map: HashMap::new(),
        present,
    };
    for (old, new) in unit.args().into_iter().zip(entity.args()) {
        importer.map.insert(old, new);
        if let Some(name) = unit.value_name(old) {
            entity.set_value_name(new, name.to_string());
        }
    }

    let mut lowered_any = false;
    for inst in unit.insts(present) {
        let data = unit.inst_data(inst);
        let (signal, value, condition) = match data.opcode {
            Opcode::Drv => (data.args[0], data.args[1], None),
            Opcode::DrvCond => (data.args[0], data.args[1], Some(data.args[3])),
            _ => continue,
        };
        // Unconditional drives in a clocked process would describe wires
        // driven every delta; they are not storage elements.
        let condition = condition?;
        let dnf = dnf_of(unit, condition, false);
        if dnf.is_false() || dnf.is_true() || dnf.terms().is_empty() {
            return None;
        }
        let mut triggers = vec![];
        for term in dnf.terms() {
            let trigger = analyse_term(unit, &mut importer, &mut entity, term, past, present)?;
            triggers.push(trigger);
        }
        let stored = importer.import(&mut entity, value)?;
        let signal_in_entity = importer.import(&mut entity, signal)?;
        let triggers = triggers
            .into_iter()
            .map(|t| RegTrigger {
                value: stored,
                mode: t.mode,
                trigger: t.trigger,
                gate: t.gate,
            })
            .collect();
        let body = entity.entry_block().unwrap();
        let mut reg = InstData::new(Opcode::Reg, vec![signal_in_entity]);
        reg.triggers = triggers;
        entity.append_inst(body, reg, None);
        lowered_any = true;
    }
    if !lowered_any {
        return None;
    }
    Some(entity)
}

/// Identify the past (pre-wait) and present (post-wait) blocks.
fn classify_blocks(unit: &UnitData, blocks: &[Block]) -> Option<(Block, Block)> {
    let is_wait = |b: Block| {
        unit.terminator(b).is_some_and(|t| {
            matches!(
                unit.inst_data(t).opcode,
                Opcode::Wait | Opcode::WaitTime
            )
        })
    };
    match (is_wait(blocks[0]), is_wait(blocks[1])) {
        (true, false) => Some((blocks[0], blocks[1])),
        (false, true) => Some((blocks[1], blocks[0])),
        _ => None,
    }
}

/// One analysed trigger before the stored value is attached.
struct AnalysedTrigger {
    mode: RegMode,
    trigger: Value,
    gate: Option<Value>,
}

/// Classify one DNF term into an edge or level trigger plus gate conditions.
fn analyse_term(
    unit: &UnitData,
    importer: &mut Importer,
    entity: &mut UnitData,
    term: &crate::dnf::Term,
    past: Block,
    present: Block,
) -> Option<AnalysedTrigger> {
    // Partition literals into past samples, present samples, and the rest.
    let probe_info = |value: Value| -> Option<(Value, Block)> {
        match unit.value_def(value) {
            ValueDef::Inst(inst) => {
                let data = unit.inst_data(inst);
                if data.opcode == Opcode::Prb {
                    Some((data.args[0], unit.inst_block(inst)?))
                } else {
                    None
                }
            }
            _ => None,
        }
    };

    let mut past_samples: HashMap<Value, &Literal> = HashMap::new();
    let mut present_samples: HashMap<Value, &Literal> = HashMap::new();
    let mut others: Vec<&Literal> = vec![];
    for literal in term.literals() {
        match probe_info(literal.value) {
            Some((signal, block)) if block == past => {
                past_samples.insert(signal, literal);
            }
            Some((signal, block)) if block == present => {
                present_samples.insert(signal, literal);
            }
            _ => others.push(literal),
        }
    }

    // Find a signal sampled both in the past and in the present: that is the
    // edge trigger candidate.
    let mut edge: Option<(Value, RegMode)> = None;
    for (&signal, past_lit) in &past_samples {
        if let Some(present_lit) = present_samples.get(&signal) {
            let mode = match (past_lit.negated, present_lit.negated) {
                (true, false) => RegMode::Rise,
                (false, true) => RegMode::Fall,
                _ => continue,
            };
            if edge.is_some() {
                // More than one edge per term is not a realisable storage
                // element.
                return None;
            }
            edge = Some((signal, mode));
        }
    }

    match edge {
        Some((signal, mode)) => {
            // Remaining present samples and opaque literals gate the trigger.
            let mut gate_literals: Vec<Literal> = others.iter().map(|&&l| l).collect();
            for (&other_signal, &lit) in &present_samples {
                if other_signal != signal {
                    gate_literals.push(*lit);
                }
            }
            // Past samples of other signals cannot be reproduced in an
            // entity.
            if past_samples.len() > 1 {
                return None;
            }
            let trigger = importer.import_probe(entity, signal)?;
            let gate = importer.import_literals(entity, &gate_literals)?;
            Some(AnalysedTrigger {
                mode,
                trigger,
                gate,
            })
        }
        None => {
            // No edge: this is a level-sensitive latch. Any past samples
            // would have no hardware equivalent.
            if !past_samples.is_empty() {
                return None;
            }
            let mut literals: Vec<Literal> = others.iter().map(|&&l| l).collect();
            literals.extend(present_samples.values().map(|&&l| l));
            if literals.is_empty() {
                return None;
            }
            if literals.len() == 1 {
                let lit = literals[0];
                let trigger = importer.import(entity, lit.value)?;
                let mode = if lit.negated {
                    RegMode::Low
                } else {
                    RegMode::High
                };
                Some(AnalysedTrigger {
                    mode,
                    trigger,
                    gate: None,
                })
            } else {
                let trigger = importer.import_literals(entity, &literals)??;
                Some(AnalysedTrigger {
                    mode: RegMode::High,
                    trigger,
                    gate: None,
                })
            }
        }
    }
}

/// Imports value DFGs from the process into the entity.
struct Importer<'a> {
    unit: &'a UnitData,
    map: HashMap<Value, Value>,
    present: Block,
}

impl<'a> Importer<'a> {
    /// Import a value, recreating its defining instructions in the entity.
    /// Only constants, probes of the present region, pure operations, and
    /// unit arguments can be imported.
    fn import(&mut self, entity: &mut UnitData, value: Value) -> Option<Value> {
        if let Some(&mapped) = self.map.get(&value) {
            return Some(mapped);
        }
        let inst = match self.unit.value_def(value) {
            ValueDef::Arg(_) => unreachable!("arguments are pre-mapped"),
            ValueDef::Inst(inst) => inst,
            ValueDef::Invalid => return None,
        };
        let data = self.unit.inst_data(inst).clone();
        let new_value = match data.opcode {
            Opcode::Const => {
                let body = entity.entry_block().unwrap();
                let konst = data.konst.clone().unwrap();
                let ty = konst.ty();
                let new_inst = entity.append_inst(body, InstData::constant(konst), Some(ty));
                entity.inst_result(new_inst)
            }
            Opcode::Prb => {
                // Only probes of the present region represent the current
                // signal value an entity can observe.
                if self.unit.inst_block(inst) != Some(self.present) {
                    return None;
                }
                let signal = self.import(entity, data.args[0])?;
                let body = entity.entry_block().unwrap();
                let ty = entity.value_type(signal).unwrap_signal().clone();
                let new_inst =
                    entity.append_inst(body, InstData::new(Opcode::Prb, vec![signal]), Some(ty));
                entity.inst_result(new_inst)
            }
            op if op.is_pure() => {
                let mut args = Vec::with_capacity(data.args.len());
                for &arg in &data.args {
                    args.push(self.import(entity, arg)?);
                }
                let body = entity.entry_block().unwrap();
                let mut new_data = InstData::new(op, args);
                new_data.imms = data.imms.clone();
                let result_ty = self
                    .unit
                    .get_inst_result(inst)
                    .map(|r| self.unit.value_type(r));
                let new_inst = entity.append_inst(body, new_data, result_ty);
                entity.inst_result(new_inst)
            }
            _ => return None,
        };
        if let Some(old_result) = self.unit.get_inst_result(inst) {
            if let Some(name) = self.unit.value_name(old_result) {
                entity.set_value_name(new_value, name.to_string());
            }
        }
        self.map.insert(value, new_value);
        Some(new_value)
    }

    /// Import a probe of `signal` (creating it if the process never probed
    /// the signal in the present region).
    fn import_probe(&mut self, entity: &mut UnitData, signal: Value) -> Option<Value> {
        let signal_in_entity = self.import(entity, signal)?;
        let body = entity.entry_block().unwrap();
        // Reuse an existing probe of the same signal if one was already
        // imported.
        for inst in entity.insts(body) {
            let data = entity.inst_data(inst);
            if data.opcode == Opcode::Prb && data.args[0] == signal_in_entity {
                return Some(entity.inst_result(inst));
            }
        }
        let ty = entity.value_type(signal_in_entity).unwrap_signal().clone();
        let new_inst = entity.append_inst(
            body,
            InstData::new(Opcode::Prb, vec![signal_in_entity]),
            Some(ty),
        );
        Some(entity.inst_result(new_inst))
    }

    /// Import a conjunction of literals as a single `i1` value. Returns
    /// `Ok(None)`-style `Some(None)` when there are no literals.
    fn import_literals(
        &mut self,
        entity: &mut UnitData,
        literals: &[Literal],
    ) -> Option<Option<Value>> {
        let mut acc: Option<Value> = None;
        for literal in literals {
            let mut value = self.import(entity, literal.value)?;
            let body = entity.entry_block().unwrap();
            if literal.negated {
                let ty = entity.value_type(value);
                let not_inst =
                    entity.append_inst(body, InstData::new(Opcode::Not, vec![value]), Some(ty));
                value = entity.inst_result(not_inst);
            }
            acc = Some(match acc {
                None => value,
                Some(prev) => {
                    let ty = entity.value_type(value);
                    let and_inst = entity.append_inst(
                        body,
                        InstData::new(Opcode::And, vec![prev, value]),
                        Some(ty),
                    );
                    entity.inst_result(and_inst)
                }
            });
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::{parse_module, write_unit};
    use llhd::verifier::{unit_dialect, verify_unit, Dialect};

    /// The flip-flop process after TCM and TCFE (Figure 5d/f): two blocks,
    /// drive condition `%posedge`.
    const ACC_FF_CANONICAL: &str = r#"
        proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
        init:
            %delay = const time 1ns
            %clk0 = prb i1$ %clk
            wait %check, %clk
        check:
            %clk1 = prb i1$ %clk
            %dp = prb i32$ %d
            %chg = neq i1 %clk0, %clk1
            %posedge = and i1 %chg, %clk1
            drv i32$ %q, %dp after %delay if %posedge
            br %init
        }
    "#;

    #[test]
    fn rising_edge_flip_flop_is_recognised() {
        let module = parse_module(ACC_FF_CANONICAL).unwrap();
        let unit = module.unit(module.units()[0]);
        let entity = desequentialize(unit).expect("should desequentialize");
        assert!(verify_unit(&entity).is_ok(), "{}", write_unit(&entity));
        assert_eq!(unit_dialect(&entity), Dialect::Structural);
        // Exactly one reg with a single rising-edge trigger on the clock.
        let regs: Vec<_> = entity
            .all_insts()
            .into_iter()
            .filter(|&i| entity.inst_data(i).opcode == Opcode::Reg)
            .collect();
        assert_eq!(regs.len(), 1);
        let data = entity.inst_data(regs[0]);
        assert_eq!(data.triggers.len(), 1);
        assert_eq!(data.triggers[0].mode, RegMode::Rise);
        assert!(data.triggers[0].gate.is_none());
        // The trigger is a probe of the clock input.
        let trigger = data.triggers[0].trigger;
        match entity.value_def(trigger) {
            ValueDef::Inst(inst) => {
                let d = entity.inst_data(inst);
                assert_eq!(d.opcode, Opcode::Prb);
                assert_eq!(d.args[0], entity.arg_value(0));
            }
            other => panic!("trigger should be a probe, got {:?}", other),
        }
        // The stored value is a probe of %d.
        let stored = data.triggers[0].value;
        match entity.value_def(stored) {
            ValueDef::Inst(inst) => {
                assert_eq!(entity.inst_data(inst).opcode, Opcode::Prb);
                assert_eq!(entity.inst_data(inst).args[0], entity.arg_value(1));
            }
            other => panic!("stored value should be a probe, got {:?}", other),
        }
    }

    #[test]
    fn falling_edge_and_gated_flip_flop() {
        let src = r#"
        proc @ff (i1$ %clk, i1$ %en, i8$ %d) -> (i8$ %q) {
        init:
            %delay = const time 1ns
            %clk0 = prb i1$ %clk
            wait %check, %clk
        check:
            %clk1 = prb i1$ %clk
            %dp = prb i8$ %d
            %enp = prb i1$ %en
            %nclk1 = not i1 %clk1
            %fall = and i1 %clk0, %nclk1
            %cond = and i1 %fall, %enp
            drv i8$ %q, %dp after %delay if %cond
            br %init
        }
        "#;
        let module = parse_module(src).unwrap();
        let unit = module.unit(module.units()[0]);
        let entity = desequentialize(unit).expect("should desequentialize");
        assert!(verify_unit(&entity).is_ok());
        let reg = entity
            .all_insts()
            .into_iter()
            .find(|&i| entity.inst_data(i).opcode == Opcode::Reg)
            .unwrap();
        let data = entity.inst_data(reg);
        assert_eq!(data.triggers.len(), 1);
        assert_eq!(data.triggers[0].mode, RegMode::Fall);
        assert!(data.triggers[0].gate.is_some(), "enable must gate the trigger");
    }

    #[test]
    fn level_sensitive_latch_is_recognised() {
        let src = r#"
        proc @latch (i1$ %en, i8$ %d) -> (i8$ %q) {
        init:
            %delay = const time 1ns
            wait %body, %en, %d
        body:
            %enp = prb i1$ %en
            %dp = prb i8$ %d
            drv i8$ %q, %dp after %delay if %enp
            br %init
        }
        "#;
        let module = parse_module(src).unwrap();
        let unit = module.unit(module.units()[0]);
        let entity = desequentialize(unit).expect("should desequentialize");
        let reg = entity
            .all_insts()
            .into_iter()
            .find(|&i| entity.inst_data(i).opcode == Opcode::Reg)
            .unwrap();
        let data = entity.inst_data(reg);
        assert_eq!(data.triggers.len(), 1);
        assert_eq!(data.triggers[0].mode, RegMode::High);
    }

    #[test]
    fn unconditional_drive_rejects() {
        let src = r#"
        proc @p (i1$ %clk, i8$ %d) -> (i8$ %q) {
        init:
            %delay = const time 1ns
            wait %body, %clk
        body:
            %dp = prb i8$ %d
            drv i8$ %q, %dp after %delay
            br %init
        }
        "#;
        let module = parse_module(src).unwrap();
        let unit = module.unit(module.units()[0]);
        assert!(desequentialize(unit).is_none());
    }

    #[test]
    fn three_block_process_rejects() {
        let src = r#"
        proc @p (i1$ %clk) -> (i1$ %q) {
        a:
            wait %b, %clk
        b:
            %c = prb i1$ %clk
            br %c, %a, %d
        d:
            %one = const i1 1
            %delay = const time 1ns
            drv i1$ %q, %one after %delay
            br %a
        }
        "#;
        let module = parse_module(src).unwrap();
        let unit = module.unit(module.units()[0]);
        assert!(desequentialize(unit).is_none());
    }
}
