//! Constant Folding (CF, §4.1).
//!
//! Pure instructions whose operands are all constants are replaced by a
//! `const` of the folded value. The shared evaluator in [`llhd::eval`]
//! defines the semantics, so the folder cannot disagree with the simulators.

use llhd::eval::eval_pure;
use llhd::ir::{InstData, Opcode, UnitData};

/// Run constant folding on a unit. Returns `true` if anything changed.
pub fn run(unit: &mut UnitData) -> bool {
    let mut changed = false;
    loop {
        let mut local_change = false;
        for inst in unit.all_insts() {
            let data = unit.inst_data(inst).clone();
            if !data.opcode.is_pure() || data.opcode == Opcode::Const {
                continue;
            }
            // Collect constant operands.
            let mut const_args = Vec::with_capacity(data.args.len());
            let mut all_const = true;
            for &arg in &data.args {
                match unit.get_const(arg) {
                    Some(c) => const_args.push(c.clone()),
                    None => {
                        all_const = false;
                        break;
                    }
                }
            }
            if !all_const {
                continue;
            }
            let folded = match eval_pure(data.opcode, &const_args, &data.imms) {
                Some(v) => v,
                None => continue,
            };
            let result = match unit.get_inst_result(inst) {
                Some(r) => r,
                None => continue,
            };
            // Replace the instruction with a constant.
            let const_inst =
                unit.insert_inst_before(inst, InstData::constant(folded.clone()), Some(folded.ty()));
            let new_value = unit.inst_result(const_inst);
            unit.replace_value_uses(result, new_value);
            unit.remove_inst(inst);
            local_change = true;
        }
        changed |= local_change;
        if !local_change {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;
    use llhd::value::ConstValue;

    fn fold(src: &str) -> llhd::ir::Module {
        let mut module = parse_module(src).unwrap();
        for id in module.units() {
            run(module.unit_mut(id));
        }
        module
    }

    #[test]
    fn folds_arithmetic_chains() {
        let module = fold(
            r#"
            func @f () i32 {
            entry:
                %a = const i32 20
                %b = const i32 22
                %sum = add i32 %a, %b
                %two = const i32 2
                %prod = umul i32 %sum, %two
                ret i32 %prod
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        // The ret operand must now be a constant 84.
        let ret = *unit.all_insts().last().unwrap();
        let value = unit.inst_data(ret).args[0];
        assert_eq!(unit.get_const(value), Some(&ConstValue::int(32, 84)));
    }

    #[test]
    fn folds_comparisons_and_mux() {
        let module = fold(
            r#"
            func @f () i8 {
            entry:
                %a = const i8 5
                %b = const i8 9
                %lt = ult i8 %a, %b
                %choices = array [%a, %b]
                %sel = mux [2 x i8] %choices, %lt
                ret i8 %sel
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        let ret = *unit.all_insts().last().unwrap();
        let value = unit.inst_data(ret).args[0];
        assert_eq!(unit.get_const(value), Some(&ConstValue::int(8, 9)));
    }

    #[test]
    fn leaves_non_constant_operations_alone() {
        let module = fold(
            r#"
            func @f (i32 %x) i32 {
            entry:
                %one = const i32 1
                %sum = add i32 %x, %one
                ret i32 %sum
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        let has_add = unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::Add);
        assert!(has_add);
    }

    #[test]
    fn does_not_touch_signal_operations() {
        let mut module = parse_module(
            r#"
            proc @p (i8$ %a) -> (i8$ %q) {
            entry:
                %ap = prb i8$ %a
                %delay = const time 1ns
                drv i8$ %q, %ap after %delay
                wait %entry, %a
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(!run(module.unit_mut(id)));
    }
}
