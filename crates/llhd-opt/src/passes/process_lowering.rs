//! Process Lowering (PL, §4.5).
//!
//! A process that consists of a single basic block terminated by a `wait`
//! which is sensitive to every signal the process probes behaves exactly
//! like an entity: its body re-executes whenever one of its inputs changes.
//! This pass performs that conversion, producing an entity with the same
//! name and signature.

use llhd::ir::{InstData, Opcode, UnitData, UnitKind, Value};
use std::collections::HashMap;

/// Try to lower a process to an entity. Returns the replacement entity, or
/// `None` if the process does not have the required shape.
pub fn lower_process(unit: &UnitData) -> Option<UnitData> {
    if unit.kind() != UnitKind::Process {
        return None;
    }
    // Shape check: exactly one block, terminated by a plain wait.
    let blocks = unit.blocks();
    if blocks.len() != 1 {
        return None;
    }
    let block = blocks[0];
    let term = unit.terminator(block)?;
    let term_data = unit.inst_data(term);
    if term_data.opcode != Opcode::Wait {
        return None;
    }
    if term_data.blocks[0] != block {
        return None;
    }
    // The wait must be sensitive to every probed signal.
    let observed: Vec<Value> = term_data.args.clone();
    for inst in unit.insts(block) {
        let data = unit.inst_data(inst);
        match data.opcode {
            Opcode::Prb
                if !observed.contains(&data.args[0]) => {
                    return None;
                }
            // Anything outside the entity data flow subset disqualifies the
            // process.
            Opcode::Wait => {}
            op if !op.allowed_in(UnitKind::Entity) => return None,
            _ => {}
        }
    }

    // Build the replacement entity.
    let mut entity = UnitData::new(UnitKind::Entity, unit.name().clone(), unit.sig().clone());
    let body = entity.entry_block().unwrap();
    let mut value_map: HashMap<Value, Value> = HashMap::new();
    for (old, new) in unit.args().into_iter().zip(entity.args()) {
        value_map.insert(old, new);
        if let Some(name) = unit.value_name(old) {
            entity.set_value_name(new, name.to_string());
        }
    }
    for inst in unit.insts(block) {
        let data = unit.inst_data(inst);
        if data.opcode == Opcode::Wait {
            continue;
        }
        let mut new_data = InstData::new(data.opcode, vec![]);
        new_data.args = data.args.iter().map(|a| value_map[a]).collect();
        new_data.imms = data.imms.clone();
        new_data.konst = data.konst.clone();
        new_data.num_inputs = data.num_inputs;
        new_data.triggers = data
            .triggers
            .iter()
            .map(|t| llhd::ir::RegTrigger {
                value: value_map[&t.value],
                mode: t.mode,
                trigger: value_map[&t.trigger],
                gate: t.gate.map(|g| value_map[&g]),
            })
            .collect();
        if let Some(ext) = data.ext_unit {
            let ext_data = unit.ext_unit_data(ext).clone();
            new_data.ext_unit = Some(entity.add_ext_unit(ext_data.name, ext_data.sig));
        }
        let result_ty = unit.get_inst_result(inst).map(|r| unit.value_type(r));
        let new_inst = entity.append_inst(body, new_data, result_ty);
        if let (Some(old_result), Some(new_result)) =
            (unit.get_inst_result(inst), entity.get_inst_result(new_inst))
        {
            value_map.insert(old_result, new_result);
            if let Some(name) = unit.value_name(old_result) {
                entity.set_value_name(new_result, name.to_string());
            }
        }
    }
    Some(entity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;
    use llhd::verifier::{unit_dialect, verify_unit, Dialect};

    #[test]
    fn combinational_process_becomes_entity() {
        let module = parse_module(
            r#"
            proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
            entry:
                %qp = prb i32$ %q
                %xp = prb i32$ %x
                %enp = prb i1$ %en
                %sum = add i32 %qp, %xp
                %delay = const time 2ns
                %dns = array [%qp, %sum]
                %dn = mux [2 x i32] %dns, %enp
                drv i32$ %d, %dn after %delay
                wait %entry, %q, %x, %en
            }
            "#,
        )
        .unwrap();
        let unit = module.unit(module.units()[0]);
        let entity = lower_process(unit).expect("process should lower");
        assert_eq!(entity.kind(), UnitKind::Entity);
        assert_eq!(entity.name(), unit.name());
        assert_eq!(entity.sig(), unit.sig());
        assert!(verify_unit(&entity).is_ok());
        assert_eq!(unit_dialect(&entity), Dialect::Structural);
        // Same instruction mix minus the wait.
        assert_eq!(entity.all_insts().len(), unit.all_insts().len() - 1);
    }

    #[test]
    fn wait_missing_sensitivity_rejects() {
        let module = parse_module(
            r#"
            proc @p (i8$ %a, i8$ %b) -> (i8$ %q) {
            entry:
                %ap = prb i8$ %a
                %bp = prb i8$ %b
                %sum = add i8 %ap, %bp
                %delay = const time 1ns
                drv i8$ %q, %sum after %delay
                wait %entry, %a
            }
            "#,
        )
        .unwrap();
        let unit = module.unit(module.units()[0]);
        assert!(lower_process(unit).is_none());
    }

    #[test]
    fn multi_block_process_rejects() {
        let module = parse_module(
            r#"
            proc @p (i1$ %clk) -> (i1$ %q) {
            a:
                %c = prb i1$ %clk
                wait %b, %clk
            b:
                %one = const i1 1
                %delay = const time 1ns
                drv i1$ %q, %one after %delay
                br %a
            }
            "#,
        )
        .unwrap();
        let unit = module.unit(module.units()[0]);
        assert!(lower_process(unit).is_none());
    }

    #[test]
    fn timed_wait_rejects() {
        let module = parse_module(
            r#"
            proc @clock () -> (i1$ %clk) {
            entry:
                %cp = prb i1$ %clk
                %n = not i1 %cp
                %delay = const time 5ns
                drv i1$ %clk, %n after %delay
                wait %entry for %delay
            }
            "#,
        )
        .unwrap();
        let unit = module.unit(module.units()[0]);
        assert!(lower_process(unit).is_none());
    }
}
