//! Function call inlining (§4.1).
//!
//! The structural lowering requires all function calls inside processes to
//! be inlined so that the remaining code is a pure data flow computation.
//! This pass inlines calls to functions whose body is a single basic block —
//! the form produced for helper functions by HDL frontends. Calls to
//! multi-block functions are left in place and cause the lowering to reject
//! the process, mirroring the paper's "where this is not possible, the
//! process is rejected".

use llhd::ir::{InstData, Module, Opcode, UnitData, UnitId, UnitKind, Value};
use std::collections::HashMap;

/// Inline eligible calls in all processes and functions of a module.
/// Returns the number of call sites inlined.
pub fn run(module: &mut Module) -> usize {
    let mut inlined = 0;
    let unit_ids = module.units();
    for &id in &unit_ids {
        if module.unit(id).kind() == UnitKind::Entity {
            continue;
        }
        while let Some((call_inst, callee_id)) = find_inlinable_call(module, id) {
            let callee = module.unit(callee_id).clone();
            inline_call(module.unit_mut(id), call_inst, &callee);
            inlined += 1;
        }
    }
    inlined
}

/// Find a call instruction in `caller` whose callee is a single-block
/// function defined in the module.
fn find_inlinable_call(module: &Module, caller: UnitId) -> Option<(llhd::ir::Inst, UnitId)> {
    let unit = module.unit(caller);
    for inst in unit.all_insts() {
        let data = unit.inst_data(inst);
        if data.opcode != Opcode::Call {
            continue;
        }
        let ext = data.ext_unit?;
        let name = &unit.ext_unit_data(ext).name;
        let Some(callee_id) = module.unit_by_name(name) else {
            continue;
        };
        if callee_id == caller {
            continue;
        }
        let callee = module.unit(callee_id);
        if callee.kind() != UnitKind::Function || callee.blocks().len() != 1 {
            continue;
        }
        return Some((inst, callee_id));
    }
    None
}

/// Splice the single-block `callee` into `caller` at `call_inst`.
fn inline_call(caller: &mut UnitData, call_inst: llhd::ir::Inst, callee: &UnitData) {
    let call_data = caller.inst_data(call_inst).clone();
    let mut value_map: HashMap<Value, Value> = HashMap::new();
    for (i, &arg) in callee.args().iter().enumerate() {
        value_map.insert(arg, call_data.args[i]);
    }
    let callee_block = callee.entry_block().unwrap();
    let mut return_value: Option<Value> = None;
    for inst in callee.insts(callee_block) {
        let data = callee.inst_data(inst);
        match data.opcode {
            Opcode::Ret => break,
            Opcode::RetValue => {
                return_value = Some(value_map[&data.args[0]]);
                break;
            }
            _ => {}
        }
        let mut new_data = InstData::new(data.opcode, vec![]);
        new_data.args = data.args.iter().map(|a| value_map[a]).collect();
        new_data.imms = data.imms.clone();
        new_data.konst = data.konst.clone();
        new_data.num_inputs = data.num_inputs;
        if let Some(ext) = data.ext_unit {
            let ext_data = callee.ext_unit_data(ext).clone();
            new_data.ext_unit = Some(caller.add_ext_unit(ext_data.name, ext_data.sig));
        }
        let result_ty = callee.get_inst_result(inst).map(|r| callee.value_type(r));
        let new_inst = caller.insert_inst_before(call_inst, new_data, result_ty);
        if let (Some(old), Some(new)) = (
            callee.get_inst_result(inst),
            caller.get_inst_result(new_inst),
        ) {
            value_map.insert(old, new);
        }
    }
    if let (Some(result), Some(replacement)) = (caller.get_inst_result(call_inst), return_value) {
        caller.replace_value_uses(result, replacement);
    }
    caller.remove_inst(call_inst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;

    #[test]
    fn inlines_single_block_function_into_process() {
        let mut module = parse_module(
            r#"
            func @double (i32 %x) i32 {
            entry:
                %two = const i32 2
                %r = umul i32 %x, %two
                ret i32 %r
            }
            proc @p (i32$ %a) -> (i32$ %q) {
            entry:
                %ap = prb i32$ %a
                %d = call i32 @double (%ap)
                %delay = const time 1ns
                drv i32$ %q, %d after %delay
                wait %entry, %a
            }
            "#,
        )
        .unwrap();
        assert_eq!(run(&mut module), 1);
        let proc_id = module.unit_by_ident("p").unwrap();
        let unit = module.unit(proc_id);
        assert!(llhd::verifier::verify_unit(unit).is_ok());
        assert!(!unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::Call));
        assert!(unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == Opcode::Umul));
    }

    #[test]
    fn external_and_multi_block_calls_remain() {
        let mut module = parse_module(
            r#"
            func @helper (i1 %c, i32 %a) i32 {
            entry:
                br %c, %no, %yes
            yes:
                ret i32 %a
            no:
                %zero = const i32 0
                ret i32 %zero
            }
            func @caller (i1 %c, i32 %a) i32 {
            entry:
                %r = call i32 @helper (%c, %a)
                %e = call i32 @extern_fn (%r)
                ret i32 %e
            }
            "#,
        )
        .unwrap();
        assert_eq!(run(&mut module), 0);
        let caller = module.unit(module.unit_by_ident("caller").unwrap());
        let calls = caller
            .all_insts()
            .iter()
            .filter(|&&i| caller.inst_data(i).opcode == Opcode::Call)
            .count();
        assert_eq!(calls, 2);
    }

    #[test]
    fn nested_inlining_terminates() {
        let mut module = parse_module(
            r#"
            func @inc (i32 %x) i32 {
            entry:
                %one = const i32 1
                %r = add i32 %x, %one
                ret i32 %r
            }
            func @inc2 (i32 %x) i32 {
            entry:
                %a = call i32 @inc (%x)
                %b = call i32 @inc (%a)
                ret i32 %b
            }
            "#,
        )
        .unwrap();
        assert_eq!(run(&mut module), 2);
        let unit = module.unit(module.unit_by_ident("inc2").unwrap());
        let adds = unit
            .all_insts()
            .iter()
            .filter(|&&i| unit.inst_data(i).opcode == Opcode::Add)
            .count();
        assert_eq!(adds, 2);
    }
}
