//! Common Subexpression Elimination (CSE, §4.1).
//!
//! Identical pure instructions are merged when the earlier one dominates the
//! later one. Instruction identity is the tuple of opcode, operands,
//! immediates, and constant payload.

use llhd::analysis::{ControlFlowGraph, DominatorTree};
use llhd::ir::{Block, Inst, Opcode, UnitData, Value};
use llhd::value::ConstValue;
use std::collections::HashMap;

#[derive(PartialEq, Eq, Hash, Clone)]
struct ExprKey {
    opcode: Opcode,
    args: Vec<Value>,
    imms: Vec<usize>,
    konst: Option<ConstValue>,
}

/// Run common subexpression elimination on a unit. Returns `true` if
/// anything changed.
pub fn run(unit: &mut UnitData) -> bool {
    let cfg = ControlFlowGraph::new(unit);
    let domtree = DominatorTree::new(unit, &cfg);
    let mut changed = false;
    let mut seen: HashMap<ExprKey, Vec<(Block, Inst, Value)>> = HashMap::new();

    for block in unit.blocks() {
        for inst in unit.insts(block) {
            let data = unit.inst_data(inst);
            if !data.opcode.is_pure() {
                continue;
            }
            let result = match unit.get_inst_result(inst) {
                Some(r) => r,
                None => continue,
            };
            let key = ExprKey {
                opcode: data.opcode,
                args: data.args.clone(),
                imms: data.imms.clone(),
                konst: data.konst.clone(),
            };
            let candidates = seen.entry(key).or_default();
            let mut replaced = false;
            for (other_block, _, other_value) in candidates.iter() {
                let dominates = if *other_block == block {
                    // Same block: the earlier instruction (already in the
                    // candidate list) dominates the later one.
                    true
                } else {
                    domtree.dominates(*other_block, block)
                };
                if dominates {
                    unit.replace_value_uses(result, *other_value);
                    unit.remove_inst(inst);
                    changed = true;
                    replaced = true;
                    break;
                }
            }
            if !replaced {
                seen.entry(ExprKey {
                    opcode: data_key(unit, inst).0,
                    args: data_key(unit, inst).1,
                    imms: data_key(unit, inst).2,
                    konst: data_key(unit, inst).3,
                })
                .or_default()
                .push((block, inst, result));
            }
        }
    }
    changed
}

fn data_key(unit: &UnitData, inst: Inst) -> (Opcode, Vec<Value>, Vec<usize>, Option<ConstValue>) {
    let data = unit.inst_data(inst);
    (
        data.opcode,
        data.args.clone(),
        data.imms.clone(),
        data.konst.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;

    #[test]
    fn merges_identical_expressions_in_one_block() {
        let mut module = parse_module(
            r#"
            func @f (i32 %a, i32 %b) i32 {
            entry:
                %x = add i32 %a, %b
                %y = add i32 %a, %b
                %z = umul i32 %x, %y
                ret i32 %z
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        let adds = unit
            .all_insts()
            .iter()
            .filter(|&&i| unit.inst_data(i).opcode == Opcode::Add)
            .count();
        assert_eq!(adds, 1);
        // The multiply now uses the same value twice.
        let mul = unit
            .all_insts()
            .into_iter()
            .find(|&i| unit.inst_data(i).opcode == Opcode::Umul)
            .unwrap();
        let args = &unit.inst_data(mul).args;
        assert_eq!(args[0], args[1]);
    }

    #[test]
    fn merges_duplicate_constants() {
        let mut module = parse_module(
            r#"
            func @f () i32 {
            entry:
                %a = const i32 7
                %b = const i32 7
                %c = add i32 %a, %b
                ret i32 %c
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        let consts = unit
            .all_insts()
            .iter()
            .filter(|&&i| unit.inst_data(i).opcode == Opcode::Const)
            .count();
        assert_eq!(consts, 1);
    }

    #[test]
    fn merges_across_dominating_blocks() {
        let mut module = parse_module(
            r#"
            func @f (i32 %a, i1 %c) i32 {
            entry:
                %x = add i32 %a, %a
                br %c, %left, %right
            left:
                %y = add i32 %a, %a
                ret i32 %y
            right:
                ret i32 %x
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        assert!(run(module.unit_mut(id)));
        let unit = module.unit(id);
        let adds = unit
            .all_insts()
            .iter()
            .filter(|&&i| unit.inst_data(i).opcode == Opcode::Add)
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn does_not_merge_across_siblings() {
        let mut module = parse_module(
            r#"
            func @f (i32 %a, i1 %c) i32 {
            entry:
                br %c, %left, %right
            left:
                %x = add i32 %a, %a
                ret i32 %x
            right:
                %y = add i32 %a, %a
                ret i32 %y
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        run(module.unit_mut(id));
        let unit = module.unit(id);
        let adds = unit
            .all_insts()
            .iter()
            .filter(|&&i| unit.inst_data(i).opcode == Opcode::Add)
            .count();
        assert_eq!(adds, 2, "sibling blocks must keep their own copies");
    }

    #[test]
    fn probes_are_not_merged() {
        let mut module = parse_module(
            r#"
            proc @p (i8$ %a) -> (i8$ %q) {
            entry:
                %x = prb i8$ %a
                %y = prb i8$ %a
                %delay = const time 1ns
                drv i8$ %q, %x after %delay
                drv i8$ %q, %y after %delay
                wait %entry, %a
            }
            "#,
        )
        .unwrap();
        let id = module.units()[0];
        run(module.unit_mut(id));
        let unit = module.unit(id);
        let prbs = unit
            .all_insts()
            .iter()
            .filter(|&&i| unit.inst_data(i).opcode == Opcode::Prb)
            .count();
        assert_eq!(prbs, 2);
    }
}
