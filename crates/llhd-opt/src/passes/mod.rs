//! The individual transformation passes.
//!
//! Each pass exposes a `run` function operating on a single
//! [`UnitData`](llhd::ir::UnitData) (or, for the process-to-entity
//! conversions, returning a replacement unit). All passes return whether they
//! changed anything, so the pipeline can iterate to a fixed point.

pub mod const_fold;
pub mod cse;
pub mod dce;
pub mod deseq;
pub mod ecm;
pub mod inline;
pub mod mem2reg;
pub mod process_lowering;
pub mod simplify;
pub mod tcfe;
pub mod tcm;
