//! Instruction Simplification (IS, §4.1).
//!
//! A peephole pass reducing short instruction sequences to simpler forms,
//! comparable to LLVM's instruction combining: arithmetic and logic
//! identities, double negation, constant branch conditions, and muxes with a
//! constant selector.

use llhd::ir::{InstData, Opcode, UnitData, Value};
use llhd::value::ConstValue;

/// Run instruction simplification on a unit. Returns `true` if anything
/// changed.
pub fn run(unit: &mut UnitData) -> bool {
    let mut changed = false;
    loop {
        let mut local = false;
        for inst in unit.all_insts() {
            if !unit.has_inst(inst) {
                continue;
            }
            local |= simplify_inst(unit, inst);
        }
        changed |= local;
        if !local {
            break;
        }
    }
    changed
}

/// Replace all uses of `inst`'s result with `replacement` and remove `inst`.
fn replace_with_value(unit: &mut UnitData, inst: llhd::ir::Inst, replacement: Value) -> bool {
    if let Some(result) = unit.get_inst_result(inst) {
        unit.replace_value_uses(result, replacement);
        unit.remove_inst(inst);
        true
    } else {
        false
    }
}

fn is_const_zero(unit: &UnitData, value: Value) -> bool {
    matches!(unit.get_const(value), Some(ConstValue::Int(v)) if v.is_zero())
}

fn is_const_ones(unit: &UnitData, value: Value) -> bool {
    matches!(unit.get_const(value), Some(ConstValue::Int(v)) if v.is_all_ones())
}

fn is_const_one(unit: &UnitData, value: Value) -> bool {
    matches!(unit.get_const(value), Some(ConstValue::Int(v)) if v.is_one())
}

fn simplify_inst(unit: &mut UnitData, inst: llhd::ir::Inst) -> bool {
    let data = unit.inst_data(inst).clone();
    match data.opcode {
        Opcode::Add | Opcode::Or | Opcode::Xor | Opcode::Sub | Opcode::Shl | Opcode::Shr => {
            let (a, b) = (data.args[0], data.args[1]);
            // x + 0, x | 0, x ^ 0, x - 0, x << 0, x >> 0  =>  x
            if is_const_zero(unit, b) {
                return replace_with_value(unit, inst, a);
            }
            // 0 + x, 0 | x, 0 ^ x  =>  x (commutative cases only)
            if matches!(data.opcode, Opcode::Add | Opcode::Or | Opcode::Xor)
                && is_const_zero(unit, a)
            {
                return replace_with_value(unit, inst, b);
            }
            // x - x, x ^ x  =>  0
            if matches!(data.opcode, Opcode::Sub | Opcode::Xor) && a == b {
                let ty = unit.value_type(a);
                let zero = ConstValue::zero_of(&ty);
                let zero_inst =
                    unit.insert_inst_before(inst, InstData::constant(zero), Some(ty));
                let zero_value = unit.inst_result(zero_inst);
                return replace_with_value(unit, inst, zero_value);
            }
            false
        }
        Opcode::And => {
            let (a, b) = (data.args[0], data.args[1]);
            // x & 0 => 0, 0 & x => 0
            if is_const_zero(unit, a) {
                return replace_with_value(unit, inst, a);
            }
            if is_const_zero(unit, b) {
                return replace_with_value(unit, inst, b);
            }
            // x & ~0 => x
            if is_const_ones(unit, b) {
                return replace_with_value(unit, inst, a);
            }
            if is_const_ones(unit, a) {
                return replace_with_value(unit, inst, b);
            }
            // x & x => x
            if a == b {
                return replace_with_value(unit, inst, a);
            }
            false
        }
        Opcode::Umul | Opcode::Smul => {
            let (a, b) = (data.args[0], data.args[1]);
            // x * 1 => x
            if is_const_one(unit, b) {
                return replace_with_value(unit, inst, a);
            }
            if is_const_one(unit, a) {
                return replace_with_value(unit, inst, b);
            }
            // x * 0 => 0
            if is_const_zero(unit, b) {
                return replace_with_value(unit, inst, b);
            }
            if is_const_zero(unit, a) {
                return replace_with_value(unit, inst, a);
            }
            false
        }
        Opcode::Udiv | Opcode::Sdiv => {
            let (a, b) = (data.args[0], data.args[1]);
            // x / 1 => x
            if is_const_one(unit, b) {
                return replace_with_value(unit, inst, a);
            }
            false
        }
        Opcode::Not => {
            // not(not(x)) => x
            let arg = data.args[0];
            if let llhd::ir::ValueDef::Inst(def) = unit.value_def(arg) {
                if unit.inst_data(def).opcode == Opcode::Not {
                    let original = unit.inst_data(def).args[0];
                    return replace_with_value(unit, inst, original);
                }
            }
            false
        }
        Opcode::Eq | Opcode::Neq => {
            let (a, b) = (data.args[0], data.args[1]);
            if a == b {
                let value = ConstValue::bool(data.opcode == Opcode::Eq);
                let const_inst = unit.insert_inst_before(
                    inst,
                    InstData::constant(value.clone()),
                    Some(value.ty()),
                );
                let const_value = unit.inst_result(const_inst);
                return replace_with_value(unit, inst, const_value);
            }
            false
        }
        Opcode::Mux => {
            // mux with a constant selector: pick the element directly if the
            // choices are an `array` construction.
            let (choices, sel) = (data.args[0], data.args[1]);
            let index = match unit.get_const(sel) {
                Some(c) => match c.to_u64() {
                    Some(v) => v as usize,
                    None => return false,
                },
                None => return false,
            };
            if let llhd::ir::ValueDef::Inst(def) = unit.value_def(choices) {
                let def_data = unit.inst_data(def);
                if def_data.opcode == Opcode::Array && !def_data.args.is_empty() {
                    let chosen = def_data.args[index.min(def_data.args.len() - 1)];
                    return replace_with_value(unit, inst, chosen);
                }
            }
            false
        }
        Opcode::BrCond => {
            // A conditional branch with identical targets or a constant
            // condition becomes an unconditional branch.
            let cond = data.args[0];
            let (bf, bt) = (data.blocks[0], data.blocks[1]);
            let target = if bf == bt {
                Some(bf)
            } else {
                match unit.get_const(cond) {
                    Some(c) if c.is_truthy() => Some(bt),
                    Some(_) => Some(bf),
                    None => None,
                }
            };
            if let Some(target) = target {
                let block = unit.inst_block(inst).unwrap();
                let mut br = InstData::new(Opcode::Br, vec![]);
                br.blocks = vec![target];
                unit.remove_inst(inst);
                unit.append_inst(block, br, None);
                return true;
            }
            false
        }
        Opcode::DrvCond => {
            // A drive whose condition is constant true becomes an
            // unconditional drive; constant false removes it.
            let cond = data.args[3];
            match unit.get_const(cond) {
                Some(c) if c.is_truthy() => {
                    let block = unit.inst_block(inst).unwrap();
                    let drv = InstData::new(
                        Opcode::Drv,
                        vec![data.args[0], data.args[1], data.args[2]],
                    );
                    let new_inst = unit.append_inst(block, drv, None);
                    unit.move_inst_before(new_inst, inst);
                    unit.remove_inst(inst);
                    true
                }
                Some(_) => {
                    unit.remove_inst(inst);
                    true
                }
                None => false,
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;
    use llhd::ir::Module;

    fn simplify(src: &str) -> Module {
        let mut module = parse_module(src).unwrap();
        for id in module.units() {
            run(module.unit_mut(id));
        }
        module
    }

    fn count_op(module: &Module, opcode: Opcode) -> usize {
        module
            .units()
            .into_iter()
            .map(|id| {
                let unit = module.unit(id);
                unit.all_insts()
                    .iter()
                    .filter(|&&i| unit.inst_data(i).opcode == opcode)
                    .count()
            })
            .sum()
    }

    #[test]
    fn add_zero_is_removed() {
        let module = simplify(
            r#"
            func @f (i32 %x) i32 {
            entry:
                %zero = const i32 0
                %y = add i32 %x, %zero
                ret i32 %y
            }
            "#,
        );
        assert_eq!(count_op(&module, Opcode::Add), 0);
        let unit = module.unit(module.units()[0]);
        let ret = *unit.all_insts().last().unwrap();
        assert_eq!(unit.inst_data(ret).args[0], unit.arg_value(0));
    }

    #[test]
    fn mul_identities() {
        let module = simplify(
            r#"
            func @f (i32 %x) i32 {
            entry:
                %one = const i32 1
                %zero = const i32 0
                %a = umul i32 %x, %one
                %b = umul i32 %a, %zero
                %c = add i32 %b, %x
                ret i32 %c
            }
            "#,
        );
        assert_eq!(count_op(&module, Opcode::Umul), 0);
    }

    #[test]
    fn xor_self_becomes_zero() {
        let module = simplify(
            r#"
            func @f (i32 %x) i32 {
            entry:
                %y = xor i32 %x, %x
                ret i32 %y
            }
            "#,
        );
        assert_eq!(count_op(&module, Opcode::Xor), 0);
        let unit = module.unit(module.units()[0]);
        let ret = *unit.all_insts().last().unwrap();
        assert_eq!(
            unit.get_const(unit.inst_data(ret).args[0]),
            Some(&ConstValue::int(32, 0))
        );
    }

    #[test]
    fn double_not_cancels() {
        let module = simplify(
            r#"
            func @f (i1 %x) i1 {
            entry:
                %a = not i1 %x
                %b = not i1 %a
                ret i1 %b
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        let ret = *unit.all_insts().last().unwrap();
        assert_eq!(unit.inst_data(ret).args[0], unit.arg_value(0));
    }

    #[test]
    fn constant_branch_condition_becomes_unconditional() {
        let module = simplify(
            r#"
            func @f () i32 {
            entry:
                %t = const i1 1
                %a = const i32 1
                br %t, %no, %yes
            yes:
                ret i32 %a
            no:
                ret i32 %a
            }
            "#,
        );
        assert_eq!(count_op(&module, Opcode::BrCond), 0);
        assert_eq!(count_op(&module, Opcode::Br), 1);
    }

    #[test]
    fn constant_drive_condition_is_resolved() {
        let module = simplify(
            r#"
            proc @p (i8$ %a) -> (i8$ %q) {
            entry:
                %ap = prb i8$ %a
                %delay = const time 1ns
                %t = const i1 1
                %f = const i1 0
                drv i8$ %q, %ap after %delay if %t
                drv i8$ %q, %ap after %delay if %f
                wait %entry, %a
            }
            "#,
        );
        assert_eq!(count_op(&module, Opcode::DrvCond), 0);
        assert_eq!(count_op(&module, Opcode::Drv), 1);
    }

    #[test]
    fn eq_self_is_true() {
        let module = simplify(
            r#"
            func @f (i32 %x) i1 {
            entry:
                %e = eq i32 %x, %x
                ret i1 %e
            }
            "#,
        );
        assert_eq!(count_op(&module, Opcode::Eq), 0);
    }
}
