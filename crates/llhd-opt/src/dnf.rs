//! Disjunctive Normal Form canonicalization of `i1` conditions.
//!
//! The desequentialization pass (§4.6) canonicalizes the condition operand
//! of each drive into its DNF. Every boolean expression has a DNF; values
//! that cannot be expanded further (probes, arguments, results of
//! non-boolean instructions) are retained as opaque literals.

use llhd::ir::{Opcode, UnitData, Value, ValueDef};
use std::collections::BTreeSet;

/// A literal: a value used positively or negated.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct Literal {
    /// The underlying `i1` value.
    pub value: Value,
    /// Whether the literal is negated.
    pub negated: bool,
}

impl Literal {
    /// A positive literal.
    pub fn pos(value: Value) -> Self {
        Literal {
            value,
            negated: false,
        }
    }

    /// A negative literal.
    pub fn neg(value: Value) -> Self {
        Literal {
            value,
            negated: true,
        }
    }

    /// The complementary literal.
    pub fn complement(self) -> Self {
        Literal {
            value: self.value,
            negated: !self.negated,
        }
    }
}

/// A conjunction of literals (one AND-term of the DNF).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct Term {
    literals: BTreeSet<Literal>,
}

impl Term {
    /// The empty term, which is the constant `true`.
    pub fn truth() -> Self {
        Term::default()
    }

    /// A term consisting of a single literal.
    pub fn of(literal: Literal) -> Self {
        let mut literals = BTreeSet::new();
        literals.insert(literal);
        Term { literals }
    }

    /// The literals of this term.
    pub fn literals(&self) -> impl Iterator<Item = &Literal> {
        self.literals.iter()
    }

    /// The number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether this is the constant-true term.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Conjoin two terms. Returns `None` if the result is contradictory
    /// (contains a literal and its complement).
    pub fn and(&self, other: &Term) -> Option<Term> {
        let mut literals = self.literals.clone();
        for lit in &other.literals {
            if literals.contains(&lit.complement()) {
                return None;
            }
            literals.insert(*lit);
        }
        Some(Term { literals })
    }

    /// Whether the term contains the given literal.
    pub fn contains(&self, literal: &Literal) -> bool {
        self.literals.contains(literal)
    }
}

/// A disjunction of terms: the DNF itself.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Dnf {
    terms: Vec<Term>,
}

impl Dnf {
    /// The constant `false` (no terms).
    pub fn falsity() -> Self {
        Dnf { terms: vec![] }
    }

    /// The constant `true` (one empty term).
    pub fn truth() -> Self {
        Dnf {
            terms: vec![Term::truth()],
        }
    }

    /// A DNF consisting of a single literal.
    pub fn literal(literal: Literal) -> Self {
        Dnf {
            terms: vec![Term::of(literal)],
        }
    }

    /// The terms of the disjunction.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Whether this is the constant false.
    pub fn is_false(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether this is the constant true.
    pub fn is_true(&self) -> bool {
        self.terms.iter().any(|t| t.is_empty())
    }

    /// Disjunction of two DNFs.
    pub fn or(&self, other: &Dnf) -> Dnf {
        let mut terms = self.terms.clone();
        for term in &other.terms {
            if !terms.contains(term) {
                terms.push(term.clone());
            }
        }
        Dnf { terms }
    }

    /// Conjunction of two DNFs (distributes terms, drops contradictions).
    pub fn and(&self, other: &Dnf) -> Dnf {
        let mut terms = vec![];
        for a in &self.terms {
            for b in &other.terms {
                if let Some(t) = a.and(b) {
                    if !terms.contains(&t) {
                        terms.push(t);
                    }
                }
            }
        }
        Dnf { terms }
    }
}

/// The maximum number of terms produced before the expansion bails out and
/// treats the value as an opaque literal.
const MAX_TERMS: usize = 64;

/// Canonicalize the condition `value` of `unit` into DNF. `negated` requests
/// the DNF of the complement.
pub fn dnf_of(unit: &UnitData, value: Value, negated: bool) -> Dnf {
    let dnf = expand(unit, value, negated, 0);
    if dnf.terms().len() > MAX_TERMS {
        // Too large: fall back to an opaque literal.
        Dnf::literal(Literal {
            value,
            negated,
        })
    } else {
        dnf
    }
}

fn expand(unit: &UnitData, value: Value, negated: bool, depth: usize) -> Dnf {
    if depth > 32 {
        return Dnf::literal(Literal { value, negated });
    }
    // Constants fold directly.
    if let Some(c) = unit.get_const(value) {
        let truthy = c.is_truthy() ^ negated;
        return if truthy { Dnf::truth() } else { Dnf::falsity() };
    }
    let inst = match unit.value_def(value) {
        ValueDef::Inst(inst) => inst,
        _ => return Dnf::literal(Literal { value, negated }),
    };
    let data = unit.inst_data(inst);
    let is_bool = |v: Value| {
        matches!(unit.value_type(v).kind(), llhd::ty::TypeKind::Int(1))
    };
    match data.opcode {
        Opcode::And | Opcode::Or => {
            let a = expand(unit, data.args[0], negated, depth + 1);
            let b = expand(unit, data.args[1], negated, depth + 1);
            // De Morgan: negation swaps the connective.
            let use_and = (data.opcode == Opcode::And) ^ negated;
            if use_and {
                a.and(&b)
            } else {
                a.or(&b)
            }
        }
        Opcode::Not => expand(unit, data.args[0], !negated, depth + 1),
        Opcode::Xor | Opcode::Neq if is_bool(data.args[0]) && is_bool(data.args[1]) => {
            // a xor b = (a & !b) | (!a & b); negated gives the equivalence.
            let (x, y) = (data.args[0], data.args[1]);
            if !negated {
                expand(unit, x, false, depth + 1)
                    .and(&expand(unit, y, true, depth + 1))
                    .or(&expand(unit, x, true, depth + 1).and(&expand(unit, y, false, depth + 1)))
            } else {
                expand(unit, x, false, depth + 1)
                    .and(&expand(unit, y, false, depth + 1))
                    .or(&expand(unit, x, true, depth + 1).and(&expand(unit, y, true, depth + 1)))
            }
        }
        Opcode::Eq if is_bool(data.args[0]) && is_bool(data.args[1]) => {
            // a == b on booleans is the negation of xor.
            let (x, y) = (data.args[0], data.args[1]);
            if negated {
                expand(unit, x, false, depth + 1)
                    .and(&expand(unit, y, true, depth + 1))
                    .or(&expand(unit, x, true, depth + 1).and(&expand(unit, y, false, depth + 1)))
            } else {
                expand(unit, x, false, depth + 1)
                    .and(&expand(unit, y, false, depth + 1))
                    .or(&expand(unit, x, true, depth + 1).and(&expand(unit, y, true, depth + 1)))
            }
        }
        _ => Dnf::literal(Literal { value, negated }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;
    use llhd::ir::Module;

    fn build(src: &str) -> (Module, Vec<Value>) {
        let module = parse_module(src).unwrap();
        let unit = module.unit(module.units()[0]);
        let args = unit.args();
        (module, args)
    }

    /// The posedge expression of Figure 5: `and(neq(clk0, clk1), clk1)`.
    #[test]
    fn posedge_expands_to_rising_edge_term() {
        let (module, _) = build(
            r#"
            func @f (i1 %clk0, i1 %clk1) i1 {
            entry:
                %chg = neq i1 %clk0, %clk1
                %posedge = and i1 %chg, %clk1
                ret i1 %posedge
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        let ret = *unit.all_insts().last().unwrap();
        let posedge = unit.inst_data(ret).args[0];
        let clk0 = unit.arg_value(0);
        let clk1 = unit.arg_value(1);
        let dnf = dnf_of(unit, posedge, false);
        // Expected single term: !clk0 & clk1 (the clk0 & !clk1 & clk1 branch
        // is contradictory and disappears).
        assert_eq!(dnf.terms().len(), 1);
        let term = &dnf.terms()[0];
        assert!(term.contains(&Literal::neg(clk0)));
        assert!(term.contains(&Literal::pos(clk1)));
        assert_eq!(term.len(), 2);
    }

    #[test]
    fn negation_uses_de_morgan() {
        let (module, _) = build(
            r#"
            func @f (i1 %a, i1 %b) i1 {
            entry:
                %x = and i1 %a, %b
                %y = not i1 %x
                ret i1 %y
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        let ret = *unit.all_insts().last().unwrap();
        let y = unit.inst_data(ret).args[0];
        let dnf = dnf_of(unit, y, false);
        // !(a & b) = !a | !b
        assert_eq!(dnf.terms().len(), 2);
        assert!(dnf
            .terms()
            .iter()
            .any(|t| t.contains(&Literal::neg(unit.arg_value(0)))));
        assert!(dnf
            .terms()
            .iter()
            .any(|t| t.contains(&Literal::neg(unit.arg_value(1)))));
    }

    #[test]
    fn constants_fold() {
        let (module, _) = build(
            r#"
            func @f (i1 %a) i1 {
            entry:
                %t = const i1 1
                %x = and i1 %a, %t
                ret i1 %x
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        let ret = *unit.all_insts().last().unwrap();
        let x = unit.inst_data(ret).args[0];
        let dnf = dnf_of(unit, x, false);
        assert_eq!(dnf.terms().len(), 1);
        assert_eq!(dnf.terms()[0].len(), 1);
        assert!(dnf.terms()[0].contains(&Literal::pos(unit.arg_value(0))));
        // x & false = false
        let dnf_false = dnf_of(unit, x, true).and(&dnf_of(unit, x, false));
        assert!(dnf_false.is_false());
    }

    #[test]
    fn opaque_values_stay_literals() {
        let (module, _) = build(
            r#"
            func @f (i8 %a, i8 %b) i1 {
            entry:
                %cmp = ult i8 %a, %b
                ret i1 %cmp
            }
            "#,
        );
        let unit = module.unit(module.units()[0]);
        let ret = *unit.all_insts().last().unwrap();
        let cmp = unit.inst_data(ret).args[0];
        let dnf = dnf_of(unit, cmp, false);
        assert_eq!(dnf.terms().len(), 1);
        assert!(dnf.terms()[0].contains(&Literal::pos(cmp)));
    }

    #[test]
    fn dnf_algebra() {
        let a = Literal::pos(Value(1));
        let b = Literal::pos(Value(2));
        let dnf_a = Dnf::literal(a);
        let dnf_b = Dnf::literal(b);
        let both = dnf_a.and(&dnf_b);
        assert_eq!(both.terms().len(), 1);
        assert_eq!(both.terms()[0].len(), 2);
        let either = dnf_a.or(&dnf_b);
        assert_eq!(either.terms().len(), 2);
        let contradiction = dnf_a.and(&Dnf::literal(a.complement()));
        assert!(contradiction.is_false());
        assert!(Dnf::truth().is_true());
        assert!(Dnf::falsity().is_false());
        assert!(Dnf::truth().and(&dnf_a).terms()[0].contains(&a));
    }
}
