//! Pass pipelines (Figure 4 of the paper).
//!
//! [`optimize_unit`] runs the basic cleanup passes to a fixed point.
//! [`lower_to_structural`] performs the full Behavioural → Structural
//! lowering: inlining, cleanup, ECM, TCM, TCFE, then process lowering or
//! desequentialization per process. Processes that cannot be lowered are
//! reported rather than silently dropped, mirroring the paper's "the process
//! is rejected".

use crate::passes;
use llhd::ir::{Module, UnitData, UnitKind};

/// Options controlling the behavioural-to-structural lowering.
#[derive(Clone, Debug)]
pub struct LoweringOptions {
    /// Inline single-block function calls before lowering.
    pub inline_functions: bool,
    /// Upper bound on cleanup iterations per unit.
    pub max_iterations: usize,
}

impl Default for LoweringOptions {
    fn default() -> Self {
        LoweringOptions {
            inline_functions: true,
            max_iterations: 8,
        }
    }
}

/// The outcome of [`lower_to_structural`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoweringReport {
    /// Processes converted to entities by process lowering (combinational).
    pub lowered_processes: usize,
    /// Processes converted to entities by desequentialization (sequential).
    pub desequentialized_processes: usize,
    /// Names of processes that could not be lowered and remain behavioural.
    pub rejected: Vec<String>,
    /// Number of function call sites inlined.
    pub inlined_calls: usize,
}

impl LoweringReport {
    /// Whether every process was successfully lowered.
    pub fn is_fully_structural(&self) -> bool {
        self.rejected.is_empty()
    }
}

/// Run the basic cleanup passes (constant folding, DCE, CSE, instruction
/// simplification, variable promotion) to a fixed point. Returns `true` if
/// anything changed.
pub fn optimize_unit(unit: &mut UnitData) -> bool {
    let mut changed = false;
    for _ in 0..8 {
        let mut local = false;
        local |= passes::const_fold::run(unit);
        local |= passes::simplify::run(unit);
        local |= passes::cse::run(unit);
        local |= passes::mem2reg::run(unit);
        local |= passes::dce::run(unit);
        changed |= local;
        if !local {
            break;
        }
    }
    changed
}

/// Run the cleanup passes on every unit of a module.
pub fn optimize_module(module: &mut Module) -> bool {
    let mut changed = false;
    for id in module.units() {
        changed |= optimize_unit(module.unit_mut(id));
    }
    changed
}

/// Lower all processes of a module from Behavioural to Structural LLHD.
///
/// Each process is cleaned up, subjected to early and temporal code motion
/// and control flow elimination, and finally converted to an entity either
/// by process lowering (combinational) or desequentialization (sequential).
/// Processes that resist conversion are left untouched and recorded in the
/// report.
pub fn lower_to_structural(module: &mut Module, options: &LoweringOptions) -> LoweringReport {
    let mut report = LoweringReport::default();
    if options.inline_functions {
        report.inlined_calls = passes::inline::run(module);
    }
    for id in module.units() {
        if module.unit(id).kind() != UnitKind::Process {
            continue;
        }
        // Work on a copy so a failed lowering leaves the original process
        // untouched.
        let mut work = module.unit(id).clone();
        for _ in 0..options.max_iterations {
            let mut changed = false;
            changed |= optimize_unit(&mut work);
            changed |= passes::ecm::run(&mut work);
            changed |= passes::tcm::run(&mut work);
            changed |= passes::tcfe::run(&mut work);
            if !changed {
                break;
            }
        }
        passes::dce::run(&mut work);

        if let Some(entity) = passes::process_lowering::lower_process(&work) {
            *module.unit_mut(id) = entity;
            report.lowered_processes += 1;
        } else if let Some(entity) = passes::deseq::desequentialize(&work) {
            *module.unit_mut(id) = entity;
            report.desequentialized_processes += 1;
        } else {
            report.rejected.push(module.unit(id).name().to_string());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;
    use llhd::ir::Opcode;
    use llhd::verifier::{module_dialect, verify_module, Dialect};

    /// The Behavioural LLHD of Figure 5 (left column): the raw accumulator
    /// processes as a frontend would emit them.
    const FIGURE5_BEHAVIOURAL: &str = r#"
        proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
        init:
            %clk0 = prb i1$ %clk
            wait %check, %clk
        check:
            %clk1 = prb i1$ %clk
            %chg = neq i1 %clk0, %clk1
            %posedge = and i1 %chg, %clk1
            br %posedge, %init, %event
        event:
            %dp = prb i32$ %d
            %delay = const time 1ns
            drv i32$ %q, %dp after %delay
            br %init
        }

        proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
        entry:
            %qp = prb i32$ %q
            %enp = prb i1$ %en
            %delay = const time 2ns
            drv i32$ %d, %qp after %delay
            br %enp, %final, %enabled
        enabled:
            %xp = prb i32$ %x
            %sum = add i32 %qp, %xp
            drv i32$ %d, %sum after %delay
            br %final
        final:
            wait %entry, %q, %x, %en
        }

        entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
            %zero = const i32 0
            %d = sig i32 %zero
            inst @acc_ff (%clk, %d) -> (%q)
            inst @acc_comb (%q, %x, %en) -> (%d)
        }
    "#;

    #[test]
    fn figure5_lowers_to_structural() {
        let mut module = parse_module(FIGURE5_BEHAVIOURAL).unwrap();
        assert_eq!(module_dialect(&module), Dialect::Behavioural);
        let report = lower_to_structural(&mut module, &LoweringOptions::default());
        assert!(report.is_fully_structural(), "rejected: {:?}", report.rejected);
        assert_eq!(report.lowered_processes, 1, "acc_comb lowers via PL");
        assert_eq!(
            report.desequentialized_processes, 1,
            "acc_ff lowers via Deseq"
        );
        assert!(verify_module(&module).is_ok(), "{:?}", verify_module(&module));
        assert_eq!(module_dialect(&module), Dialect::Structural);

        // The flip-flop became an entity with a rising-edge register.
        let ff = module.unit(module.unit_by_ident("acc_ff").unwrap());
        assert_eq!(ff.kind(), UnitKind::Entity);
        let reg = ff
            .all_insts()
            .into_iter()
            .find(|&i| ff.inst_data(i).opcode == Opcode::Reg)
            .expect("acc_ff should contain a reg");
        assert_eq!(ff.inst_data(reg).triggers[0].mode, llhd::ir::RegMode::Rise);

        // The combinational part became an entity with a mux-selected drive.
        let comb = module.unit(module.unit_by_ident("acc_comb").unwrap());
        assert_eq!(comb.kind(), UnitKind::Entity);
        assert!(comb
            .all_insts()
            .iter()
            .any(|&i| comb.inst_data(i).opcode == Opcode::Mux));
        assert!(comb
            .all_insts()
            .iter()
            .any(|&i| comb.inst_data(i).opcode == Opcode::Drv));
    }

    #[test]
    fn testbench_processes_are_rejected_but_kept() {
        let mut module = parse_module(
            r#"
            proc @stimuli () -> (i1$ %clk) {
            entry:
                %zero = const i1 0
                %one = const i1 1
                %del = const time 5ns
                drv i1$ %clk, %one after %del
                wait %next for %del
            next:
                drv i1$ %clk, %zero after %del
                wait %entry for %del
            }
            "#,
        )
        .unwrap();
        let report = lower_to_structural(&mut module, &LoweringOptions::default());
        assert_eq!(report.lowered_processes, 0);
        assert_eq!(report.desequentialized_processes, 0);
        assert_eq!(report.rejected, vec!["@stimuli".to_string()]);
        // The process is still there, untouched in kind.
        let unit = module.unit(module.units()[0]);
        assert_eq!(unit.kind(), UnitKind::Process);
    }

    #[test]
    fn optimize_module_is_idempotent() {
        let mut module = parse_module(FIGURE5_BEHAVIOURAL).unwrap();
        optimize_module(&mut module);
        let after_first = llhd::assembly::write_module(&module);
        optimize_module(&mut module);
        assert_eq!(after_first, llhd::assembly::write_module(&module));
    }
}
