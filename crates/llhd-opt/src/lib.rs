//! # llhd-opt — transformation passes for LLHD
//!
//! This crate implements the optimization and lowering passes described in
//! §4 of the LLHD paper. The headline transformation lowers Behavioural
//! LLHD (processes as emitted by an HDL frontend) to Structural LLHD
//! (entities with data flow, `reg` storage elements, and instances):
//!
//! 1. Basic transformations: constant folding ([`passes::const_fold`]), dead
//!    code elimination ([`passes::dce`]), common subexpression elimination
//!    ([`passes::cse`]), instruction simplification ([`passes::simplify`]).
//! 2. Early Code Motion ([`passes::ecm`]): hoist instructions as far up the
//!    CFG as their operands allow, but never move probes across `wait`.
//! 3. Temporal Code Motion ([`passes::tcm`]): give every temporal region a
//!    single exiting block and move `drv` instructions there, attaching the
//!    branch conditions along the way as drive conditions.
//! 4. Total Control Flow Elimination ([`passes::tcfe`]): merge and remove
//!    blocks until each temporal region consists of a single block.
//! 5. Process Lowering ([`passes::process_lowering`]): convert single-block
//!    combinational processes into entities.
//! 6. Desequentialization ([`passes::deseq`]): recognise flip-flops and
//!    latches from drive conditions in two-region processes and produce
//!    entities with `reg` instructions.
//!
//! The [`pipeline`] module chains these passes into the
//! behavioural-to-structural lowering shown in Figure 4/5 of the paper.
//!
//! ```
//! use llhd::assembly::parse_module;
//! use llhd_opt::pipeline::{lower_to_structural, LoweringOptions};
//!
//! let mut module = parse_module(r#"
//! proc @inv (i1$ %a) -> (i1$ %q) {
//! entry:
//!     %ap = prb i1$ %a
//!     %notap = not i1 %ap
//!     %delay = const time 1ns
//!     drv i1$ %q, %notap after %delay
//!     wait %entry, %a
//! }
//! "#).unwrap();
//! let report = lower_to_structural(&mut module, &LoweringOptions::default());
//! assert_eq!(report.lowered_processes, 1);
//! assert_eq!(llhd::verifier::module_dialect(&module), llhd::verifier::Dialect::Structural);
//! ```

pub mod dnf;
pub mod passes;
pub mod pipeline;

pub use pipeline::{lower_to_structural, LoweringOptions, LoweringReport};
