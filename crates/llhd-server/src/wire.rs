//! Line-level transport shared by the server, the [`Client`], and the
//! fleet router: an incremental reader for the protocol's one-line
//! framing that tolerates read timeouts and survives oversized lines.
//!
//! [`Client`]: crate::server::Client

use std::io::{self, Read};

/// Reject lines longer than this (64 MiB): a missing newline must not
/// buffer unbounded garbage. The largest benchmark design's assembly is
/// three orders of magnitude smaller.
pub const MAX_LINE_BYTES: usize = 64 << 20;

/// Incremental line reader that tolerates read timeouts (propagated to
/// the caller as `WouldBlock`/`TimedOut`, with all buffered bytes kept).
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline, so each chunk is
    /// scanned once — a near-64-MiB line must not cost a fresh full-buffer
    /// scan per 8 KiB read.
    scanned: usize,
    /// Set when an oversized line was rejected: bytes are discarded until
    /// the next newline, so the connection survives the bad line instead
    /// of desynchronizing on its tail.
    discarding: bool,
    eof: bool,
}

impl<R: Read> LineReader<R> {
    /// Wrap a reader; no bytes are consumed until [`next_line`].
    ///
    /// [`next_line`]: LineReader::next_line
    pub fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
            scanned: 0,
            discarding: false,
            eof: false,
        }
    }

    /// The next `\n`-terminated line (terminator stripped), `None` at EOF.
    /// An over-limit line returns one `InvalidData` error and is then
    /// skipped; the reader stays usable for the lines after it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying reader; read timeouts
    /// surface as `WouldBlock`/`TimedOut` with buffered bytes kept, so
    /// the caller can poll a flag and try again.
    pub fn next_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(offset) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let pos = self.scanned + offset;
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                self.scanned = 0;
                if self.discarding {
                    // The tail of the rejected oversized line.
                    self.discarding = false;
                    continue;
                }
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            self.scanned = self.buf.len();
            if self.discarding {
                // No newline yet: everything buffered is still the
                // oversized line's body. Drop it without growing.
                self.buf.clear();
                self.scanned = 0;
            }
            if self.eof {
                if self.buf.is_empty() || self.discarding {
                    return Ok(None);
                }
                let line = std::mem::take(&mut self.buf);
                self.scanned = 0;
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > MAX_LINE_BYTES {
                self.buf.clear();
                self.scanned = 0;
                self.discarding = true;
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request line exceeds the 64 MiB limit",
                ));
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}
