//! The wire protocol: request parsing and response construction.
//!
//! One request per line, one response per line, compact JSON — the full
//! specification (schemas, error shapes, the versioning rule) lives in
//! `docs/PROTOCOL.md` at the repository root; this module is its
//! implementation. Protocol version: [`PROTOCOL_VERSION`].

use crate::json::Json;
use llhd_sim::api::{self, CacheStats, EngineKind};
use llhd_sim::{SimConfig, SimResult};

/// The protocol version this server speaks. Responses always carry it as
/// `"v"`; requests may carry `"v"` and are rejected when it does not
/// match. The versioning rule: *adding* optional request fields or
/// response fields is not a version bump (receivers ignore unknown
/// fields); any change that alters the meaning of an existing field, or
/// removes one, bumps this number.
pub const PROTOCOL_VERSION: i128 = 1;

/// How a simulation request wants its trace delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceMode {
    /// No trace: only the run statistics come back (the default).
    #[default]
    Off,
    /// The full value-change trace, rendered as a VCD document in the
    /// response's `trace_vcd` field.
    Vcd,
}

/// One simulation job: a design reference plus engine/run/trace
/// configuration. Appears standalone (`sim`) or repeated (`batch`).
#[derive(Clone, Debug)]
pub struct SimJobSpec {
    /// Inline LLHD assembly source, if the design is being submitted.
    pub source: Option<String>,
    /// A design key from an earlier response, if the design should be
    /// resident already.
    pub design: Option<String>,
    /// The top-level unit to elaborate.
    pub top: String,
    /// Engine selection.
    pub engine: EngineKind,
    /// Simulation end time in nanoseconds (`None`: the engine default).
    pub until_ns: Option<u128>,
    /// Trace delivery.
    pub trace: TraceMode,
    /// Restrict the trace to signals whose hierarchical name ends with
    /// one of these suffixes.
    pub trace_signals: Option<Vec<String>>,
    /// Override the delta-cycle guard.
    pub max_deltas_per_instant: Option<u32>,
    /// Override the per-activation step guard.
    pub max_steps_per_activation: Option<usize>,
    /// Wall-clock budget for the job in milliseconds, measured from the
    /// moment the server received the request. The run is cut off with a
    /// `deadline_exceeded` error once the budget is used up.
    pub deadline_ms: Option<u64>,
    /// How many threads may activate independent sensitivity islands
    /// within each simulation instant (`None`/1: serial). Purely a
    /// speed knob — traces and checkpoints are byte-identical at any
    /// thread count.
    pub threads: Option<usize>,
}

impl SimJobSpec {
    /// The [`SimConfig`] this spec describes.
    pub fn sim_config(&self) -> SimConfig {
        let mut config = match self.until_ns {
            Some(ns) => SimConfig::until_nanos(ns),
            None => SimConfig::default(),
        };
        // The parser guarantees `trace_signals` only appears with `Vcd`,
        // so recording happens exactly when the response delivers it.
        config.trace = self.trace == TraceMode::Vcd;
        if let Some(filter) = &self.trace_signals {
            config.trace_filter = Some(filter.clone());
        }
        if let Some(n) = self.max_deltas_per_instant {
            config.max_deltas_per_instant = n;
        }
        if let Some(n) = self.max_steps_per_activation {
            config.max_steps_per_activation = n;
        }
        if let Some(n) = self.threads {
            config.threads = n.max(1);
        }
        config
    }
}

/// A structural query against a session's elaborated design (the
/// `session.query` request's `"query"` field).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QueryKind {
    /// The flattened instance hierarchy.
    Hierarchy,
    /// Which instances drive the named signal.
    Drivers(String),
    /// Which instances observe the named signal.
    Watchers(String),
    /// Per-unit compilation statistics (compiled sessions only).
    UnitStats,
}

/// A parsed request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One simulation job.
    Sim(SimJobSpec),
    /// Several jobs, executed concurrently, answered in order.
    Batch(Vec<SimJobSpec>),
    /// Cache/server observability counters.
    Stats,
    /// Graceful shutdown: drain in-flight work, then exit.
    Shutdown,
    /// Open a stateful interactive session over a design.
    SessionCreate(SimJobSpec),
    /// Advance a session by up to `steps` scheduler cycles.
    SessionStep {
        /// The session id from `session.create`/`session.restore`.
        session: String,
        /// How many cycles to advance (at least 1).
        steps: usize,
        /// Wall-clock budget for this command in milliseconds; the step
        /// loop is cut off with `deadline_exceeded` (reporting the steps
        /// taken so far) once it is used up. The session survives.
        deadline_ms: Option<u64>,
    },
    /// Read a signal's current value.
    SessionPeek {
        /// The session id.
        session: String,
        /// The hierarchical signal name.
        signal: String,
    },
    /// Drive a signal from outside the design.
    SessionPoke {
        /// The session id.
        session: String,
        /// The hierarchical signal name.
        signal: String,
        /// The value (an integer; the signal's width applies).
        value: u128,
    },
    /// Run a structural query against the session's design.
    SessionQuery {
        /// The session id.
        session: String,
        /// What to ask.
        query: QueryKind,
    },
    /// Serialize the session's full engine state.
    SessionCheckpoint {
        /// The session id.
        session: String,
    },
    /// Open a *new* session and resume it from a checkpoint.
    SessionRestore {
        /// The design/engine configuration (same fields as
        /// `session.create`; must match the checkpointed run).
        spec: SimJobSpec,
        /// The hex-encoded checkpoint from `session.checkpoint`.
        state_hex: String,
    },
    /// End a session, returning its final run statistics (and trace).
    SessionDestroy {
        /// The session id.
        session: String,
    },
}

/// The error kinds of the protocol (the `error.kind` field).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorKind {
    /// The line was not valid JSON.
    Parse,
    /// The JSON did not form a valid request.
    Protocol,
    /// The inline LLHD assembly did not parse.
    Source,
    /// Elaboration of the design failed.
    Elaborate,
    /// Ahead-of-time compilation failed.
    Compile,
    /// The simulation hit a runtime error.
    Runtime,
    /// No compile backend is registered.
    Backend,
    /// A `peek`/`poke`-style signal reference did not resolve.
    UnknownSignal,
    /// The referenced design key is not resident (evicted or never seen).
    UnknownDesign,
    /// The referenced session id does not exist (expired, destroyed, or
    /// never created).
    UnknownSession,
    /// The server's interactive-session cap is reached.
    SessionLimit,
    /// The server is shutting down and takes no new work.
    Shutdown,
    /// The request's wall-clock budget (`deadline_ms`) was used up
    /// before the run finished; the error carries the partial progress.
    DeadlineExceeded,
    /// The server's dispatch queue is over its high-water mark and the
    /// request was shed; retry after the hinted backoff.
    Overloaded,
    /// The server-side handler panicked. The job is lost but the server
    /// keeps serving; the message carries the panic payload.
    Internal,
}

impl ErrorKind {
    /// The wire name of this kind.
    pub fn wire_name(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Source => "source",
            ErrorKind::Elaborate => "elaborate",
            ErrorKind::Compile => "compile",
            ErrorKind::Runtime => "runtime",
            ErrorKind::Backend => "backend",
            ErrorKind::UnknownSignal => "unknown_signal",
            ErrorKind::UnknownDesign => "unknown_design",
            ErrorKind::UnknownSession => "unknown_session",
            ErrorKind::SessionLimit => "session_limit",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Internal => "internal_error",
        }
    }

    /// Whether a client may retry the identical request and reasonably
    /// expect it to succeed. `Overloaded` (transient queue pressure) and
    /// `Shutdown` (another replica of a fleet can take the request) are
    /// the retryable kinds; everything else is deterministic — the same
    /// request fails the same way — or, for `deadline_exceeded`, only
    /// succeeds with a *larger* budget, which a blind retry does not
    /// grant. Rendered as the additive `retryable` field on every error
    /// response.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorKind::Overloaded | ErrorKind::Shutdown)
    }
}

/// A protocol-level failure: what becomes an `"ok":false` response.
#[derive(Clone, Debug)]
pub struct ProtoError {
    /// Which kind of failure.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Extra machine-readable fields merged into the wire `error`
    /// object (additive): `retry_after_ms` on `overloaded`, partial
    /// progress (`end_time_fs`, `steps_taken`) on `deadline_exceeded`.
    pub data: Vec<(String, Json)>,
}

impl ProtoError {
    /// Build an error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ProtoError {
            kind,
            message: message.into(),
            data: Vec::new(),
        }
    }

    /// Attach an extra machine-readable field to the wire error object.
    pub fn with_data(mut self, key: impl Into<String>, value: Json) -> Self {
        self.data.push((key.into(), value));
        self
    }
}

impl From<api::Error> for ProtoError {
    fn from(e: api::Error) -> Self {
        let kind = match &e {
            api::Error::Elaborate(_) => ErrorKind::Elaborate,
            api::Error::Compile(_) => ErrorKind::Compile,
            api::Error::Runtime(_) => ErrorKind::Runtime,
            api::Error::BackendUnavailable(_) => ErrorKind::Backend,
            api::Error::UnknownSignal(_) => ErrorKind::UnknownSignal,
            api::Error::DeadlineExceeded { .. } => ErrorKind::DeadlineExceeded,
            api::Error::Panic(_) => ErrorKind::Internal,
        };
        let error = ProtoError::new(kind, e.to_string());
        match e {
            // Partial progress rides along so a caller knows how far the
            // cut-off run got.
            api::Error::DeadlineExceeded { time_fs } => {
                error.with_data("end_time_fs", Json::uint(time_fs))
            }
            _ => error,
        }
    }
}

fn parse_engine(value: &Json) -> Result<EngineKind, ProtoError> {
    match value.as_str() {
        Some("auto") => Ok(EngineKind::Auto),
        Some("interpret") => Ok(EngineKind::Interpret),
        Some("compile") => Ok(EngineKind::Compile),
        _ => Err(ProtoError::new(
            ErrorKind::Protocol,
            format!(
                "invalid \"engine\" {} (expected \"auto\", \"interpret\", or \"compile\")",
                value
            ),
        )),
    }
}

fn parse_trace(value: &Json) -> Result<TraceMode, ProtoError> {
    match value.as_str() {
        Some("off") => Ok(TraceMode::Off),
        Some("vcd") => Ok(TraceMode::Vcd),
        _ => Err(ProtoError::new(
            ErrorKind::Protocol,
            format!("invalid \"trace\" {} (expected \"off\" or \"vcd\")", value),
        )),
    }
}

fn field_uint(obj: &Json, key: &str, max: u128) -> Result<Option<u128>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Int(i)) if *i >= 0 && *i as u128 <= max => Ok(Some(*i as u128)),
        Some(Json::Int(i)) if *i >= 0 => Err(ProtoError::new(
            ErrorKind::Protocol,
            format!("\"{}\" must be at most {}, got {}", key, max, i),
        )),
        Some(other) => Err(ProtoError::new(
            ErrorKind::Protocol,
            format!("\"{}\" must be a non-negative integer, got {}", key, other),
        )),
    }
}

/// The largest accepted `until_ns`: ~584 years of simulated time. Femto-
/// second conversion (×10⁶) stays far below `u128::MAX`, so the engine's
/// time arithmetic cannot overflow on wire-supplied values.
const MAX_UNTIL_NS: u128 = u64::MAX as u128;

/// The largest accepted `deadline_ms`: ~49 days of wall-clock time, far
/// beyond any sane request budget but small enough that deadline
/// arithmetic on `Instant` cannot overflow.
const MAX_DEADLINE_MS: u128 = u32::MAX as u128;

fn field_str(obj: &Json, key: &str) -> Result<Option<String>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(ProtoError::new(
            ErrorKind::Protocol,
            format!("\"{}\" must be a string, got {}", key, other),
        )),
    }
}

fn parse_job(obj: &Json) -> Result<SimJobSpec, ProtoError> {
    let source = field_str(obj, "source")?;
    let design = field_str(obj, "design")?;
    if source.is_none() && design.is_none() {
        return Err(ProtoError::new(
            ErrorKind::Protocol,
            "a sim job needs either \"source\" (inline LLHD assembly) or \"design\" (a cached key)",
        ));
    }
    let top = field_str(obj, "top")?.ok_or_else(|| {
        ProtoError::new(ErrorKind::Protocol, "a sim job needs \"top\" (the unit to elaborate)")
    })?;
    let engine = match obj.get("engine") {
        None | Some(Json::Null) => EngineKind::Auto,
        Some(value) => parse_engine(value)?,
    };
    let explicit_trace = match obj.get("trace") {
        None | Some(Json::Null) => None,
        Some(value) => Some(parse_trace(value)?),
    };
    let trace_signals = match obj.get("trace_signals") {
        None | Some(Json::Null) => None,
        Some(Json::Arr(items)) => {
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                names.push(
                    item.as_str()
                        .ok_or_else(|| {
                            ProtoError::new(
                                ErrorKind::Protocol,
                                "\"trace_signals\" must be an array of strings",
                            )
                        })?
                        .to_string(),
                );
            }
            Some(names)
        }
        Some(_) => {
            return Err(ProtoError::new(
                ErrorKind::Protocol,
                "\"trace_signals\" must be an array of strings",
            ))
        }
    };
    // Asking for specific signals is asking for the trace: the filter
    // implies VCD delivery. Recording a trace the response would then
    // discard (explicit "off" + a filter) is a contradiction, not a
    // default to guess at.
    let trace = match (explicit_trace, &trace_signals) {
        (Some(TraceMode::Off), Some(_)) => {
            return Err(ProtoError::new(
                ErrorKind::Protocol,
                "\"trace_signals\" requires \"trace\":\"vcd\" (or omit \"trace\")",
            ))
        }
        (None, Some(_)) => TraceMode::Vcd,
        (mode, _) => mode.unwrap_or(TraceMode::Off),
    };
    Ok(SimJobSpec {
        source,
        design,
        top,
        engine,
        until_ns: field_uint(obj, "until_ns", MAX_UNTIL_NS)?,
        trace,
        trace_signals,
        // The bounds make the narrowing casts lossless.
        max_deltas_per_instant: field_uint(obj, "max_deltas_per_instant", u32::MAX as u128)?
            .map(|n| n as u32),
        max_steps_per_activation: field_uint(
            obj,
            "max_steps_per_activation",
            usize::MAX as u128,
        )?
        .map(|n| n as usize),
        deadline_ms: field_deadline(obj)?,
        // Capped far above any plausible core count; the engine treats
        // the value as an upper bound, not a reservation.
        threads: field_uint(obj, "threads", MAX_THREADS)?.map(|n| n as usize),
    })
}

/// The largest accepted `threads`: generous headroom over real machines
/// while keeping absurd values (which would each try to spawn a scoped
/// worker per instant) out of the engine.
const MAX_THREADS: u128 = 64;

/// The optional `"deadline_ms"` field (sim jobs and `session.step`).
/// A zero budget is legal: it means "fail fast with partial progress".
fn field_deadline(obj: &Json) -> Result<Option<u64>, ProtoError> {
    Ok(field_uint(obj, "deadline_ms", MAX_DEADLINE_MS)?.map(|n| n as u64))
}

/// The required `"session"` field of the session request family.
fn field_session(obj: &Json) -> Result<String, ProtoError> {
    field_str(obj, "session")?.ok_or_else(|| {
        ProtoError::new(
            ErrorKind::Protocol,
            "a session request needs \"session\" (the id from session.create)",
        )
    })
}

/// The required `"signal"` field of `session.peek`/`session.poke`.
fn field_signal(obj: &Json) -> Result<String, ProtoError> {
    field_str(obj, "signal")?.ok_or_else(|| {
        ProtoError::new(
            ErrorKind::Protocol,
            "this request needs \"signal\" (a hierarchical signal name)",
        )
    })
}

fn parse_query(obj: &Json) -> Result<QueryKind, ProtoError> {
    match obj.get("query").and_then(Json::as_str) {
        Some("hierarchy") => Ok(QueryKind::Hierarchy),
        Some("drivers") => Ok(QueryKind::Drivers(field_signal(obj)?)),
        Some("watchers") => Ok(QueryKind::Watchers(field_signal(obj)?)),
        Some("unit_stats") => Ok(QueryKind::UnitStats),
        Some(other) => Err(ProtoError::new(
            ErrorKind::Protocol,
            format!(
                "unknown \"query\" {:?} (expected hierarchy, drivers, watchers, or unit_stats)",
                other
            ),
        )),
        None => Err(ProtoError::new(
            ErrorKind::Protocol,
            "a session.query request needs a string \"query\" field",
        )),
    }
}

impl Request {
    /// Parse a request object (already JSON-parsed).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Protocol`] describing what is malformed; unknown
    /// *fields* are ignored (the forward-compatibility rule), unknown
    /// *types* and version mismatches are errors.
    pub fn parse(value: &Json) -> Result<Request, ProtoError> {
        if !matches!(value, Json::Obj(_)) {
            return Err(ProtoError::new(
                ErrorKind::Protocol,
                "a request must be a JSON object",
            ));
        }
        match value.get("v") {
            None | Some(Json::Int(PROTOCOL_VERSION)) => {}
            Some(other) => {
                return Err(ProtoError::new(
                    ErrorKind::Protocol,
                    format!("protocol version {} not supported (this server speaks v{})",
                        other, PROTOCOL_VERSION),
                ))
            }
        }
        let kind = value.get("type").and_then(Json::as_str).ok_or_else(|| {
            ProtoError::new(ErrorKind::Protocol, "a request needs a string \"type\" field")
        })?;
        match kind {
            "ping" => Ok(Request::Ping),
            "sim" => Ok(Request::Sim(parse_job(value)?)),
            "batch" => {
                let jobs = value
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        ProtoError::new(
                            ErrorKind::Protocol,
                            "a batch request needs a \"jobs\" array",
                        )
                    })?;
                if jobs.is_empty() {
                    return Err(ProtoError::new(
                        ErrorKind::Protocol,
                        "a batch request needs at least one job",
                    ));
                }
                jobs.iter().map(parse_job).collect::<Result<Vec<_>, _>>().map(Request::Batch)
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "session.create" => Ok(Request::SessionCreate(parse_job(value)?)),
            "session.step" => Ok(Request::SessionStep {
                session: field_session(value)?,
                steps: match field_uint(value, "steps", usize::MAX as u128)? {
                    None => 1,
                    Some(0) => {
                        return Err(ProtoError::new(
                            ErrorKind::Protocol,
                            "\"steps\" must be at least 1",
                        ))
                    }
                    Some(n) => n as usize,
                },
                deadline_ms: field_deadline(value)?,
            }),
            "session.peek" => Ok(Request::SessionPeek {
                session: field_session(value)?,
                signal: field_signal(value)?,
            }),
            "session.poke" => Ok(Request::SessionPoke {
                session: field_session(value)?,
                signal: field_signal(value)?,
                value: field_uint(value, "value", u128::MAX)?.ok_or_else(|| {
                    ProtoError::new(
                        ErrorKind::Protocol,
                        "a session.poke request needs \"value\" (a non-negative integer)",
                    )
                })?,
            }),
            "session.query" => Ok(Request::SessionQuery {
                session: field_session(value)?,
                query: parse_query(value)?,
            }),
            "session.checkpoint" => Ok(Request::SessionCheckpoint {
                session: field_session(value)?,
            }),
            "session.restore" => Ok(Request::SessionRestore {
                spec: parse_job(value)?,
                state_hex: field_str(value, "state")?.ok_or_else(|| {
                    ProtoError::new(
                        ErrorKind::Protocol,
                        "a session.restore request needs \"state\" (the hex checkpoint from session.checkpoint)",
                    )
                })?,
            }),
            "session.destroy" => Ok(Request::SessionDestroy {
                session: field_session(value)?,
            }),
            other => Err(ProtoError::new(
                ErrorKind::Protocol,
                format!(
                    "unknown request type {:?} (expected ping, sim, batch, stats, shutdown, or the session.* family)",
                    other
                ),
            )),
        }
    }
}

/// Hex-encode checkpoint bytes for the wire (`session.checkpoint`'s
/// `state` field). Hex keeps the protocol dependency-free and the line
/// JSON-safe; checkpoints are small (dense signal state, not the design).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Decode a `session.restore` request's hex `state` field.
///
/// # Errors
///
/// [`ErrorKind::Protocol`] on odd length or non-hex characters.
pub fn hex_decode(text: &str) -> Result<Vec<u8>, ProtoError> {
    if !text.len().is_multiple_of(2) {
        return Err(ProtoError::new(
            ErrorKind::Protocol,
            "\"state\" must be an even-length hex string",
        ));
    }
    let digits: Result<Vec<u8>, ProtoError> = text
        .chars()
        .map(|c| {
            c.to_digit(16).map(|d| d as u8).ok_or_else(|| {
                ProtoError::new(
                    ErrorKind::Protocol,
                    format!("\"state\" contains a non-hex character {:?}", c),
                )
            })
        })
        .collect();
    Ok(digits?.chunks(2).map(|pair| (pair[0] << 4) | pair[1]).collect())
}

/// The client-supplied request id, echoed verbatim into the response (any
/// JSON value; absent stays absent).
pub fn request_id(value: &Json) -> Option<Json> {
    value.get("id").cloned()
}

fn envelope(id: Option<Json>, ok: bool) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("v".to_string(), Json::Int(PROTOCOL_VERSION)),
        ("ok".to_string(), Json::Bool(ok)),
    ];
    if let Some(id) = id {
        fields.push(("id".to_string(), id));
    }
    fields
}

/// A successful response carrying `result`.
pub fn ok_response(id: Option<Json>, result: Json) -> Json {
    let mut fields = envelope(id, true);
    fields.push(("result".to_string(), result));
    Json::Obj(fields)
}

/// A failure response carrying the error's kind, message, retryability,
/// and any extra machine-readable fields ([`ProtoError::data`]).
pub fn error_response(id: Option<Json>, error: &ProtoError) -> Json {
    let mut fields = envelope(id, false);
    let mut body = vec![
        ("kind".to_string(), Json::str(error.kind.wire_name())),
        ("message".to_string(), Json::str(error.message.clone())),
        ("retryable".to_string(), Json::Bool(error.kind.retryable())),
    ];
    body.extend(error.data.iter().cloned());
    fields.push(("error".to_string(), Json::Obj(body)));
    Json::Obj(fields)
}

/// The engine names of the wire (`EngineKind` without `Auto`, which a
/// session always resolves away).
fn engine_wire_name(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Interpret => "interpret",
        EngineKind::Compile => "compile",
        EngineKind::Auto => "auto",
    }
}

/// Render one completed simulation into its response `result` payload.
pub fn sim_result_json(
    design_key: &str,
    top: &str,
    engine: EngineKind,
    spec_trace: TraceMode,
    result: &SimResult,
) -> Json {
    let mut fields = vec![
        ("design".to_string(), Json::str(design_key)),
        ("top".to_string(), Json::str(top)),
        ("engine".to_string(), Json::str(engine_wire_name(engine))),
        ("end_time_fs".to_string(), Json::uint(result.end_time.as_femtos())),
        ("signal_changes".to_string(), Json::uint(result.signal_changes as u128)),
        ("activations".to_string(), Json::uint(result.activations as u128)),
        ("halted_processes".to_string(), Json::uint(result.halted_processes as u128)),
        (
            "assertions_checked".to_string(),
            Json::uint(result.assertions_checked as u128),
        ),
        (
            "assertion_failures".to_string(),
            Json::uint(result.assertion_failures as u128),
        ),
    ];
    if spec_trace == TraceMode::Vcd {
        fields.push(("trace_vcd".to_string(), Json::str(result.trace.to_vcd("1fs"))));
    }
    Json::Obj(fields)
}

/// Server-load counters for the `stats` response: the observability
/// surface of the admission-control and panic-isolation layers.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerLoad {
    /// Jobs waiting in the dispatch queue right now.
    pub queue_depth: usize,
    /// The queue's high-water mark (`None` = unbounded, nothing sheds).
    pub queue_cap: Option<usize>,
    /// Jobs currently executing in micro-batch workers.
    pub inflight: usize,
    /// Requests shed with `overloaded` since the server started.
    pub shed: usize,
    /// Interactive sessions currently open.
    pub open_sessions: usize,
    /// Panics caught (and answered as `internal_error`) since start.
    pub panics_caught: usize,
}

/// Render a cache-stats snapshot (plus server-level counters) into the
/// `stats` response payload. `server_id` and `uptime_ms` are additive
/// (protocol v1 version rule): they let a fleet router attribute the
/// numbers to one worker without inferring identity from the transport.
pub fn stats_json(
    stats: &CacheStats,
    server_id: &str,
    resident_modules: usize,
    uptime: std::time::Duration,
    requests: usize,
    load: &ServerLoad,
) -> Json {
    Json::obj([
        ("server_id", Json::str(server_id)),
        ("uptime_secs", Json::uint(uptime.as_secs() as u128)),
        ("uptime_ms", Json::uint(uptime.as_millis())),
        ("requests", Json::uint(requests as u128)),
        ("resident_modules", Json::uint(resident_modules as u128)),
        (
            "load",
            Json::obj([
                ("queue_depth", Json::uint(load.queue_depth as u128)),
                (
                    "queue_cap",
                    load.queue_cap.map(|c| Json::uint(c as u128)).unwrap_or(Json::Null),
                ),
                ("inflight", Json::uint(load.inflight as u128)),
                ("shed", Json::uint(load.shed as u128)),
                ("open_sessions", Json::uint(load.open_sessions as u128)),
                ("panics_caught", Json::uint(load.panics_caught as u128)),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("elaborate_hits", Json::uint(stats.elaborate_hits as u128)),
                ("elaborate_misses", Json::uint(stats.elaborate_misses as u128)),
                ("compile_hits", Json::uint(stats.compile_hits as u128)),
                ("compile_misses", Json::uint(stats.compile_misses as u128)),
                ("evictions", Json::uint(stats.evictions as u128)),
                ("entries", Json::uint(stats.entries as u128)),
                (
                    "capacity",
                    stats.capacity.map(|c| Json::uint(c as u128)).unwrap_or(Json::Null),
                ),
                ("approx_bytes", Json::uint(stats.approx_bytes as u128)),
                (
                    "designs",
                    Json::Arr(
                        stats
                            .designs
                            .iter()
                            .map(|d| {
                                Json::obj([
                                    ("design", Json::str(format!("{:032x}", d.fingerprint))),
                                    ("top", Json::str(d.top.clone())),
                                    ("runs", Json::uint(d.runs as u128)),
                                    ("approx_bytes", Json::uint(d.approx_bytes as u128)),
                                    ("compiled", Json::Bool(d.compiled)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, ProtoError> {
        Request::parse(&Json::parse(text).unwrap())
    }

    #[test]
    fn parses_the_request_types() {
        assert!(matches!(parse(r#"{"type":"ping"}"#), Ok(Request::Ping)));
        assert!(matches!(parse(r#"{"type":"stats"}"#), Ok(Request::Stats)));
        assert!(matches!(parse(r#"{"type":"shutdown"}"#), Ok(Request::Shutdown)));
        let sim = parse(r#"{"type":"sim","source":"proc @p...","top":"p","engine":"compile","until_ns":50,"trace":"vcd"}"#).unwrap();
        match sim {
            Request::Sim(job) => {
                assert_eq!(job.top, "p");
                assert_eq!(job.engine, EngineKind::Compile);
                assert_eq!(job.until_ns, Some(50));
                assert_eq!(job.trace, TraceMode::Vcd);
                let config = job.sim_config();
                assert!(config.trace);
                assert_eq!(config.max_time, llhd::value::TimeValue::from_nanos(50));
            }
            other => panic!("not a sim request: {:?}", other),
        }
        let batch = parse(
            r#"{"type":"batch","jobs":[{"design":"00ff","top":"a"},{"design":"00ff","top":"b"}]}"#,
        )
        .unwrap();
        match batch {
            Request::Batch(jobs) => assert_eq!(jobs.len(), 2),
            other => panic!("not a batch request: {:?}", other),
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for (text, needle) in [
            (r#"[1,2]"#, "must be a JSON object"),
            (r#"{}"#, "\"type\""),
            (r#"{"type":"nope"}"#, "unknown request type"),
            (r#"{"type":"sim","top":"p"}"#, "\"source\""),
            (r#"{"type":"sim","source":"x"}"#, "\"top\""),
            (r#"{"type":"sim","source":"x","top":"p","engine":"jit"}"#, "\"engine\""),
            (r#"{"type":"sim","source":"x","top":"p","until_ns":-4}"#, "non-negative"),
            // Out-of-range values are rejected, not silently truncated:
            // 2^32 would wrap a u32 delta guard to 0, and an until_ns
            // past 2^64 would overflow the femtosecond conversion.
            (
                r#"{"type":"sim","source":"x","top":"p","max_deltas_per_instant":4294967296}"#,
                "at most",
            ),
            (
                r#"{"type":"sim","source":"x","top":"p","until_ns":99999999999999999999999}"#,
                "at most",
            ),
            (r#"{"type":"sim","source":"x","top":"p","trace":"all"}"#, "\"trace\""),
            (r#"{"type":"batch"}"#, "\"jobs\""),
            (r#"{"type":"batch","jobs":[]}"#, "at least one"),
            (r#"{"v":2,"type":"ping"}"#, "version"),
        ] {
            let err = parse(text).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Protocol, "{}", text);
            assert!(err.message.contains(needle), "{}: {}", text, err.message);
        }
    }

    #[test]
    fn trace_signals_imply_vcd_delivery() {
        // A filter without an explicit mode delivers the (filtered) VCD.
        let implied = parse(
            r#"{"type":"sim","source":"x","top":"p","trace_signals":["led"]}"#,
        )
        .unwrap();
        match implied {
            Request::Sim(job) => {
                assert_eq!(job.trace, TraceMode::Vcd);
                let config = job.sim_config();
                assert!(config.trace);
                assert_eq!(config.trace_filter, Some(vec!["led".to_string()]));
            }
            other => panic!("not a sim request: {:?}", other),
        }
        // An explicit "off" alongside a filter is contradictory: the
        // trace would be recorded but never delivered.
        let err = parse(
            r#"{"type":"sim","source":"x","top":"p","trace":"off","trace_signals":["led"]}"#,
        )
        .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Protocol);
        assert!(err.message.contains("trace_signals"), "{}", err.message);
    }

    #[test]
    fn parses_the_session_request_family() {
        let create = parse(r#"{"type":"session.create","source":"proc @p...","top":"p","engine":"interpret","until_ns":100}"#).unwrap();
        assert!(matches!(create, Request::SessionCreate(_)));
        match parse(r#"{"type":"session.step","session":"s1","steps":5,"deadline_ms":200}"#)
            .unwrap()
        {
            Request::SessionStep {
                session,
                steps,
                deadline_ms,
            } => {
                assert_eq!(session, "s1");
                assert_eq!(steps, 5);
                assert_eq!(deadline_ms, Some(200));
            }
            other => panic!("not a step request: {:?}", other),
        }
        // "steps" defaults to 1.
        assert!(matches!(
            parse(r#"{"type":"session.step","session":"s1"}"#).unwrap(),
            Request::SessionStep { steps: 1, .. }
        ));
        assert!(matches!(
            parse(r#"{"type":"session.peek","session":"s1","signal":"top.led"}"#).unwrap(),
            Request::SessionPeek { .. }
        ));
        match parse(r#"{"type":"session.poke","session":"s1","signal":"top.a","value":42}"#)
            .unwrap()
        {
            Request::SessionPoke { value, .. } => assert_eq!(value, 42),
            other => panic!("not a poke request: {:?}", other),
        }
        match parse(r#"{"type":"session.query","session":"s1","query":"drivers","signal":"top.a"}"#).unwrap() {
            Request::SessionQuery { query, .. } => {
                assert_eq!(query, QueryKind::Drivers("top.a".to_string()));
            }
            other => panic!("not a query request: {:?}", other),
        }
        assert!(matches!(
            parse(r#"{"type":"session.query","session":"s1","query":"hierarchy"}"#).unwrap(),
            Request::SessionQuery { query: QueryKind::Hierarchy, .. }
        ));
        assert!(matches!(
            parse(r#"{"type":"session.checkpoint","session":"s1"}"#).unwrap(),
            Request::SessionCheckpoint { .. }
        ));
        match parse(r#"{"type":"session.restore","source":"x","top":"p","state":"4c48"}"#)
            .unwrap()
        {
            Request::SessionRestore { state_hex, .. } => assert_eq!(state_hex, "4c48"),
            other => panic!("not a restore request: {:?}", other),
        }
        assert!(matches!(
            parse(r#"{"type":"session.destroy","session":"s1"}"#).unwrap(),
            Request::SessionDestroy { .. }
        ));
    }

    #[test]
    fn malformed_session_requests_are_protocol_errors() {
        for (text, needle) in [
            (r#"{"type":"session.step"}"#, "\"session\""),
            (r#"{"type":"session.step","session":"s1","steps":0}"#, "at least 1"),
            (r#"{"type":"session.peek","session":"s1"}"#, "\"signal\""),
            (r#"{"type":"session.poke","session":"s1","signal":"a"}"#, "\"value\""),
            (r#"{"type":"session.query","session":"s1"}"#, "\"query\""),
            (r#"{"type":"session.query","session":"s1","query":"nope"}"#, "unknown \"query\""),
            (r#"{"type":"session.query","session":"s1","query":"drivers"}"#, "\"signal\""),
            (r#"{"type":"session.restore","source":"x","top":"p"}"#, "\"state\""),
            (r#"{"type":"session.create","top":"p"}"#, "\"source\""),
        ] {
            let err = parse(text).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Protocol, "{}", text);
            assert!(err.message.contains(needle), "{}: {}", text, err.message);
        }
    }

    #[test]
    fn hex_codec_roundtrips() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = hex_encode(&bytes);
        assert_eq!(hex.len(), 512);
        assert_eq!(hex_decode(&hex).unwrap(), bytes);
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn unknown_fields_are_ignored() {
        assert!(matches!(
            parse(r#"{"type":"ping","future_field":123}"#),
            Ok(Request::Ping)
        ));
    }

    #[test]
    fn responses_carry_the_envelope() {
        let ok = ok_response(Some(Json::Int(7)), Json::obj([("pong", Json::Bool(true))]));
        assert_eq!(ok.to_string(), r#"{"v":1,"ok":true,"id":7,"result":{"pong":true}}"#);
        let err = error_response(None, &ProtoError::new(ErrorKind::Parse, "bad"));
        assert_eq!(
            err.to_string(),
            r#"{"v":1,"ok":false,"error":{"kind":"parse","message":"bad","retryable":false}}"#
        );
        let shed = error_response(
            None,
            &ProtoError::new(ErrorKind::Overloaded, "queue full")
                .with_data("retry_after_ms", Json::uint(25)),
        );
        assert_eq!(
            shed.to_string(),
            r#"{"v":1,"ok":false,"error":{"kind":"overloaded","message":"queue full","retryable":true,"retry_after_ms":25}}"#
        );
    }

    #[test]
    fn deadline_ms_parses_and_rejects_garbage() {
        match parse(r#"{"type":"sim","source":"x","top":"p","deadline_ms":250}"#).unwrap() {
            Request::Sim(job) => assert_eq!(job.deadline_ms, Some(250)),
            other => panic!("not a sim request: {:?}", other),
        }
        // Zero is a legal fail-fast budget, and the field is optional.
        match parse(r#"{"type":"sim","source":"x","top":"p","deadline_ms":0}"#).unwrap() {
            Request::Sim(job) => assert_eq!(job.deadline_ms, Some(0)),
            other => panic!("not a sim request: {:?}", other),
        }
        match parse(r#"{"type":"session.step","session":"s1","deadline_ms":50}"#).unwrap() {
            Request::SessionStep { deadline_ms, .. } => assert_eq!(deadline_ms, Some(50)),
            other => panic!("not a step request: {:?}", other),
        }
        for text in [
            r#"{"type":"sim","source":"x","top":"p","deadline_ms":-1}"#,
            r#"{"type":"sim","source":"x","top":"p","deadline_ms":"fast"}"#,
            r#"{"type":"sim","source":"x","top":"p","deadline_ms":99999999999999}"#,
        ] {
            let err = parse(text).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Protocol, "{}", text);
            assert!(err.message.contains("deadline_ms"), "{}", err.message);
        }
    }

    #[test]
    fn threads_parses_and_is_capped() {
        // Absent: the engine default (serial) applies.
        match parse(r#"{"type":"sim","source":"x","top":"p"}"#).unwrap() {
            Request::Sim(job) => {
                assert_eq!(job.threads, None);
                assert_eq!(job.sim_config().threads, 1);
            }
            other => panic!("not a sim request: {:?}", other),
        }
        match parse(r#"{"type":"sim","source":"x","top":"p","threads":4}"#).unwrap() {
            Request::Sim(job) => {
                assert_eq!(job.threads, Some(4));
                assert_eq!(job.sim_config().threads, 4);
            }
            other => panic!("not a sim request: {:?}", other),
        }
        // Zero clamps to serial rather than erroring: "no parallelism"
        // is a sensible reading, not a malformed request.
        match parse(r#"{"type":"sim","source":"x","top":"p","threads":0}"#).unwrap() {
            Request::Sim(job) => assert_eq!(job.sim_config().threads, 1),
            other => panic!("not a sim request: {:?}", other),
        }
        for text in [
            r#"{"type":"sim","source":"x","top":"p","threads":65}"#,
            r#"{"type":"sim","source":"x","top":"p","threads":-2}"#,
            r#"{"type":"sim","source":"x","top":"p","threads":"all"}"#,
        ] {
            let err = parse(text).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Protocol, "{}", text);
            assert!(err.message.contains("threads"), "{}", err.message);
        }
    }

    #[test]
    fn retryability_is_fixed_per_kind() {
        for kind in [
            ErrorKind::Parse,
            ErrorKind::Protocol,
            ErrorKind::Source,
            ErrorKind::Elaborate,
            ErrorKind::Compile,
            ErrorKind::Runtime,
            ErrorKind::Backend,
            ErrorKind::UnknownSignal,
            ErrorKind::UnknownDesign,
            ErrorKind::UnknownSession,
            ErrorKind::SessionLimit,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Internal,
        ] {
            assert!(!kind.retryable(), "{:?} must not be retryable", kind);
        }
        assert!(ErrorKind::Overloaded.retryable());
        assert!(ErrorKind::Shutdown.retryable());
    }
}
