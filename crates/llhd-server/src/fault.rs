//! Deterministic fault injection for the chaos harness (the
//! `fault-injection` cargo feature; never compiled into release builds
//! unless asked for).
//!
//! A [`FaultPlan`] is a seed plus a per-site injection rate. Every
//! decision is a pure function of `(seed, site, n)` where `n` is the
//! site's own draw counter — so a given seed replays the *same* fault
//! sequence at each site across runs, regardless of thread interleaving
//! between sites. Sites:
//!
//! | site            | effect                                                |
//! |-----------------|-------------------------------------------------------|
//! | `sim.panic`     | a run-control probe panics at a plan-chosen cycle     |
//! | `io.read.slow`  | the connection read sleeps a few milliseconds         |
//! | `io.read.short` | the connection read returns at most one byte          |
//! | `io.read.error` | the connection read fails with `ConnectionReset`      |
//! | `queue.pressure`| phantom jobs inflate the dispatch queue depth         |
//!
//! Rates are expressed in 256ths: a rate of 32 injects on ~12.5% of
//! draws. The chaos integration test (`tests/chaos.rs`) drives a seeded
//! plan with concurrent clients and asserts the server answers every
//! surviving request well-formed and outlives the storm.

use std::io::{self, Read};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A named injection site (index into the plan's rate/counter tables).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Site {
    /// Panic inside a simulation job, mid-run, at a plan-chosen cycle.
    SimPanic = 0,
    /// Delay a connection read.
    IoReadSlow = 1,
    /// Truncate a connection read to one byte.
    IoReadShort = 2,
    /// Fail a connection read with `ConnectionReset`.
    IoReadError = 3,
    /// Inflate the dispatch queue depth seen by admission control.
    QueuePressure = 4,
}

const SITE_COUNT: usize = 5;

const SITES: [(Site, &str); SITE_COUNT] = [
    (Site::SimPanic, "sim.panic"),
    (Site::IoReadSlow, "io.read.slow"),
    (Site::IoReadShort, "io.read.short"),
    (Site::IoReadError, "io.read.error"),
    (Site::QueuePressure, "queue.pressure"),
];

impl Site {
    /// The site's spec-string name (e.g. `sim.panic`).
    pub fn name(self) -> &'static str {
        SITES[self as usize].1
    }
}

/// SplitMix64 finalizer: the whole plan's determinism rests on this
/// being a pure, well-mixed function of its input.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, replayable fault schedule shared by every thread of one
/// server (see the module docs).
pub struct FaultPlan {
    seed: u64,
    /// Injection rate per site, in 256ths (0: never, 256: always).
    rates: [u16; SITE_COUNT],
    /// Draws made per site (the `n` of each decision).
    draws: [AtomicU64; SITE_COUNT],
    /// Faults actually injected per site (for test assertions).
    injected: [AtomicU64; SITE_COUNT],
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rates", &self.rates)
            .finish_non_exhaustive()
    }
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero (inject nothing).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0; SITE_COUNT],
            draws: Default::default(),
            injected: Default::default(),
        }
    }

    /// Set a site's injection rate in 256ths (clamped to 256).
    pub fn with_rate(mut self, site: Site, per_256: u16) -> FaultPlan {
        self.rates[site as usize] = per_256.min(256);
        self
    }

    /// Parse a spec string like
    /// `seed=42,sim.panic=16,io.read.error=4,queue.pressure=8`
    /// (unlisted sites stay at rate 0).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rates = [0u16; SITE_COUNT];
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault spec clause {:?} is not key=value", clause))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                seed = value
                    .parse()
                    .map_err(|_| format!("fault seed {:?} is not a u64", value))?;
                continue;
            }
            let site = SITES
                .iter()
                .find(|(_, name)| *name == key)
                .map(|&(site, _)| site)
                .ok_or_else(|| format!("unknown fault site {:?}", key))?;
            rates[site as usize] = value
                .parse::<u16>()
                .map_err(|_| format!("fault rate {:?} is not in 0..=256", value))?
                .min(256);
        }
        let mut plan = FaultPlan::new(seed);
        plan.rates = rates;
        Ok(plan)
    }

    /// Draw the site's next decision word (advances its counter).
    fn draw(&self, site: Site) -> u64 {
        let n = self.draws[site as usize].fetch_add(1, Ordering::Relaxed);
        mix(mix(self.seed ^ (site as u64 + 1)) ^ n)
    }

    /// One inject-or-not decision at `site`; counts injections.
    fn hit(&self, site: Site) -> Option<u64> {
        let word = self.draw(site);
        if (word & 0xff) < self.rates[site as usize] as u64 {
            self.injected[site as usize].fetch_add(1, Ordering::Relaxed);
            Some(word >> 8)
        } else {
            None
        }
    }

    /// Decide whether *this* simulation job should panic, and at which
    /// scheduler cycle (small, so short-running jobs still reach it).
    pub fn sim_panic_cycle(&self) -> Option<u64> {
        self.hit(Site::SimPanic).map(|word| word % 32)
    }

    /// Phantom queue depth for admission control: zero most of the time,
    /// a burst of 1..=32 pretend jobs when the site fires.
    pub fn queue_pressure(&self) -> usize {
        match self.hit(Site::QueuePressure) {
            Some(word) => (word % 32) as usize + 1,
            None => 0,
        }
    }

    /// Faults injected so far at `site`.
    pub fn injected(&self, site: Site) -> u64 {
        self.injected[site as usize].load(Ordering::Relaxed)
    }

    /// Faults injected so far across all sites.
    pub fn injected_total(&self) -> u64 {
        SITES
            .iter()
            .map(|&(site, _)| self.injected(site))
            .sum()
    }
}

/// A `Read` adapter that injects the plan's `io.read.*` faults in front
/// of a connection's read side: slow reads, one-byte short reads, and
/// hard `ConnectionReset` failures. Timeout errors from the underlying
/// stream (the shutdown-poll ticks) pass through undisturbed and do not
/// consume draws.
pub struct FaultyReader<R> {
    inner: R,
    plan: Arc<FaultPlan>,
}

impl<R: Read> FaultyReader<R> {
    /// Wrap `inner` with the plan's read faults.
    pub fn new(inner: R, plan: Arc<FaultPlan>) -> FaultyReader<R> {
        FaultyReader { inner, plan }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.plan.hit(Site::IoReadError).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected fault: read error (site io.read.error)",
            ));
        }
        if self.plan.hit(Site::IoReadSlow).is_some() {
            std::thread::sleep(Duration::from_millis(2));
        }
        if self.plan.hit(Site::IoReadShort).is_some() && buf.len() > 1 {
            return self.inner.read(&mut buf[..1]);
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_replay_per_site() {
        let a = FaultPlan::new(7).with_rate(Site::SimPanic, 64);
        let b = FaultPlan::new(7).with_rate(Site::SimPanic, 64);
        let seq_a: Vec<_> = (0..64).map(|_| a.sim_panic_cycle()).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.sim_panic_cycle()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(Option::is_some), "rate 64/256 over 64 draws must fire");
        assert!(seq_a.iter().any(Option::is_none), "rate 64/256 must not always fire");
        assert_eq!(a.injected(Site::SimPanic), seq_a.iter().flatten().count() as u64);
    }

    #[test]
    fn seeds_change_the_schedule() {
        let a = FaultPlan::new(1).with_rate(Site::QueuePressure, 128);
        let b = FaultPlan::new(2).with_rate(Site::QueuePressure, 128);
        let seq_a: Vec<_> = (0..64).map(|_| a.queue_pressure()).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.queue_pressure()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn spec_round_trip_and_rejects() {
        let plan = FaultPlan::parse("seed=42, sim.panic=16, io.read.error=300").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rates[Site::SimPanic as usize], 16);
        assert_eq!(plan.rates[Site::IoReadError as usize], 256, "rates clamp at 256");
        assert!(FaultPlan::parse("bogus.site=1").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("sim.panic").is_err());
    }

    #[test]
    fn faulty_reader_injects_short_and_error() {
        let plan = Arc::new(
            FaultPlan::new(9)
                .with_rate(Site::IoReadShort, 256)
                .with_rate(Site::IoReadError, 0),
        );
        let data = b"hello".to_vec();
        let mut reader = FaultyReader::new(&data[..], Arc::clone(&plan));
        let mut buf = [0u8; 8];
        assert_eq!(reader.read(&mut buf).unwrap(), 1, "short site truncates to one byte");

        let plan = Arc::new(FaultPlan::new(9).with_rate(Site::IoReadError, 256));
        let mut reader = FaultyReader::new(&data[..], Arc::clone(&plan));
        let err = reader.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(plan.injected(Site::IoReadError), 1);
    }
}
