//! A minimal JSON value, parser, and writer.
//!
//! The workspace is deliberately zero-dependency (it builds in offline
//! sandboxes), so the wire protocol cannot lean on serde. This module
//! implements exactly the JSON subset the protocol needs — all of
//! RFC 8259's value grammar, with two deliberate simplifications:
//!
//! * numbers that look integral parse into [`Json::Int`] (`i128`, wide
//!   enough for femtosecond timestamps) and everything else into
//!   [`Json::Float`];
//! * objects preserve insertion order in a `Vec` instead of a map —
//!   protocol objects are tiny, and deterministic field order keeps the
//!   responses stable for tests and golden files.
//!
//! ```
//! use llhd_server::json::Json;
//! let value = Json::parse(r#"{"type":"sim","until_ns":100,"ok":true}"#).unwrap();
//! assert_eq!(value.get("type").and_then(Json::as_str), Some("sim"));
//! assert_eq!(value.get("until_ns").and_then(Json::as_int), Some(100));
//! assert_eq!(value.to_string(), r#"{"type":"sim","until_ns":100,"ok":true}"#);
//! ```

use std::fmt;

/// Nesting depth limit: deeper input is rejected rather than risking a
/// stack overflow on adversarial requests.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Field lookup on an object; `None` on missing field or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs (field order preserved).
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an integer value, saturating `u128` into `i128` (femtosecond
    /// timestamps fit with two orders of magnitude to spare).
    pub fn uint(n: u128) -> Json {
        Json::Int(i128::try_from(n).unwrap_or(i128::MAX))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {} at byte {}", what, self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {} at byte {}", MAX_DEPTH, self.pos));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{', "'{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| format!("unterminated string at byte {}", self.pos))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
                    }
                }
                // Multi-byte UTF-8: the input is a &str, so the bytes are
                // valid — copy the whole code point through.
                _ if b >= 0x80 => {
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("invalid UTF-8 at byte {}", start))?,
                    );
                }
                _ if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos - 1))
                }
                _ => out.push(b as char),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let unit = self.hex4()?;
        // Surrogate pair: a high surrogate must be followed by \uXXXX with
        // the low half; everything else maps through char::from_u32.
        if (0xd800..0xdc00).contains(&unit) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xdc00..0xe000).contains(&low) {
                    let c = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                    return char::from_u32(c)
                        .ok_or_else(|| format!("invalid surrogate pair at byte {}", self.pos));
                }
            }
            return Err(format!("lone surrogate at byte {}", self.pos));
        }
        char::from_u32(unit).ok_or_else(|| format!("invalid \\u escape at byte {}", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| format!("invalid hex digit at byte {}", self.pos))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number at byte {}", start))
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{}", c)?,
        }
    }
    write!(out, "\"")
}

/// Compact (single-line) JSON — the wire format of the protocol.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{}", b),
            Json::Int(i) => write!(f, "{}", i),
            Json::Float(x) => {
                // `{}` on f64 already round-trips; normalize the
                // non-finite values JSON cannot carry.
                if x.is_finite() {
                    write!(f, "{}", x)
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", item)?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape_into(f, key)?;
                    write!(f, ":{}", value)?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_value_grammar() {
        let text = r#"{"a":null,"b":[true,false,-3,2.5],"c":{"d":"x\ny"},"e":""}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.to_string(), text);
        assert_eq!(value.get("b").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(value.get("c").unwrap().get("d").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn integers_and_floats_are_distinguished() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("4.5").unwrap(), Json::Float(4.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        // Femtosecond-scale timestamps fit.
        let big = format!("{}", 10u128.pow(30));
        assert_eq!(Json::parse(&big).unwrap(), Json::Int(10i128.pow(30)));
    }

    #[test]
    fn string_escapes_round_trip() {
        let value = Json::parse(r#""tab\tquote\"backslash\\u\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(value.as_str(), Some("tab\tquote\"backslash\\ué😀"));
        // Writing re-escapes the mandatory characters.
        let text = Json::Str("a\"b\\c\nd\u{0001}".to_string()).to_string();
        assert_eq!(text, r#""a\"b\\c\nd\u0001""#);
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some("a\"b\\c\nd\u{0001}"));
        // Raw multi-byte UTF-8 passes through unescaped.
        let unicode = Json::parse("\"héllo → wörld\"").unwrap();
        assert_eq!(unicode.as_str(), Some("héllo → wörld"));
    }

    #[test]
    fn surrogate_pair_escapes_decode_and_lone_halves_are_rejected() {
        // A valid pair combines into one astral code point; the first
        // and last representable pairs bound the range.
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert_eq!(Json::parse(r#""𐀀""#).unwrap().as_str(), Some("\u{10000}"));
        assert_eq!(Json::parse(r#""􏿿""#).unwrap().as_str(), Some("\u{10ffff}"));
        // A lone high surrogate at end of string.
        assert!(Json::parse(r#""\ud83d""#).unwrap_err().contains("lone surrogate"));
        // A high surrogate followed by a non-escape character.
        assert!(Json::parse(r#""\ud83dx""#).unwrap_err().contains("lone surrogate"));
        // A high surrogate followed by a non-\u escape.
        assert!(Json::parse(r#""\ud83d\n""#).unwrap_err().contains("lone surrogate"));
        // A high surrogate followed by a \u unit that is not a low half
        // (another high surrogate, and a plain BMP unit).
        assert!(Json::parse(r#""\ud83d\ud83d""#).unwrap_err().contains("lone surrogate"));
        assert!(Json::parse("\"\\ud83d\\u0041\"").unwrap_err().contains("lone surrogate"));
        // A lone *low* surrogate never had a high half to pair with.
        assert!(Json::parse(r#""\ude00\ud83d""#).unwrap_err().contains("invalid \\u escape"));
        // A truncated second unit dies in the hex reader, not the pairing.
        assert!(Json::parse(r#""\ud83d\ude0""#).unwrap_err().contains("hex digit"));
    }

    #[test]
    fn malformed_input_is_rejected_with_positions() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"unterminated",
            "1 2", "{\"a\":1,}", "[]]", "\"\\q\"", "\"\\ud800\"", "nan",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.contains("byte"), "error for {:?} lacks a position: {}", bad, err);
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting"));
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn builders_compose() {
        let value = Json::obj([
            ("ok", Json::Bool(true)),
            ("name", Json::str("x")),
            ("t", Json::uint(u128::MAX)),
        ]);
        assert_eq!(
            value.to_string(),
            format!(r#"{{"ok":true,"name":"x","t":{}}}"#, i128::MAX)
        );
    }
}
