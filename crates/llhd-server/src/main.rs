//! The `llhd-server` binary: a persistent simulation server speaking the
//! line-delimited JSON protocol of `docs/PROTOCOL.md` over stdio (the
//! default) or TCP.
//!
//! ```text
//! llhd-server [--stdio | --tcp ADDR] [--capacity N] [--stats-interval SECS]
//!             [--session-cap N] [--session-idle SECS] [--queue-cap N]
//!             [--drain-deadline SECS] [--server-id ID]
//!
//!   --stdio                requests on stdin, responses on stdout (default)
//!   --tcp ADDR             listen on ADDR (e.g. 127.0.0.1:7171; port 0 = ephemeral)
//!   --capacity N           cache at most N designs, LRU-evicted (default: unbounded)
//!   --stats-interval SECS  log a stats line to stderr every SECS seconds
//!                          (default 30; 0 disables)
//!   --session-cap N        allow at most N open interactive sessions (default 64)
//!   --session-idle SECS    destroy sessions idle for SECS seconds (default 600)
//!   --queue-cap N          shed jobs past N pending with a retryable
//!                          `overloaded` error (default: unbounded)
//!   --drain-deadline SECS  abandon in-flight work SECS seconds into a
//!                          graceful shutdown (default 30)
//!   --server-id ID         identity reported in ping/stats responses
//!                          (default: derived from pid + start time)
//! ```
//!
//! With the `fault-injection` feature compiled in, the `LLHD_FAULT_PLAN`
//! environment variable (e.g. `seed=42,sim.panic=16,io.read.error=4`)
//! arms the deterministic chaos harness.

use llhd_server::{Server, ServerConfig};
use std::net::TcpListener;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: llhd-server [--stdio | --tcp ADDR] [--capacity N] [--stats-interval SECS] [--session-cap N] [--session-idle SECS] [--queue-cap N] [--drain-deadline SECS] [--server-id ID]"
    );
    std::process::exit(2);
}

/// Arm the fault plan from `LLHD_FAULT_PLAN` when the harness is
/// compiled in; reject the variable otherwise, rather than silently
/// serving without the faults the operator asked for.
fn fault_plan_from_env(config: &mut ServerConfig) {
    let spec = match std::env::var("LLHD_FAULT_PLAN") {
        Ok(spec) if !spec.trim().is_empty() => spec,
        _ => return,
    };
    #[cfg(feature = "fault-injection")]
    {
        match llhd_server::fault::FaultPlan::parse(&spec) {
            Ok(plan) => {
                eprintln!("llhd-server: fault injection armed ({:?})", plan);
                config.fault_plan = Some(std::sync::Arc::new(plan));
            }
            Err(e) => {
                eprintln!("llhd-server: bad LLHD_FAULT_PLAN: {}", e);
                std::process::exit(2);
            }
        }
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = config;
        eprintln!(
            "llhd-server: LLHD_FAULT_PLAN={:?} set, but this binary was built without the fault-injection feature",
            spec
        );
        std::process::exit(2);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tcp: Option<String> = None;
    let mut capacity: Option<usize> = None;
    let mut stats_secs: u64 = 30;
    let mut session_cap: Option<usize> = None;
    let mut session_idle: Option<u64> = None;
    let mut queue_cap: Option<usize> = None;
    let mut drain_deadline: Option<u64> = None;
    let mut server_id: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--stdio" => {}
            "--tcp" => match argv.get(i + 1) {
                Some(addr) => {
                    tcp = Some(addr.clone());
                    i += 1;
                }
                None => usage(),
            },
            "--capacity" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(n) => {
                    capacity = Some(n);
                    i += 1;
                }
                None => usage(),
            },
            "--stats-interval" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(secs) => {
                    stats_secs = secs;
                    i += 1;
                }
                None => usage(),
            },
            "--session-cap" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(n) => {
                    session_cap = Some(n);
                    i += 1;
                }
                None => usage(),
            },
            "--session-idle" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(secs) => {
                    session_idle = Some(secs);
                    i += 1;
                }
                None => usage(),
            },
            "--queue-cap" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(n) => {
                    queue_cap = Some(n);
                    i += 1;
                }
                None => usage(),
            },
            "--drain-deadline" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(secs) => {
                    drain_deadline = Some(secs);
                    i += 1;
                }
                None => usage(),
            },
            "--server-id" => match argv.get(i + 1) {
                Some(id) => {
                    server_id = Some(id.clone());
                    i += 1;
                }
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("llhd-server: unknown argument {:?}", other);
                usage();
            }
        }
        i += 1;
    }
    // The struct update is only "needless" without the fault-injection
    // feature; with it, the literal doesn't cover `fault_plan`.
    #[allow(clippy::needless_update)]
    let mut config = ServerConfig {
        cache_capacity: capacity,
        stats_interval: match stats_secs {
            0 => None,
            secs => Some(Duration::from_secs(secs)),
        },
        session_cap,
        session_idle_timeout: session_idle.map(Duration::from_secs),
        queue_cap,
        drain_deadline: drain_deadline.map(Duration::from_secs),
        server_id,
        ..ServerConfig::default()
    };
    fault_plan_from_env(&mut config);
    let server = Server::new(config);
    let result = match tcp {
        Some(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                // The ephemeral-port form (`:0`) is only useful if the
                // chosen port is announced.
                match listener.local_addr() {
                    Ok(local) => eprintln!("llhd-server: listening on {}", local),
                    Err(_) => eprintln!("llhd-server: listening on {}", addr),
                }
                server.serve_tcp(listener)
            }
            Err(e) => {
                eprintln!("llhd-server: cannot bind {}: {}", addr, e);
                std::process::exit(1);
            }
        },
        None => server.serve_stdio(),
    };
    if let Err(e) = result {
        eprintln!("llhd-server: {}", e);
        std::process::exit(1);
    }
}
