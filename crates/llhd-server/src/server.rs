//! The server runtime: shared state, the dispatcher that fans requests
//! across [`SimSession::run_batch`], connection handling over TCP and
//! stdio, and graceful shutdown.
//!
//! # Architecture
//!
//! ```text
//!  TCP clients ──► connection threads ─┐
//!                                      ├─► request queue ─► dispatcher ─► SimSession::run_batch
//!  stdio client ─► connection loop  ───┘        ▲                              │
//!                                               └── replies (mpsc) ◄───────────┘
//!                                    shared: DesignCache + module registry
//! ```
//!
//! Each connection is read line by line; simulation jobs are pushed onto
//! one shared queue and the dispatcher drains it in *micro-batches*: all
//! jobs pending at that moment become one [`SimSession::run_batch`] call
//! (one worker thread per core), executing against the server's one
//! [`DesignCache`]. Concurrent requests for the same design therefore
//! elaborate and compile exactly once (the cache's per-key locking), and
//! repeat requests are served from the warmed cache — an engine over a
//! cached compiled design costs a reference-count bump plus a register
//! file clone.
//!
//! Shutdown is graceful by construction: the `shutdown` flag and the job
//! queue share one lock, so every job either (a) was enqueued before
//! shutdown began and will be executed and answered, or (b) is rejected
//! with an error of kind `shutdown`. The dispatcher exits only once the
//! flag is set *and* the queue is empty — bounded by the drain deadline,
//! after which stuck jobs are abandoned and answered with `shutdown`.
//!
//! # Failure model
//!
//! Every simulation job, session command, and request line runs inside a
//! panic domain (`catch_unwind`): a panicking engine costs its own
//! request an `internal_error` response while the server keeps serving.
//! Poisoned cache entries are evicted, not wedged. Jobs carry an optional
//! wall-clock deadline enforced between engine step-chunks, and the
//! dispatch queue can be bounded (`queue_cap`), shedding load with a
//! retryable `overloaded` error. See `ARCHITECTURE.md`, "Failure model".

use crate::json::Json;
use crate::protocol::{
    error_response, hex_decode, hex_encode, ok_response, request_id, sim_result_json, stats_json,
    ErrorKind, ProtoError, QueryKind, Request, ServerLoad, SimJobSpec,
};
use crate::wire::LineReader;
use llhd::assembly::parse_module;
use llhd::ir::Module;
use llhd::value::ConstValue;
use llhd_sim::api::{panic_message, BatchJob, DesignCache, EngineKind, EngineState, SimSession};
use llhd_sim::design::{InstanceId, InstanceKind};
use llhd_sim::{DesignQuery, RunControl, SimConfig, SimResult};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lock a server mutex, recovering from poison. Every server lock guards
/// state that is updated in single non-panicking operations (map
/// inserts/removes, vec pushes, flag stores), so a poisoned guard means
/// some *other* holder panicked mid-request — the state itself is
/// consistent and serving must continue.
fn plock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The default `server_id` when none is configured: pid plus start time,
/// so restarts of the same process slot (same pid reused, same `--tcp`
/// address) still read as distinct workers in a fleet rollup.
fn default_server_id() -> String {
    let epoch_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    format!("{:x}-{:x}", std::process::id(), epoch_ms)
}

/// How long a connection thread blocks in `read` before re-checking the
/// shutdown flag (TCP only; stdio cannot portably time out).
const READ_TICK: Duration = Duration::from_millis(100);

/// The default cap on concurrently open interactive sessions.
const DEFAULT_SESSION_CAP: usize = 64;

/// The default per-session idle timeout: a session that receives no
/// command for this long is destroyed (its engine state is dropped; a
/// client that checkpointed can restore).
const DEFAULT_SESSION_IDLE: Duration = Duration::from_secs(600);

/// The default drain deadline: how long a graceful shutdown waits for
/// in-flight jobs before abandoning them (they are answered with a
/// retryable `shutdown` error).
const DEFAULT_DRAIN_DEADLINE: Duration = Duration::from_secs(30);

/// How often a reply wait or the dispatcher's drain re-checks its
/// deadline. Replies arrive instantly when ready (mpsc wakes the
/// waiter); this tick only bounds how late a *deadline* is noticed.
const DRAIN_TICK: Duration = Duration::from_millis(50);

/// Server construction options.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// Bound the [`DesignCache`] (and the module registry) to this many
    /// designs, LRU-evicted beyond it. `None`: unbounded.
    pub cache_capacity: Option<usize>,
    /// Emit a stats log line to stderr at this interval. `None`: silent.
    pub stats_interval: Option<Duration>,
    /// Cap on concurrently open interactive sessions. `None`: the
    /// built-in default (64). Unlike `cache_capacity`, sessions hold a
    /// live engine each, so there is always *some* cap.
    pub session_cap: Option<usize>,
    /// Destroy a session that receives no command for this long.
    /// `None`: the built-in default (10 minutes).
    pub session_idle_timeout: Option<Duration>,
    /// High-water mark on the dispatch queue: a job group that would
    /// push the queue past this many pending jobs is shed with a
    /// retryable `overloaded` error carrying a `retry_after_ms` hint.
    /// `None`: unbounded, nothing sheds.
    pub queue_cap: Option<usize>,
    /// How long shutdown waits for in-flight jobs before abandoning
    /// them. `None`: the built-in default (30 seconds).
    pub drain_deadline: Option<Duration>,
    /// Stable identity this process reports in `ping` and `stats`
    /// responses (`server_id`), so a fleet router can attribute
    /// per-worker numbers. `None`: a pid+start-time derived default.
    pub server_id: Option<String>,
    /// The deterministic fault plan driving the chaos harness. `None`:
    /// no faults. Only present with the `fault-injection` feature.
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<Arc<crate::fault::FaultPlan>>,
}

/// One queued simulation job plus its reply channel.
struct PendingJob {
    module: Arc<Module>,
    /// The module's cache fingerprint, known from the registry — passed
    /// through to `run_batch` so the hot path never re-encodes the module.
    key: u128,
    top: String,
    engine: EngineKind,
    config: SimConfig,
    reply: mpsc::Sender<Result<SimResult, llhd_sim::api::Error>>,
}

/// The job queue; `shutting_down` shares this lock so enqueue-vs-shutdown
/// is race-free (see the module docs).
#[derive(Default)]
struct Queue {
    jobs: Vec<PendingJob>,
    shutting_down: bool,
}

/// Parsed modules resident on the server, keyed by content fingerprint,
/// so `design`-keyed requests can re-run (and even re-elaborate after a
/// cache eviction) without resending source. Bounded like the cache.
#[derive(Default)]
struct Registry {
    modules: HashMap<u128, (Arc<Module>, u64)>,
    tick: u64,
    capacity: Option<usize>,
}

impl Registry {
    fn insert(&mut self, key: u128, module: Arc<Module>) {
        self.tick += 1;
        let tick = self.tick;
        self.modules.insert(key, (module, tick));
        // Same capacity convention as `DesignCache`: `None`/`Some(0)` is
        // unbounded — the registry and the cache must agree on which
        // designs stay resident.
        let capacity = match self.capacity {
            Some(capacity) if capacity > 0 => capacity,
            _ => return,
        };
        while self.modules.len() > capacity {
            let coldest = self
                .modules
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(&key, _)| key);
            match coldest {
                Some(key) => {
                    self.modules.remove(&key);
                }
                None => break,
            }
        }
    }

    fn get(&mut self, key: u128) -> Option<Arc<Module>> {
        self.tick += 1;
        let tick = self.tick;
        self.modules.get_mut(&key).map(|(module, used)| {
            *used = tick;
            Arc::clone(module)
        })
    }

    fn remove(&mut self, key: u128) {
        self.modules.remove(&key);
    }
}

/// One command to an interactive session's thread. Every command carries
/// its own reply channel; the connection thread blocks on it, so each
/// session processes its commands strictly in order.
enum SessionCmd {
    Step {
        steps: usize,
        deadline_ms: Option<u64>,
        reply: mpsc::Sender<Result<Json, ProtoError>>,
    },
    Peek {
        signal: String,
        reply: mpsc::Sender<Result<Json, ProtoError>>,
    },
    Poke {
        signal: String,
        value: u128,
        reply: mpsc::Sender<Result<Json, ProtoError>>,
    },
    Query {
        query: QueryKind,
        reply: mpsc::Sender<Result<Json, ProtoError>>,
    },
    Checkpoint {
        reply: mpsc::Sender<Result<Json, ProtoError>>,
    },
    Destroy {
        reply: mpsc::Sender<Result<Json, ProtoError>>,
    },
}

/// The open-session table: id → command channel. A session's thread owns
/// its engine; dropping the sender here (idle timeout, destroy, server
/// shutdown) makes the thread exit after draining queued commands.
#[derive(Default)]
struct Sessions {
    map: HashMap<String, mpsc::Sender<SessionCmd>>,
    counter: u64,
}

/// Shared state of one running server: the design cache, the module
/// registry, the job queue, and the counters behind the `stats` endpoint.
pub struct ServerState {
    cache: DesignCache,
    registry: Mutex<Registry>,
    queue: Mutex<Queue>,
    queue_cv: Condvar,
    /// Mirror of `Queue::shutting_down` for lock-free reads on hot paths.
    shutdown_flag: AtomicBool,
    /// Where a shutdown must connect to unblock the TCP accept loop.
    wake_addr: Mutex<Option<SocketAddr>>,
    started: Instant,
    /// The identity reported in `ping`/`stats` (`server_id`).
    server_id: String,
    /// Simulation jobs accepted (batch jobs count individually).
    requests: AtomicUsize,
    /// Open interactive sessions.
    sessions: Mutex<Sessions>,
    /// Cap on concurrently open sessions.
    session_cap: usize,
    /// Idle timeout after which a session self-destroys.
    session_idle: Duration,
    /// High-water mark on the dispatch queue (`None`: unbounded).
    queue_cap: Option<usize>,
    /// How long shutdown waits for in-flight work before abandoning it.
    drain_deadline: Duration,
    /// Set by [`ServerState::begin_shutdown`]: the instant at which the
    /// drain gives up and stuck jobs are answered with `shutdown`.
    drain_until: Mutex<Option<Instant>>,
    /// Jobs currently executing in micro-batch workers.
    inflight: AtomicUsize,
    /// Job groups shed with `overloaded` since start.
    shed: AtomicUsize,
    /// Panics caught (and answered as `internal_error`) since start.
    panics_caught: AtomicUsize,
    /// The deterministic fault plan, when the chaos harness is armed.
    #[cfg(feature = "fault-injection")]
    fault: Option<Arc<crate::fault::FaultPlan>>,
}

impl ServerState {
    fn new(config: &ServerConfig) -> Self {
        let cache = DesignCache::new();
        cache.set_capacity(config.cache_capacity);
        ServerState {
            cache,
            registry: Mutex::new(Registry {
                capacity: config.cache_capacity,
                ..Registry::default()
            }),
            queue: Mutex::default(),
            queue_cv: Condvar::new(),
            shutdown_flag: AtomicBool::new(false),
            wake_addr: Mutex::new(None),
            started: Instant::now(),
            server_id: config
                .server_id
                .clone()
                .filter(|id| !id.is_empty())
                .unwrap_or_else(default_server_id),
            requests: AtomicUsize::new(0),
            sessions: Mutex::default(),
            session_cap: config.session_cap.unwrap_or(DEFAULT_SESSION_CAP),
            session_idle: config.session_idle_timeout.unwrap_or(DEFAULT_SESSION_IDLE),
            queue_cap: config.queue_cap.filter(|&cap| cap > 0),
            drain_deadline: config.drain_deadline.unwrap_or(DEFAULT_DRAIN_DEADLINE),
            drain_until: Mutex::new(None),
            inflight: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            panics_caught: AtomicUsize::new(0),
            #[cfg(feature = "fault-injection")]
            fault: config.fault_plan.clone(),
        }
    }

    /// Record a caught panic: bump the counter and evict any cache
    /// entries the unwind left poisoned, so the next request for the
    /// same design recompiles instead of wedging.
    fn note_panic(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
        self.cache.sweep_poisoned();
    }

    /// Phantom queue depth injected by the fault plan (`queue.pressure`
    /// site); zero without the `fault-injection` feature.
    fn fault_queue_pressure(&self) -> usize {
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &self.fault {
            return plan.queue_pressure();
        }
        0
    }

    /// Arm the fault plan's `sim.panic` site on a job's run control: the
    /// probe panics at a plan-chosen scheduler cycle, mid-simulation,
    /// inside the batch worker's panic domain.
    #[cfg(feature = "fault-injection")]
    fn arm_fault_probe(&self, config: &mut SimConfig) {
        let Some(plan) = &self.fault else { return };
        let Some(at_cycle) = plan.sim_panic_cycle() else {
            return;
        };
        let cycles = AtomicUsize::new(0);
        config.control.probe = Some(Arc::new(move || {
            if cycles.fetch_add(1, Ordering::Relaxed) as u64 == at_cycle {
                panic!("injected fault: simulation panic at cycle {} (site sim.panic)", at_cycle);
            }
        }));
    }

    #[cfg(not(feature = "fault-injection"))]
    fn arm_fault_probe(&self, _config: &mut SimConfig) {}

    /// The shared design cache (exposed for tests and benchmarks).
    pub fn cache(&self) -> &DesignCache {
        &self.cache
    }

    /// The identity this server reports in `ping`/`stats` responses.
    pub fn server_id(&self) -> &str {
        &self.server_id
    }

    /// Whether shutdown has begun.
    pub fn shutting_down(&self) -> bool {
        self.shutdown_flag.load(Ordering::Relaxed)
    }

    /// Begin graceful shutdown: stop taking new jobs, let the dispatcher
    /// drain the queue, and unblock the accept loop.
    pub fn begin_shutdown(&self) {
        {
            let mut queue = plock(&self.queue);
            queue.shutting_down = true;
            self.shutdown_flag.store(true, Ordering::Relaxed);
            self.queue_cv.notify_all();
        }
        // Start the drain clock: in-flight work gets this long to finish
        // before waiters are answered with a retryable `shutdown` error.
        *plock(&self.drain_until) = Some(Instant::now() + self.drain_deadline);
        // Dropping the command senders ends every session thread after it
        // drains already-queued commands (those replies still arrive).
        plock(&self.sessions).map.clear();
        // Unblock the accept loop with one throwaway connection.
        let addr = *plock(&self.wake_addr);
        if let Some(addr) = addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    /// Enqueue jobs for the dispatcher as one group (one lock acquisition,
    /// so they land in the same micro-batch). Refused once shutdown has
    /// begun — the refusal and the dispatcher's drain share the queue
    /// lock, so no job can slip into the gap and hang unanswered.
    fn submit(&self, jobs: Vec<PendingJob>) -> Result<(), ProtoError> {
        let mut queue = plock(&self.queue);
        if queue.shutting_down {
            return Err(ProtoError::new(
                ErrorKind::Shutdown,
                "server is shutting down; no new simulations are accepted",
            ));
        }
        // Admission control: shed the whole group (never a partial batch)
        // when it would push the queue past the cap. The hint scales with
        // the overshoot so heavier overload backs clients off longer.
        if let Some(cap) = self.queue_cap {
            let depth = queue.jobs.len() + self.fault_queue_pressure();
            if depth + jobs.len() > cap {
                self.shed.fetch_add(1, Ordering::Relaxed);
                let overshoot = (depth + jobs.len() - cap) as u128;
                return Err(ProtoError::new(
                    ErrorKind::Overloaded,
                    format!(
                        "dispatch queue is full ({} pending, cap {}); retry later",
                        depth, cap
                    ),
                )
                .with_data(
                    "retry_after_ms",
                    Json::uint((10 * overshoot).clamp(10, 1000)),
                ));
            }
        }
        queue.jobs.extend(jobs);
        self.queue_cv.notify_all();
        Ok(())
    }

    /// Resolve a job's design reference to a resident module + key:
    /// inline source is parsed and registered, a key must be resident.
    fn resolve_module(&self, spec: &SimJobSpec) -> Result<(Arc<Module>, u128), ProtoError> {
        if let Some(source) = &spec.source {
            let module = Arc::new(parse_module(source).map_err(|e| {
                ProtoError::new(ErrorKind::Source, format!("invalid LLHD assembly: {}", e))
            })?);
            let key = DesignCache::fingerprint(&module);
            plock(&self.registry).insert(key, Arc::clone(&module));
            return Ok((module, key));
        }
        let text = spec.design.as_deref().expect("parser requires source or design");
        let key = u128::from_str_radix(text, 16).map_err(|_| {
            ProtoError::new(
                ErrorKind::Protocol,
                format!("\"design\" must be a hex key, got {:?}", text),
            )
        })?;
        match plock(&self.registry).get(key) {
            Some(module) => Ok((module, key)),
            None => Err(ProtoError::new(
                ErrorKind::UnknownDesign,
                format!("design {:032x} is not resident (evicted or never submitted); resend its source", key),
            )),
        }
    }

    /// Execute one group of jobs (a `sim` request is a group of one) and
    /// render each job's response payload.
    fn run_jobs(&self, specs: &[SimJobSpec]) -> Result<Vec<Result<Json, ProtoError>>, ProtoError> {
        let mut pending = Vec::with_capacity(specs.len());
        let mut meta = Vec::with_capacity(specs.len());
        for spec in specs {
            let (module, key) = match self.resolve_module(spec) {
                Ok(resolved) => resolved,
                Err(e) => {
                    // A bad design reference fails only its own job; in a
                    // batch the other jobs still run.
                    meta.push(Err(e));
                    continue;
                }
            };
            let (tx, rx) = mpsc::channel();
            meta.push(Ok((key, rx)));
            let mut config = spec.sim_config();
            // The budget starts at receipt, so time spent queued counts
            // against it — an overloaded server fails deadlined jobs fast
            // instead of running them long after the client gave up.
            if let Some(ms) = spec.deadline_ms {
                config.control.deadline = Some(Instant::now() + Duration::from_millis(ms));
            }
            self.arm_fault_probe(&mut config);
            pending.push(PendingJob {
                module,
                key,
                top: spec.top.clone(),
                engine: spec.engine,
                config,
                reply: tx,
            });
        }
        let submitted = pending.len();
        self.submit(pending)?;
        self.requests.fetch_add(submitted, Ordering::Relaxed);
        let mut out = Vec::with_capacity(specs.len());
        for (spec, entry) in specs.iter().zip(meta) {
            out.push(match entry {
                Err(e) => Err(e),
                Ok((key, rx)) => match self.await_reply(&rx) {
                    Ok(Ok(result)) => Ok(sim_result_json(
                        &format!("{:032x}", key),
                        &spec.top,
                        spec.engine,
                        spec.trace,
                        &result,
                    )),
                    Ok(Err(e)) => {
                        // A freshly submitted source that fails to
                        // elaborate must not stay resident: it would
                        // occupy registry capacity (evicting designs the
                        // cache still serves) for a key nobody can use.
                        if spec.source.is_some()
                            && matches!(e, llhd_sim::api::Error::Elaborate(_))
                        {
                            plock(&self.registry).remove(key);
                        }
                        Err(e.into())
                    }
                    Err(e) => Err(e),
                },
            });
        }
        Ok(out)
    }

    /// Block on one job reply, bounded by the drain deadline once a
    /// shutdown has begun. Without that bound a job wedged inside a
    /// worker would hang its client (and shutdown) forever.
    fn await_reply(
        &self,
        rx: &mpsc::Receiver<Result<SimResult, llhd_sim::api::Error>>,
    ) -> Result<Result<SimResult, llhd_sim::api::Error>, ProtoError> {
        loop {
            match rx.recv_timeout(DRAIN_TICK) {
                Ok(reply) => return Ok(reply),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(ProtoError::new(
                        ErrorKind::Shutdown,
                        "server shut down before the job completed",
                    ))
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if let Some(until) = *plock(&self.drain_until) {
                        if Instant::now() >= until {
                            return Err(ProtoError::new(
                                ErrorKind::Shutdown,
                                "shutdown drain deadline exceeded before the job completed; retry against a live server",
                            ));
                        }
                    }
                }
            }
        }
    }

    /// Open a new interactive session (optionally restoring a checkpoint
    /// into it) and return the `session.create`/`session.restore` payload.
    fn create_session(
        self: &Arc<Self>,
        spec: SimJobSpec,
        restore: Option<EngineState>,
    ) -> Result<Json, ProtoError> {
        if self.shutting_down() {
            return Err(ProtoError::new(
                ErrorKind::Shutdown,
                "server is shutting down; no new sessions are accepted",
            ));
        }
        let (module, key) = self.resolve_module(&spec)?;
        let (tx, rx) = mpsc::channel();
        let id = {
            let mut sessions = plock(&self.sessions);
            if sessions.map.len() >= self.session_cap {
                return Err(ProtoError::new(
                    ErrorKind::SessionLimit,
                    format!(
                        "session cap of {} reached; destroy a session first",
                        self.session_cap
                    ),
                ));
            }
            sessions.counter += 1;
            let id = format!("s{}", sessions.counter);
            sessions.map.insert(id.clone(), tx);
            id
        };
        let (ready_tx, ready_rx) = mpsc::channel();
        let state = Arc::clone(self);
        let thread_id = id.clone();
        std::thread::spawn(move || {
            session_thread(state, thread_id, module, key, spec, restore, rx, ready_tx)
        });
        // The thread reports either the session payload or a build/restore
        // failure (in which case it has already removed itself).
        ready_rx.recv().unwrap_or_else(|_| {
            Err(ProtoError::new(
                ErrorKind::Runtime,
                "session thread died during startup",
            ))
        })
    }

    /// Route one command to a session's thread and wait for the reply.
    fn session_request(
        &self,
        id: &str,
        make: impl FnOnce(mpsc::Sender<Result<Json, ProtoError>>) -> SessionCmd,
    ) -> Result<Json, ProtoError> {
        let unknown = || {
            ProtoError::new(
                ErrorKind::UnknownSession,
                format!(
                    "session {:?} does not exist (expired, destroyed, or never created)",
                    id
                ),
            )
        };
        let tx = plock(&self.sessions).map.get(id).cloned().ok_or_else(unknown)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        // A send/recv failure means the session exited between the table
        // lookup and the command (idle timeout or destroy won the race).
        tx.send(make(reply_tx)).map_err(|_| unknown())?;
        reply_rx.recv().unwrap_or_else(|_| Err(unknown()))
    }

    /// Handle one request line, returning the response and whether the
    /// connection should close afterwards (shutdown acknowledgements).
    pub fn handle_line(self: &Arc<Self>, line: &str) -> (Json, bool) {
        let value = match Json::parse(line) {
            Ok(value) => value,
            Err(message) => {
                return (
                    error_response(None, &ProtoError::new(ErrorKind::Parse, message)),
                    false,
                )
            }
        };
        let id = request_id(&value);
        let request = match Request::parse(&value) {
            Ok(request) => request,
            Err(e) => return (error_response(id, &e), false),
        };
        match request {
            Request::Ping => (
                ok_response(
                    id,
                    Json::obj([
                        ("pong", Json::Bool(true)),
                        ("server_id", Json::str(self.server_id.clone())),
                        ("uptime_ms", Json::uint(self.started.elapsed().as_millis())),
                    ]),
                ),
                false,
            ),
            Request::Stats => {
                let resident = plock(&self.registry).modules.len();
                let uptime = self.started.elapsed();
                let requests = self.requests.load(Ordering::Relaxed);
                let load = ServerLoad {
                    queue_depth: plock(&self.queue).jobs.len(),
                    queue_cap: self.queue_cap,
                    inflight: self.inflight.load(Ordering::Relaxed),
                    shed: self.shed.load(Ordering::Relaxed),
                    open_sessions: plock(&self.sessions).map.len(),
                    panics_caught: self.panics_caught.load(Ordering::Relaxed),
                };
                (
                    ok_response(
                        id,
                        stats_json(
                            &self.cache.stats(),
                            &self.server_id,
                            resident,
                            uptime,
                            requests,
                            &load,
                        ),
                    ),
                    false,
                )
            }
            Request::Shutdown => {
                self.begin_shutdown();
                (
                    ok_response(id, Json::obj([("shutting_down", Json::Bool(true))])),
                    true,
                )
            }
            Request::Sim(spec) => match self.run_jobs(std::slice::from_ref(&spec)) {
                Ok(mut results) => match results.remove(0) {
                    Ok(result) => (ok_response(id, result), false),
                    Err(e) => (error_response(id, &e), false),
                },
                Err(e) => (error_response(id, &e), false),
            },
            Request::SessionCreate(spec) => {
                (respond(id, self.create_session(spec, None)), false)
            }
            Request::SessionRestore { spec, state_hex } => {
                let outcome = hex_decode(&state_hex)
                    .and_then(|bytes| {
                        EngineState::from_bytes(bytes).map_err(|e| {
                            ProtoError::new(
                                ErrorKind::Protocol,
                                format!("invalid checkpoint: {}", e),
                            )
                        })
                    })
                    .and_then(|snapshot| self.create_session(spec, Some(snapshot)));
                (respond(id, outcome), false)
            }
            Request::SessionStep {
                session,
                steps,
                deadline_ms,
            } => (
                respond(
                    id,
                    self.session_request(&session, |reply| SessionCmd::Step {
                        steps,
                        deadline_ms,
                        reply,
                    }),
                ),
                false,
            ),
            Request::SessionPeek { session, signal } => (
                respond(
                    id,
                    self.session_request(&session, |reply| SessionCmd::Peek { signal, reply }),
                ),
                false,
            ),
            Request::SessionPoke {
                session,
                signal,
                value,
            } => (
                respond(
                    id,
                    self.session_request(&session, |reply| SessionCmd::Poke {
                        signal,
                        value,
                        reply,
                    }),
                ),
                false,
            ),
            Request::SessionQuery { session, query } => (
                respond(
                    id,
                    self.session_request(&session, |reply| SessionCmd::Query { query, reply }),
                ),
                false,
            ),
            Request::SessionCheckpoint { session } => (
                respond(
                    id,
                    self.session_request(&session, |reply| SessionCmd::Checkpoint { reply }),
                ),
                false,
            ),
            Request::SessionDestroy { session } => (
                respond(
                    id,
                    self.session_request(&session, |reply| SessionCmd::Destroy { reply }),
                ),
                false,
            ),
            Request::Batch(specs) => match self.run_jobs(&specs) {
                Ok(results) => {
                    let rendered: Vec<Json> = results
                        .into_iter()
                        .map(|r| match r {
                            Ok(result) => Json::obj([
                                ("ok", Json::Bool(true)),
                                ("result", result),
                            ]),
                            Err(e) => {
                                let mut fields = vec![
                                    ("kind".to_string(), Json::str(e.kind.wire_name())),
                                    ("message".to_string(), Json::str(e.message)),
                                    ("retryable".to_string(), Json::Bool(e.kind.retryable())),
                                ];
                                fields.extend(e.data);
                                Json::obj([
                                    ("ok", Json::Bool(false)),
                                    ("error", Json::Obj(fields)),
                                ])
                            }
                        })
                        .collect();
                    (
                        ok_response(id, Json::obj([("results", Json::Arr(rendered))])),
                        false,
                    )
                }
                Err(e) => (error_response(id, &e), false),
            },
        }
    }

    /// One human-readable observability line (the periodic server log).
    pub fn stats_line(&self) -> String {
        let stats = self.cache.stats();
        format!(
            "llhd-server: up {}s, {} jobs, cache {}{} designs (~{} KiB), elaborate {}/{} hit/miss, compile {}/{}, {} evictions",
            self.started.elapsed().as_secs(),
            self.requests.load(Ordering::Relaxed),
            stats.entries,
            stats
                .capacity
                .map(|c| format!("/{}", c))
                .unwrap_or_default(),
            stats.approx_bytes / 1024,
            stats.elaborate_hits,
            stats.elaborate_misses,
            stats.compile_hits,
            stats.compile_misses,
            stats.evictions,
        )
    }
}

/// The dispatcher: drains the queue in micro-batches and runs each batch
/// on its own thread through [`SimSession::run_batch`] with the shared
/// cache. All jobs pending at drain time execute concurrently (one
/// worker per core inside the batch), and because batches themselves run
/// detached from the drain loop, a long-running batch never blocks newer
/// short requests behind it (no head-of-line blocking across batches).
/// In-flight batch count is bounded by the number of connections — each
/// connection has at most one outstanding request.
fn dispatch_loop(state: Arc<ServerState>) {
    let mut batches: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let batch = {
            let mut queue = plock(&state.queue);
            loop {
                if !queue.jobs.is_empty() {
                    break Some(std::mem::take(&mut queue.jobs));
                }
                if queue.shutting_down {
                    break None;
                }
                queue = state
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let batch = match batch {
            Some(batch) => batch,
            None => break,
        };
        batches.retain(|handle| !handle.is_finished());
        let batch_state = Arc::clone(&state);
        batches.push(std::thread::spawn(move || {
            run_micro_batch(&batch_state, batch)
        }));
    }
    // Graceful drain: every accepted job is answered before the
    // dispatcher (and with it the server) exits — bounded by the drain
    // deadline, after which stuck batches are abandoned (their waiters
    // are answered with `shutdown` by `await_reply`'s own deadline).
    let until = plock(&state.drain_until)
        .unwrap_or_else(|| Instant::now() + state.drain_deadline);
    while !batches.is_empty() && Instant::now() < until {
        batches.retain(|handle| !handle.is_finished());
        if batches.is_empty() {
            break;
        }
        std::thread::sleep(DRAIN_TICK);
    }
    for handle in batches.into_iter().filter(|h| h.is_finished()) {
        let _ = handle.join();
    }
}

/// Render a session-request outcome into its response line.
fn respond(id: Option<Json>, outcome: Result<Json, ProtoError>) -> Json {
    match outcome {
        Ok(result) => ok_response(id, result),
        Err(e) => error_response(id, &e),
    }
}

/// The body of one interactive session: build the engine on this thread's
/// stack (optionally restoring a checkpoint), report readiness, then
/// serve commands until destroy, idle timeout, or server shutdown. The
/// thread owns its `Arc<Module>`, so cache eviction never disturbs it.
#[allow(clippy::too_many_arguments)]
fn session_thread(
    state: Arc<ServerState>,
    id: String,
    module: Arc<Module>,
    key: u128,
    spec: SimJobSpec,
    restore: Option<EngineState>,
    rx: mpsc::Receiver<SessionCmd>,
    ready: mpsc::Sender<Result<Json, ProtoError>>,
) {
    let built = (|| -> Result<SimSession, ProtoError> {
        let mut session = SimSession::builder(&module, &spec.top)
            .engine(spec.engine)
            .config(spec.sim_config())
            .cache(&state.cache)
            .cache_key(key)
            .build()?;
        if let Some(snapshot) = &restore {
            session.restore(snapshot)?;
        }
        Ok(session)
    })();
    let mut session = match built {
        Ok(session) => session,
        Err(e) => {
            plock(&state.sessions).map.remove(&id);
            let _ = ready.send(Err(e));
            return;
        }
    };
    let _ = ready.send(Ok(Json::obj([
        ("session", Json::str(id.clone())),
        ("design", Json::str(format!("{:032x}", key))),
        ("engine", Json::str(session.engine_name())),
        ("restored", Json::Bool(restore.is_some())),
    ])));
    // The connectivity index is built on first use: pure step/peek/poke
    // sessions never pay for it.
    let mut index: Option<DesignQuery> = None;
    let destroy_reply = loop {
        let cmd = match rx.recv_timeout(state.session_idle) {
            Ok(cmd) => cmd,
            // Idle timeout, or the server dropped the handle (shutdown).
            Err(_) => break None,
        };
        // Each command runs inside its own panic domain. A panicking
        // handler costs this session its life (the engine may be mid-
        // update), but the command is still answered and the server —
        // and every other session — keeps running.
        let (reply, outcome) = match cmd {
            SessionCmd::Destroy { reply } => break Some(reply),
            SessionCmd::Step {
                steps,
                deadline_ms,
                reply,
            } => (
                reply,
                catch_unwind(AssertUnwindSafe(|| {
                    step_session(&mut session, steps, deadline_ms)
                })),
            ),
            SessionCmd::Peek { signal, reply } => (
                reply,
                catch_unwind(AssertUnwindSafe(|| peek_session(&session, &signal))),
            ),
            SessionCmd::Poke {
                signal,
                value,
                reply,
            } => (
                reply,
                catch_unwind(AssertUnwindSafe(|| {
                    poke_session(&mut session, &signal, value)
                })),
            ),
            SessionCmd::Query { query, reply } => (
                reply,
                catch_unwind(AssertUnwindSafe(|| {
                    let index = index
                        .get_or_insert_with(|| DesignQuery::build(&module, session.design()));
                    run_query(&session, index, &query)
                })),
            ),
            SessionCmd::Checkpoint { reply } => (
                reply,
                catch_unwind(AssertUnwindSafe(|| checkpoint_session(&session))),
            ),
        };
        match outcome {
            Ok(result) => {
                let _ = reply.send(result);
            }
            Err(payload) => {
                state.note_panic();
                let _ = reply.send(Err(ProtoError::new(
                    ErrorKind::Internal,
                    format!(
                        "session command panicked: {} (the session has been destroyed)",
                        panic_message(&*payload)
                    ),
                )));
                break None;
            }
        }
    };
    plock(&state.sessions).map.remove(&id);
    if let Some(reply) = destroy_reply {
        let kind = session.engine_kind();
        let outcome = session
            .finish()
            .map_err(ProtoError::from)
            .map(|result| {
                sim_result_json(&format!("{:032x}", key), &spec.top, kind, spec.trace, &result)
            });
        let _ = reply.send(outcome);
    }
}

/// `session.step`: advance up to `steps` scheduler cycles, optionally
/// bounded by a wall-clock budget. A blown budget is reported with the
/// progress made (`steps_taken`, `end_time_fs`) and does *not* destroy
/// the session — the abort happens between cycles, where engine state is
/// consistent, so the client can simply step again.
fn step_session(
    session: &mut SimSession,
    steps: usize,
    deadline_ms: Option<u64>,
) -> Result<Json, ProtoError> {
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    if let Some(deadline) = deadline {
        session.set_control(RunControl::with_deadline(deadline));
    }
    let mut taken = 0usize;
    let mut more = true;
    let outcome = loop {
        if taken >= steps || !more {
            break Ok(());
        }
        // Belt and braces: the engine checks the deadline at the top of
        // each cycle too, but a `steps`-loop over a control-less engine
        // (e.g. after a future engine ignores `set_control`) must still
        // terminate.
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                break Err(llhd_sim::api::Error::DeadlineExceeded {
                    time_fs: session.time().as_femtos(),
                });
            }
        }
        match session.step() {
            Ok(m) => {
                more = m;
                taken += 1;
            }
            Err(e) => break Err(e),
        }
    };
    if deadline.is_some() {
        session.set_control(RunControl::default());
    }
    match outcome {
        Ok(()) => Ok(Json::obj([
            ("steps", Json::uint(taken as u128)),
            ("done", Json::Bool(!more)),
            ("time_fs", Json::uint(session.time().as_femtos())),
        ])),
        Err(e @ llhd_sim::api::Error::DeadlineExceeded { .. }) => {
            Err(ProtoError::from(e).with_data("steps_taken", Json::uint(taken as u128)))
        }
        Err(e) => Err(e.into()),
    }
}

/// A signal value on the wire: always the printed form, plus the plain
/// integer when the value is one.
fn value_fields(value: &ConstValue) -> Vec<(String, Json)> {
    let mut fields = vec![("value".to_string(), Json::str(value.to_string()))];
    if let Some(n) = value.to_u64() {
        fields.push(("value_int".to_string(), Json::uint(n as u128)));
    }
    fields
}

/// `session.peek`: read one signal.
fn peek_session(session: &SimSession, signal: &str) -> Result<Json, ProtoError> {
    let value = session.peek(signal)?;
    let mut fields = vec![("signal".to_string(), Json::str(signal))];
    fields.extend(value_fields(&value));
    fields.push((
        "time_fs".to_string(),
        Json::uint(session.time().as_femtos()),
    ));
    Ok(Json::Obj(fields))
}

/// `session.poke`: drive one signal with an integer value of its width.
fn poke_session(
    session: &mut SimSession,
    signal: &str,
    value: u128,
) -> Result<Json, ProtoError> {
    let current = session.peek(signal)?;
    let width = current.as_int().map(|i| i.width()).ok_or_else(|| {
        ProtoError::new(
            ErrorKind::Protocol,
            format!(
                "signal {:?} holds {} — only integer signals can be poked over the wire",
                signal, current
            ),
        )
    })?;
    let fits = value <= u64::MAX as u128 && (width >= 64 || value < (1u128 << width));
    if !fits {
        return Err(ProtoError::new(
            ErrorKind::Protocol,
            format!("value {} does not fit signal {:?} (i{})", value, signal, width),
        ));
    }
    session.poke(signal, ConstValue::int(width, value as u64))?;
    Ok(Json::obj([
        ("signal", Json::str(signal)),
        ("poked", Json::Bool(true)),
    ]))
}

/// `session.checkpoint`: serialize the full engine state for the wire.
fn checkpoint_session(session: &SimSession) -> Result<Json, ProtoError> {
    let snapshot = session.checkpoint()?;
    let bytes = snapshot.as_bytes();
    Ok(Json::obj([
        ("engine", Json::str(session.engine_name())),
        ("bytes", Json::uint(bytes.len() as u128)),
        ("state", Json::str(hex_encode(bytes))),
    ]))
}

/// `session.query`: structural queries against the elaborated design.
fn run_query(
    session: &SimSession,
    index: &DesignQuery,
    query: &QueryKind,
) -> Result<Json, ProtoError> {
    let instance_kind = |kind: InstanceKind| match kind {
        InstanceKind::Process => "process",
        InstanceKind::Entity => "entity",
    };
    let path_of = |iid: InstanceId| {
        index
            .hierarchy()
            .iter()
            .find(|node| node.instance == iid)
            .map(|node| node.path.clone())
            .unwrap_or_else(|| format!("#{}", iid.0))
    };
    match query {
        QueryKind::Hierarchy => Ok(Json::obj([(
            "hierarchy",
            Json::Arr(
                index
                    .hierarchy()
                    .iter()
                    .map(|node| {
                        Json::obj([
                            ("instance", Json::uint(node.instance.0 as u128)),
                            ("path", Json::str(node.path.clone())),
                            ("kind", Json::str(instance_kind(node.kind))),
                            ("unit", Json::str(node.unit.clone())),
                            ("depth", Json::uint(node.depth as u128)),
                        ])
                    })
                    .collect(),
            ),
        )])),
        QueryKind::Drivers(signal) | QueryKind::Watchers(signal) => {
            let sig = session.signal(signal)?;
            let (field, instances) = match query {
                QueryKind::Drivers(_) => ("drivers", index.drivers_of(sig)),
                _ => ("watchers", index.watchers_of(sig)),
            };
            Ok(Json::obj([
                ("signal", Json::str(signal.clone())),
                (
                    field,
                    Json::Arr(
                        instances
                            .iter()
                            .map(|&iid| {
                                Json::obj([
                                    ("instance", Json::uint(iid.0 as u128)),
                                    ("path", Json::str(path_of(iid))),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        QueryKind::UnitStats => Ok(Json::obj([
            ("engine", Json::str(session.engine_name())),
            (
                "units",
                Json::Arr(
                    session
                        .unit_stats()
                        .iter()
                        .map(|unit| {
                            Json::obj([
                                ("name", Json::str(unit.name.clone())),
                                ("kind", Json::str(unit.kind)),
                                ("base_ops", Json::uint(unit.base_ops as u128)),
                                ("superops", Json::uint(unit.superops as u128)),
                                ("instances", Json::uint(unit.instances as u128)),
                                (
                                    "specialized_instances",
                                    Json::uint(unit.specialized_instances as u128),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])),
    }
}

/// Execute one micro-batch and deliver the replies.
fn run_micro_batch(state: &ServerState, batch: Vec<PendingJob>) {
    state.inflight.fetch_add(batch.len(), Ordering::Relaxed);
    let jobs: Vec<BatchJob> = batch
        .iter()
        .map(|job| BatchJob {
            module: &job.module,
            top: &job.top,
            engine: job.engine,
            config: job.config.clone(),
            cache_key: Some(job.key),
        })
        .collect();
    let results = SimSession::run_batch(&jobs, Some(&state.cache));
    state.inflight.fetch_sub(batch.len(), Ordering::Relaxed);
    for (job, result) in batch.iter().zip(results) {
        if matches!(result, Err(llhd_sim::api::Error::Panic(_))) {
            state.note_panic();
        }
        // A dropped receiver (client went away mid-run) is fine.
        let _ = job.reply.send(result);
    }
}

/// Serve one connection: read request lines, write response lines. Reads
/// that time out re-check the shutdown flag, so idle TCP connections
/// unblock during shutdown. An oversized line costs a `protocol` error
/// response, and a panicking handler an `internal_error` — the
/// connection itself survives both.
fn handle_connection(
    state: &Arc<ServerState>,
    reader: impl Read,
    mut writer: impl Write,
) -> io::Result<()> {
    let mut lines = LineReader::new(reader);
    loop {
        let line = match lines.next_line() {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.shutting_down() {
                    return Ok(());
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized line: the reader has switched to discarding
                // its tail, so answer and keep serving this connection.
                let error = ProtoError::new(ErrorKind::Protocol, e.to_string());
                writeln!(writer, "{}", error_response(None, &error))?;
                writer.flush()?;
                continue;
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, close) =
            match catch_unwind(AssertUnwindSafe(|| state.handle_line(&line))) {
                Ok(handled) => handled,
                Err(payload) => {
                    state.note_panic();
                    // Salvage the request id so the client can correlate
                    // the failure, even though its handler died.
                    let id = Json::parse(&line).ok().and_then(|v| request_id(&v));
                    let error = ProtoError::new(
                        ErrorKind::Internal,
                        format!("request handler panicked: {}", panic_message(&*payload)),
                    );
                    (error_response(id, &error), false)
                }
            };
        writeln!(writer, "{}", response)?;
        writer.flush()?;
        if close {
            return Ok(());
        }
    }
}

/// One TCP connection's read side, optionally wrapped in the fault
/// plan's faulty reader (`io.read` sites) when the chaos harness is
/// armed.
fn serve_one(state: &Arc<ServerState>, stream: &TcpStream) {
    #[cfg(feature = "fault-injection")]
    if let Some(plan) = state.fault.clone() {
        let reader = crate::fault::FaultyReader::new(stream, plan);
        let _ = handle_connection(state, reader, stream);
        return;
    }
    let _ = handle_connection(state, stream, stream);
}

/// A persistent simulation server. Construct with [`Server::new`], then
/// run it over [stdio](Server::serve_stdio) or [TCP](Server::serve_tcp)
/// (or in the background with [`Server::spawn_tcp`]).
pub struct Server {
    state: Arc<ServerState>,
    stats_interval: Option<Duration>,
}

impl Server {
    /// Create a server (and register the blaze compile backend, so
    /// `"engine":"compile"` and the `auto` heuristic work).
    pub fn new(config: ServerConfig) -> Server {
        llhd_blaze::register();
        Server {
            state: Arc::new(ServerState::new(&config)),
            stats_interval: config.stats_interval,
        }
    }

    /// The shared state (cache counters etc.), usable while the server
    /// runs on another thread.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    fn spawn_dispatcher(&self) -> JoinHandle<()> {
        let state = self.state();
        std::thread::spawn(move || dispatch_loop(state))
    }

    fn spawn_stats_logger(&self) -> Option<JoinHandle<()>> {
        let interval = self.stats_interval?;
        let state = self.state();
        Some(std::thread::spawn(move || {
            let mut since_log = Duration::ZERO;
            while !state.shutting_down() {
                std::thread::sleep(READ_TICK);
                since_log += READ_TICK;
                if since_log >= interval {
                    since_log = Duration::ZERO;
                    eprintln!("{}", state.stats_line());
                }
            }
        }))
    }

    /// Serve a single session over stdin/stdout (responses on stdout, the
    /// periodic stats line on stderr). Returns after EOF or a `shutdown`
    /// request, once in-flight work has drained.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures on the stdio streams.
    pub fn serve_stdio(self) -> io::Result<()> {
        let dispatcher = self.spawn_dispatcher();
        let logger = self.spawn_stats_logger();
        let result = handle_connection(&self.state, io::stdin().lock(), io::stdout().lock());
        self.state.begin_shutdown();
        let _ = dispatcher.join();
        if let Some(logger) = logger {
            let _ = logger.join();
        }
        result
    }

    /// Serve TCP connections on `listener`, one thread per connection,
    /// until a `shutdown` request arrives; drains in-flight work before
    /// returning.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn serve_tcp(self, listener: TcpListener) -> io::Result<()> {
        *plock(&self.state.wake_addr) = Some(listener.local_addr()?);
        let dispatcher = self.spawn_dispatcher();
        let logger = self.spawn_stats_logger();
        let mut connections = Vec::new();
        for stream in listener.incoming() {
            if self.state.shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.state.begin_shutdown();
                    let _ = dispatcher.join();
                    return Err(e);
                }
            };
            stream.set_read_timeout(Some(READ_TICK))?;
            // One-line request/response round trips: Nagle's algorithm
            // would add artificial latency to every response.
            let _ = stream.set_nodelay(true);
            let state = self.state();
            connections.push(std::thread::spawn(move || serve_one(&state, &stream)));
        }
        // Drain: connections first (they may still be waiting on replies,
        // which need the dispatcher alive), then the dispatcher.
        for connection in connections {
            let _ = connection.join();
        }
        self.state.queue_cv.notify_all();
        let _ = dispatcher.join();
        if let Some(logger) = logger {
            let _ = logger.join();
        }
        Ok(())
    }

    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// it on a background thread. The handle exposes the bound address,
    /// the shared state, and a join for the serving thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_tcp(config: ServerConfig, addr: &str) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let server = Server::new(config);
        let state = server.state();
        let thread = std::thread::spawn(move || server.serve_tcp(listener));
        Ok(RunningServer {
            addr: local,
            state,
            thread,
        })
    }
}

/// A server running on a background thread (see [`Server::spawn_tcp`]).
pub struct RunningServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared server state (cache counters etc.).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Wait for the serving thread to finish (it finishes after a
    /// `shutdown` request has drained).
    ///
    /// # Errors
    ///
    /// Propagates the serving thread's I/O error, if any.
    pub fn join(self) -> io::Result<()> {
        self.thread.join().unwrap_or_else(|payload| {
            Err(io::Error::other(format!(
                "server thread panicked: {}",
                panic_message(&*payload)
            )))
        })
    }
}

/// A minimal blocking client for the wire protocol: one request out, one
/// response in. Used by the tests, the benchmark, and
/// `examples/server_client.rs`; real clients in any language follow the
/// same shape (`docs/PROTOCOL.md`).
pub struct Client {
    writer: TcpStream,
    lines: LineReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // Requests are single small lines; don't let Nagle batch them.
        let _ = writer.set_nodelay(true);
        let reader = writer.try_clone()?;
        Ok(Client {
            writer,
            lines: LineReader::new(reader),
        })
    }

    /// Send one request (serialized compactly onto one line) and block
    /// for the one response line.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` if the response is not JSON.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        writeln!(self.writer, "{}", request)?;
        self.writer.flush()?;
        match self.lines.next_line()? {
            Some(line) => Json::parse(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }
}
