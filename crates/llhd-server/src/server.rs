//! The server runtime: shared state, the dispatcher that fans requests
//! across [`SimSession::run_batch`], connection handling over TCP and
//! stdio, and graceful shutdown.
//!
//! # Architecture
//!
//! ```text
//!  TCP clients ──► connection threads ─┐
//!                                      ├─► request queue ─► dispatcher ─► SimSession::run_batch
//!  stdio client ─► connection loop  ───┘        ▲                              │
//!                                               └── replies (mpsc) ◄───────────┘
//!                                    shared: DesignCache + module registry
//! ```
//!
//! Each connection is read line by line; simulation jobs are pushed onto
//! one shared queue and the dispatcher drains it in *micro-batches*: all
//! jobs pending at that moment become one [`SimSession::run_batch`] call
//! (one worker thread per core), executing against the server's one
//! [`DesignCache`]. Concurrent requests for the same design therefore
//! elaborate and compile exactly once (the cache's per-key locking), and
//! repeat requests are served from the warmed cache — an engine over a
//! cached compiled design costs a reference-count bump plus a register
//! file clone.
//!
//! Shutdown is graceful by construction: the `shutdown` flag and the job
//! queue share one lock, so every job either (a) was enqueued before
//! shutdown began and will be executed and answered, or (b) is rejected
//! with an error of kind `shutdown`. The dispatcher exits only once the
//! flag is set *and* the queue is empty.

use crate::json::Json;
use crate::protocol::{
    error_response, ok_response, request_id, sim_result_json, stats_json, ErrorKind, ProtoError,
    Request, SimJobSpec,
};
use llhd::assembly::parse_module;
use llhd::ir::Module;
use llhd_sim::api::{BatchJob, DesignCache, EngineKind, SimSession};
use llhd_sim::{SimConfig, SimResult};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reject lines longer than this (64 MiB): a missing newline must not
/// buffer unbounded garbage. The largest benchmark design's assembly is
/// three orders of magnitude smaller.
const MAX_LINE_BYTES: usize = 64 << 20;

/// How long a connection thread blocks in `read` before re-checking the
/// shutdown flag (TCP only; stdio cannot portably time out).
const READ_TICK: Duration = Duration::from_millis(100);

/// Server construction options.
#[derive(Clone, Debug, Default)]
pub struct ServerConfig {
    /// Bound the [`DesignCache`] (and the module registry) to this many
    /// designs, LRU-evicted beyond it. `None`: unbounded.
    pub cache_capacity: Option<usize>,
    /// Emit a stats log line to stderr at this interval. `None`: silent.
    pub stats_interval: Option<Duration>,
}

/// One queued simulation job plus its reply channel.
struct PendingJob {
    module: Arc<Module>,
    /// The module's cache fingerprint, known from the registry — passed
    /// through to `run_batch` so the hot path never re-encodes the module.
    key: u128,
    top: String,
    engine: EngineKind,
    config: SimConfig,
    reply: mpsc::Sender<Result<SimResult, llhd_sim::api::Error>>,
}

/// The job queue; `shutting_down` shares this lock so enqueue-vs-shutdown
/// is race-free (see the module docs).
#[derive(Default)]
struct Queue {
    jobs: Vec<PendingJob>,
    shutting_down: bool,
}

/// Parsed modules resident on the server, keyed by content fingerprint,
/// so `design`-keyed requests can re-run (and even re-elaborate after a
/// cache eviction) without resending source. Bounded like the cache.
#[derive(Default)]
struct Registry {
    modules: HashMap<u128, (Arc<Module>, u64)>,
    tick: u64,
    capacity: Option<usize>,
}

impl Registry {
    fn insert(&mut self, key: u128, module: Arc<Module>) {
        self.tick += 1;
        let tick = self.tick;
        self.modules.insert(key, (module, tick));
        // Same capacity convention as `DesignCache`: `None`/`Some(0)` is
        // unbounded — the registry and the cache must agree on which
        // designs stay resident.
        let capacity = match self.capacity {
            Some(capacity) if capacity > 0 => capacity,
            _ => return,
        };
        while self.modules.len() > capacity {
            let coldest = self
                .modules
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(&key, _)| key);
            match coldest {
                Some(key) => {
                    self.modules.remove(&key);
                }
                None => break,
            }
        }
    }

    fn get(&mut self, key: u128) -> Option<Arc<Module>> {
        self.tick += 1;
        let tick = self.tick;
        self.modules.get_mut(&key).map(|(module, used)| {
            *used = tick;
            Arc::clone(module)
        })
    }

    fn remove(&mut self, key: u128) {
        self.modules.remove(&key);
    }
}

/// Shared state of one running server: the design cache, the module
/// registry, the job queue, and the counters behind the `stats` endpoint.
pub struct ServerState {
    cache: DesignCache,
    registry: Mutex<Registry>,
    queue: Mutex<Queue>,
    queue_cv: Condvar,
    /// Mirror of `Queue::shutting_down` for lock-free reads on hot paths.
    shutdown_flag: AtomicBool,
    /// Where a shutdown must connect to unblock the TCP accept loop.
    wake_addr: Mutex<Option<SocketAddr>>,
    started: Instant,
    /// Simulation jobs accepted (batch jobs count individually).
    requests: AtomicUsize,
}

impl ServerState {
    fn new(config: &ServerConfig) -> Self {
        let cache = DesignCache::new();
        cache.set_capacity(config.cache_capacity);
        ServerState {
            cache,
            registry: Mutex::new(Registry {
                capacity: config.cache_capacity,
                ..Registry::default()
            }),
            queue: Mutex::default(),
            queue_cv: Condvar::new(),
            shutdown_flag: AtomicBool::new(false),
            wake_addr: Mutex::new(None),
            started: Instant::now(),
            requests: AtomicUsize::new(0),
        }
    }

    /// The shared design cache (exposed for tests and benchmarks).
    pub fn cache(&self) -> &DesignCache {
        &self.cache
    }

    /// Whether shutdown has begun.
    pub fn shutting_down(&self) -> bool {
        self.shutdown_flag.load(Ordering::Relaxed)
    }

    /// Begin graceful shutdown: stop taking new jobs, let the dispatcher
    /// drain the queue, and unblock the accept loop.
    pub fn begin_shutdown(&self) {
        {
            let mut queue = self.queue.lock().unwrap();
            queue.shutting_down = true;
            self.shutdown_flag.store(true, Ordering::Relaxed);
            self.queue_cv.notify_all();
        }
        // Unblock the accept loop with one throwaway connection.
        let addr = *self.wake_addr.lock().unwrap();
        if let Some(addr) = addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    /// Enqueue jobs for the dispatcher as one group (one lock acquisition,
    /// so they land in the same micro-batch). Refused once shutdown has
    /// begun — the refusal and the dispatcher's drain share the queue
    /// lock, so no job can slip into the gap and hang unanswered.
    fn submit(&self, jobs: Vec<PendingJob>) -> Result<(), ProtoError> {
        let mut queue = self.queue.lock().unwrap();
        if queue.shutting_down {
            return Err(ProtoError::new(
                ErrorKind::Shutdown,
                "server is shutting down; no new simulations are accepted",
            ));
        }
        queue.jobs.extend(jobs);
        self.queue_cv.notify_all();
        Ok(())
    }

    /// Resolve a job's design reference to a resident module + key:
    /// inline source is parsed and registered, a key must be resident.
    fn resolve_module(&self, spec: &SimJobSpec) -> Result<(Arc<Module>, u128), ProtoError> {
        if let Some(source) = &spec.source {
            let module = Arc::new(parse_module(source).map_err(|e| {
                ProtoError::new(ErrorKind::Source, format!("invalid LLHD assembly: {}", e))
            })?);
            let key = DesignCache::fingerprint(&module);
            self.registry.lock().unwrap().insert(key, Arc::clone(&module));
            return Ok((module, key));
        }
        let text = spec.design.as_deref().expect("parser requires source or design");
        let key = u128::from_str_radix(text, 16).map_err(|_| {
            ProtoError::new(
                ErrorKind::Protocol,
                format!("\"design\" must be a hex key, got {:?}", text),
            )
        })?;
        match self.registry.lock().unwrap().get(key) {
            Some(module) => Ok((module, key)),
            None => Err(ProtoError::new(
                ErrorKind::UnknownDesign,
                format!("design {:032x} is not resident (evicted or never submitted); resend its source", key),
            )),
        }
    }

    /// Execute one group of jobs (a `sim` request is a group of one) and
    /// render each job's response payload.
    fn run_jobs(&self, specs: &[SimJobSpec]) -> Result<Vec<Result<Json, ProtoError>>, ProtoError> {
        let mut pending = Vec::with_capacity(specs.len());
        let mut meta = Vec::with_capacity(specs.len());
        for spec in specs {
            let (module, key) = match self.resolve_module(spec) {
                Ok(resolved) => resolved,
                Err(e) => {
                    // A bad design reference fails only its own job; in a
                    // batch the other jobs still run.
                    meta.push(Err(e));
                    continue;
                }
            };
            let (tx, rx) = mpsc::channel();
            meta.push(Ok((key, rx)));
            pending.push(PendingJob {
                module,
                key,
                top: spec.top.clone(),
                engine: spec.engine,
                config: spec.sim_config(),
                reply: tx,
            });
        }
        let submitted = pending.len();
        self.submit(pending)?;
        self.requests.fetch_add(submitted, Ordering::Relaxed);
        let mut out = Vec::with_capacity(specs.len());
        for (spec, entry) in specs.iter().zip(meta) {
            out.push(match entry {
                Err(e) => Err(e),
                Ok((key, rx)) => match rx.recv() {
                    Ok(Ok(result)) => Ok(sim_result_json(
                        &format!("{:032x}", key),
                        &spec.top,
                        spec.engine,
                        spec.trace,
                        &result,
                    )),
                    Ok(Err(e)) => {
                        // A freshly submitted source that fails to
                        // elaborate must not stay resident: it would
                        // occupy registry capacity (evicting designs the
                        // cache still serves) for a key nobody can use.
                        if spec.source.is_some()
                            && matches!(e, llhd_sim::api::Error::Elaborate(_))
                        {
                            self.registry.lock().unwrap().remove(key);
                        }
                        Err(e.into())
                    }
                    Err(_) => Err(ProtoError::new(
                        ErrorKind::Shutdown,
                        "server shut down before the job completed",
                    )),
                },
            });
        }
        Ok(out)
    }

    /// Handle one request line, returning the response and whether the
    /// connection should close afterwards (shutdown acknowledgements).
    pub fn handle_line(&self, line: &str) -> (Json, bool) {
        let value = match Json::parse(line) {
            Ok(value) => value,
            Err(message) => {
                return (
                    error_response(None, &ProtoError::new(ErrorKind::Parse, message)),
                    false,
                )
            }
        };
        let id = request_id(&value);
        let request = match Request::parse(&value) {
            Ok(request) => request,
            Err(e) => return (error_response(id, &e), false),
        };
        match request {
            Request::Ping => (
                ok_response(id, Json::obj([("pong", Json::Bool(true))])),
                false,
            ),
            Request::Stats => {
                let resident = self.registry.lock().unwrap().modules.len();
                let uptime = self.started.elapsed().as_secs();
                let requests = self.requests.load(Ordering::Relaxed);
                (
                    ok_response(
                        id,
                        stats_json(&self.cache.stats(), resident, uptime, requests),
                    ),
                    false,
                )
            }
            Request::Shutdown => {
                self.begin_shutdown();
                (
                    ok_response(id, Json::obj([("shutting_down", Json::Bool(true))])),
                    true,
                )
            }
            Request::Sim(spec) => match self.run_jobs(std::slice::from_ref(&spec)) {
                Ok(mut results) => match results.remove(0) {
                    Ok(result) => (ok_response(id, result), false),
                    Err(e) => (error_response(id, &e), false),
                },
                Err(e) => (error_response(id, &e), false),
            },
            Request::Batch(specs) => match self.run_jobs(&specs) {
                Ok(results) => {
                    let rendered: Vec<Json> = results
                        .into_iter()
                        .map(|r| match r {
                            Ok(result) => Json::obj([
                                ("ok", Json::Bool(true)),
                                ("result", result),
                            ]),
                            Err(e) => Json::obj([
                                ("ok", Json::Bool(false)),
                                (
                                    "error",
                                    Json::obj([
                                        ("kind", Json::str(e.kind.wire_name())),
                                        ("message", Json::str(e.message)),
                                    ]),
                                ),
                            ]),
                        })
                        .collect();
                    (
                        ok_response(id, Json::obj([("results", Json::Arr(rendered))])),
                        false,
                    )
                }
                Err(e) => (error_response(id, &e), false),
            },
        }
    }

    /// One human-readable observability line (the periodic server log).
    pub fn stats_line(&self) -> String {
        let stats = self.cache.stats();
        format!(
            "llhd-server: up {}s, {} jobs, cache {}{} designs (~{} KiB), elaborate {}/{} hit/miss, compile {}/{}, {} evictions",
            self.started.elapsed().as_secs(),
            self.requests.load(Ordering::Relaxed),
            stats.entries,
            stats
                .capacity
                .map(|c| format!("/{}", c))
                .unwrap_or_default(),
            stats.approx_bytes / 1024,
            stats.elaborate_hits,
            stats.elaborate_misses,
            stats.compile_hits,
            stats.compile_misses,
            stats.evictions,
        )
    }
}

/// The dispatcher: drains the queue in micro-batches and runs each batch
/// on its own thread through [`SimSession::run_batch`] with the shared
/// cache. All jobs pending at drain time execute concurrently (one
/// worker per core inside the batch), and because batches themselves run
/// detached from the drain loop, a long-running batch never blocks newer
/// short requests behind it (no head-of-line blocking across batches).
/// In-flight batch count is bounded by the number of connections — each
/// connection has at most one outstanding request.
fn dispatch_loop(state: Arc<ServerState>) {
    let mut batches: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let batch = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if !queue.jobs.is_empty() {
                    break Some(std::mem::take(&mut queue.jobs));
                }
                if queue.shutting_down {
                    break None;
                }
                queue = state.queue_cv.wait(queue).unwrap();
            }
        };
        let batch = match batch {
            Some(batch) => batch,
            None => break,
        };
        batches.retain(|handle| !handle.is_finished());
        let batch_state = Arc::clone(&state);
        batches.push(std::thread::spawn(move || {
            run_micro_batch(&batch_state, batch)
        }));
    }
    // Graceful drain: every accepted job is answered before the
    // dispatcher (and with it the server) exits.
    for handle in batches {
        let _ = handle.join();
    }
}

/// Execute one micro-batch and deliver the replies.
fn run_micro_batch(state: &ServerState, batch: Vec<PendingJob>) {
    let jobs: Vec<BatchJob> = batch
        .iter()
        .map(|job| BatchJob {
            module: &job.module,
            top: &job.top,
            engine: job.engine,
            config: job.config.clone(),
            cache_key: Some(job.key),
        })
        .collect();
    let results = SimSession::run_batch(&jobs, Some(&state.cache));
    for (job, result) in batch.iter().zip(results) {
        // A dropped receiver (client went away mid-run) is fine.
        let _ = job.reply.send(result);
    }
}

/// Incremental line reader that tolerates read timeouts (propagated to
/// the caller as `WouldBlock`/`TimedOut`, with all buffered bytes kept).
struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline, so each chunk is
    /// scanned once — a near-64-MiB line must not cost a fresh full-buffer
    /// scan per 8 KiB read.
    scanned: usize,
    eof: bool,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
            scanned: 0,
            eof: false,
        }
    }

    /// The next `\n`-terminated line (terminator stripped), `None` at EOF.
    fn next_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(offset) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let pos = self.scanned + offset;
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                self.scanned = 0;
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            self.scanned = self.buf.len();
            if self.eof {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                let line = std::mem::take(&mut self.buf);
                self.scanned = 0;
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.buf.len() > MAX_LINE_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request line exceeds the 64 MiB limit",
                ));
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Serve one connection: read request lines, write response lines. Reads
/// that time out re-check the shutdown flag, so idle TCP connections
/// unblock during shutdown.
fn handle_connection(
    state: &ServerState,
    reader: impl Read,
    mut writer: impl Write,
) -> io::Result<()> {
    let mut lines = LineReader::new(reader);
    loop {
        let line = match lines.next_line() {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.shutting_down() {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, close) = state.handle_line(&line);
        writeln!(writer, "{}", response)?;
        writer.flush()?;
        if close {
            return Ok(());
        }
    }
}

/// A persistent simulation server. Construct with [`Server::new`], then
/// run it over [stdio](Server::serve_stdio) or [TCP](Server::serve_tcp)
/// (or in the background with [`Server::spawn_tcp`]).
pub struct Server {
    state: Arc<ServerState>,
    stats_interval: Option<Duration>,
}

impl Server {
    /// Create a server (and register the blaze compile backend, so
    /// `"engine":"compile"` and the `auto` heuristic work).
    pub fn new(config: ServerConfig) -> Server {
        llhd_blaze::register();
        Server {
            state: Arc::new(ServerState::new(&config)),
            stats_interval: config.stats_interval,
        }
    }

    /// The shared state (cache counters etc.), usable while the server
    /// runs on another thread.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    fn spawn_dispatcher(&self) -> JoinHandle<()> {
        let state = self.state();
        std::thread::spawn(move || dispatch_loop(state))
    }

    fn spawn_stats_logger(&self) -> Option<JoinHandle<()>> {
        let interval = self.stats_interval?;
        let state = self.state();
        Some(std::thread::spawn(move || {
            let mut since_log = Duration::ZERO;
            while !state.shutting_down() {
                std::thread::sleep(READ_TICK);
                since_log += READ_TICK;
                if since_log >= interval {
                    since_log = Duration::ZERO;
                    eprintln!("{}", state.stats_line());
                }
            }
        }))
    }

    /// Serve a single session over stdin/stdout (responses on stdout, the
    /// periodic stats line on stderr). Returns after EOF or a `shutdown`
    /// request, once in-flight work has drained.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures on the stdio streams.
    pub fn serve_stdio(self) -> io::Result<()> {
        let dispatcher = self.spawn_dispatcher();
        let logger = self.spawn_stats_logger();
        let result = handle_connection(&self.state, io::stdin().lock(), io::stdout().lock());
        self.state.begin_shutdown();
        let _ = dispatcher.join();
        if let Some(logger) = logger {
            let _ = logger.join();
        }
        result
    }

    /// Serve TCP connections on `listener`, one thread per connection,
    /// until a `shutdown` request arrives; drains in-flight work before
    /// returning.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn serve_tcp(self, listener: TcpListener) -> io::Result<()> {
        *self.state.wake_addr.lock().unwrap() = Some(listener.local_addr()?);
        let dispatcher = self.spawn_dispatcher();
        let logger = self.spawn_stats_logger();
        let mut connections = Vec::new();
        for stream in listener.incoming() {
            if self.state.shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.state.begin_shutdown();
                    let _ = dispatcher.join();
                    return Err(e);
                }
            };
            stream.set_read_timeout(Some(READ_TICK))?;
            // One-line request/response round trips: Nagle's algorithm
            // would add artificial latency to every response.
            let _ = stream.set_nodelay(true);
            let state = self.state();
            connections.push(std::thread::spawn(move || {
                let _ = handle_connection(&state, &stream, &stream);
            }));
        }
        // Drain: connections first (they may still be waiting on replies,
        // which need the dispatcher alive), then the dispatcher.
        for connection in connections {
            let _ = connection.join();
        }
        self.state.queue_cv.notify_all();
        let _ = dispatcher.join();
        if let Some(logger) = logger {
            let _ = logger.join();
        }
        Ok(())
    }

    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// it on a background thread. The handle exposes the bound address,
    /// the shared state, and a join for the serving thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_tcp(config: ServerConfig, addr: &str) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let server = Server::new(config);
        let state = server.state();
        let thread = std::thread::spawn(move || server.serve_tcp(listener));
        Ok(RunningServer {
            addr: local,
            state,
            thread,
        })
    }
}

/// A server running on a background thread (see [`Server::spawn_tcp`]).
pub struct RunningServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    thread: JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared server state (cache counters etc.).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Wait for the serving thread to finish (it finishes after a
    /// `shutdown` request has drained).
    ///
    /// # Errors
    ///
    /// Propagates the serving thread's I/O error, if any.
    pub fn join(self) -> io::Result<()> {
        self.thread.join().unwrap_or_else(|_| {
            Err(io::Error::other("server thread panicked"))
        })
    }
}

/// A minimal blocking client for the wire protocol: one request out, one
/// response in. Used by the tests, the benchmark, and
/// `examples/server_client.rs`; real clients in any language follow the
/// same shape (`docs/PROTOCOL.md`).
pub struct Client {
    writer: TcpStream,
    lines: LineReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // Requests are single small lines; don't let Nagle batch them.
        let _ = writer.set_nodelay(true);
        let reader = writer.try_clone()?;
        Ok(Client {
            writer,
            lines: LineReader::new(reader),
        })
    }

    /// Send one request (serialized compactly onto one line) and block
    /// for the one response line.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` if the response is not JSON.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        writeln!(self.writer, "{}", request)?;
        self.writer.flush()?;
        match self.lines.next_line()? {
            Some(line) => Json::parse(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }
}
