//! Client-side retry over the protocol's `retryable` error bit: capped
//! exponential backoff seeded by the server's own `retry_after_ms` hint.
//!
//! Every error response carries `retryable` (see `docs/PROTOCOL.md`):
//! `overloaded` and `shutdown` failures are transient — the same request
//! resent later (or to another worker in a fleet) can succeed — while
//! everything else would fail identically forever. This module is the
//! one shared honoring of that contract, used by
//! `examples/server_client.rs`, the tests, and the `llhd-router` fleet
//! tier's retry-on-next-candidate placement.

use crate::json::Json;
use crate::server::Client;
use std::io;
use std::time::Duration;

/// The ceiling on any single backoff sleep. The server's
/// `retry_after_ms` hint is itself clamped to one second; capping lower
/// here keeps interactive clients responsive under sustained overload.
pub const BACKOFF_CAP: Duration = Duration::from_millis(500);

/// The first backoff sleep when the server sent no hint.
pub const BACKOFF_FLOOR: Duration = Duration::from_millis(10);

/// Whether a response is a failure the sender may retry (`error.retryable`
/// is `true`). Successes and non-retryable errors return `false`.
pub fn is_retryable(response: &Json) -> bool {
    response.get("error").and_then(|e| e.get("retryable")) == Some(&Json::Bool(true))
}

/// The server's `retry_after_ms` backoff hint, when the error carries one.
pub fn retry_after(response: &Json) -> Option<Duration> {
    response
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .and_then(Json::as_int)
        .map(|ms| Duration::from_millis(ms.clamp(0, 60_000) as u64))
}

/// Capped exponential backoff: starts at [`BACKOFF_FLOOR`], doubles per
/// failure, never exceeds [`BACKOFF_CAP`]. A server hint overrides the
/// schedule for that one sleep (still capped) without resetting it.
#[derive(Clone, Debug)]
pub struct Backoff {
    next: Duration,
}

impl Backoff {
    /// A fresh schedule at the floor.
    pub fn new() -> Backoff {
        Backoff { next: BACKOFF_FLOOR }
    }

    /// The sleep for the next retry: the server's hint when given,
    /// otherwise the schedule's current value; either way the schedule
    /// advances (doubles, capped).
    pub fn delay(&mut self, hint: Option<Duration>) -> Duration {
        let wait = hint.unwrap_or(self.next).min(BACKOFF_CAP);
        self.next = (self.next * 2).min(BACKOFF_CAP);
        wait
    }
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::new()
    }
}

/// Send one request, retrying retryable failures up to `attempts` total
/// tries with [`Backoff`] sleeps between them. Successes, non-retryable
/// errors, and the final attempt's response return as-is — retrying a
/// `source` error would just fail identically forever.
///
/// # Errors
///
/// Propagates transport failures from [`Client::request`] immediately
/// (a broken connection is not cured by resending on it).
pub fn request_with_retry(
    client: &mut Client,
    request: &Json,
    attempts: u32,
) -> io::Result<Json> {
    let mut backoff = Backoff::new();
    let mut attempt = 1;
    loop {
        let response = client.request(request)?;
        if !is_retryable(&response) || attempt >= attempts {
            return Ok(response);
        }
        std::thread::sleep(backoff.delay(retry_after(&response)));
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn error_response(fields: &[(&str, Json)]) -> Json {
        let body: Vec<(String, Json)> =
            fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect();
        Json::obj([("ok", Json::Bool(false)), ("error", Json::Obj(body))])
    }

    #[test]
    fn classifies_retryability() {
        assert!(is_retryable(&error_response(&[("retryable", Json::Bool(true))])));
        assert!(!is_retryable(&error_response(&[("retryable", Json::Bool(false))])));
        assert!(!is_retryable(&error_response(&[])));
        assert!(!is_retryable(&Json::obj([("ok", Json::Bool(true))])));
    }

    #[test]
    fn reads_the_server_hint() {
        let hinted = error_response(&[("retry_after_ms", Json::Int(120))]);
        assert_eq!(retry_after(&hinted), Some(Duration::from_millis(120)));
        assert_eq!(retry_after(&error_response(&[])), None);
        // A hostile hint cannot park the client for hours.
        let huge = error_response(&[("retry_after_ms", Json::Int(i128::MAX))]);
        assert_eq!(retry_after(&huge), Some(Duration::from_secs(60)));
    }

    #[test]
    fn backoff_doubles_to_the_cap_and_hints_override() {
        let mut backoff = Backoff::new();
        assert_eq!(backoff.delay(None), Duration::from_millis(10));
        assert_eq!(backoff.delay(None), Duration::from_millis(20));
        // A hint overrides this sleep but the schedule keeps advancing.
        assert_eq!(backoff.delay(Some(Duration::from_millis(5))), Duration::from_millis(5));
        assert_eq!(backoff.delay(None), Duration::from_millis(80));
        for _ in 0..10 {
            assert!(backoff.delay(None) <= BACKOFF_CAP);
        }
        // An over-cap hint is capped too.
        let mut fresh = Backoff::new();
        assert_eq!(fresh.delay(Some(Duration::from_secs(30))), BACKOFF_CAP);
    }
}
