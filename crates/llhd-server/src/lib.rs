//! # llhd-server — a persistent simulation server
//!
//! The ROADMAP's scale-out story: instead of paying elaboration and
//! ahead-of-time compilation per `cargo run`, a long-running process
//! holds one warmed [`DesignCache`](llhd_sim::api::DesignCache) and
//! answers simulation requests over a line-delimited JSON protocol —
//! on TCP (many concurrent clients) or stdio (one pipeline). Repeat
//! requests for a resident design skip parsing, elaboration, *and*
//! compilation: engine instantiation over a cached design is a
//! reference-count bump plus a register-file clone.
//!
//! The protocol is specified in `docs/PROTOCOL.md` (version:
//! [`protocol::PROTOCOL_VERSION`]); where the server sits in the overall
//! system is drawn in `ARCHITECTURE.md`. Quick taste — one request and
//! response per line:
//!
//! ```text
//! → {"type":"sim","source":"proc @blink ...","top":"blink","until_ns":100}
//! ← {"v":1,"ok":true,"result":{"design":"29c1…","engine":"auto","end_time_fs":100000000,…}}
//! → {"type":"sim","design":"29c1…","top":"blink","until_ns":200}
//! ← {"v":1,"ok":true,"result":{…}}                  (no re-parse, no re-compile)
//! → {"type":"stats"}
//! ← {"v":1,"ok":true,"result":{"cache":{"elaborate_hits":1,…}}}
//! ```
//!
//! In-process use (what the tests and the `server/throughput` benchmark
//! do) spawns the server on an ephemeral port and talks to it through
//! [`Client`]:
//!
//! ```
//! use llhd_server::{json::Json, Client, Server, ServerConfig};
//!
//! let running = Server::spawn_tcp(ServerConfig::default(), "127.0.0.1:0").unwrap();
//! let mut client = Client::connect(running.addr()).unwrap();
//! let pong = client.request(&Json::parse(r#"{"type":"ping"}"#).unwrap()).unwrap();
//! assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
//! client.request(&Json::parse(r#"{"type":"shutdown"}"#).unwrap()).unwrap();
//! running.join().unwrap();
//! ```

#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod json;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod wire;

pub use protocol::{ErrorKind, ProtoError, Request, SimJobSpec, TraceMode, PROTOCOL_VERSION};
pub use server::{Client, RunningServer, Server, ServerConfig, ServerState};
pub use wire::{LineReader, MAX_LINE_BYTES};
