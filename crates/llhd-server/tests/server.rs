//! Integration tests of the persistent simulation server: protocol round
//! trips over real TCP, cache sharing across concurrent clients,
//! malformed-input robustness, bounded-cache behaviour, and graceful
//! shutdown draining in-flight work.

use llhd_server::json::Json;
use llhd_server::{Client, Server, ServerConfig};
use llhd_sim::api::{EngineKind, SimSession};
use llhd_sim::SimConfig;
use std::time::Duration;

const BLINK: &str = r#"
proc @blink () -> (i1$ %led) {
entry:
    %on = const i1 1
    %off = const i1 0
    %delay = const time 5ns
    drv i1$ %led, %on after %delay
    wait %next for %delay
next:
    drv i1$ %led, %off after %delay
    wait %entry for %delay
}
"#;

fn spawn(config: ServerConfig) -> llhd_server::RunningServer {
    Server::spawn_tcp(config, "127.0.0.1:0").expect("bind an ephemeral port")
}

fn sim_request(fields: Vec<(&'static str, Json)>) -> Json {
    let mut all = vec![("type", Json::str("sim"))];
    all.extend(fields);
    Json::obj(all)
}

fn shutdown(client: &mut Client) {
    let ack = client
        .request(&Json::obj([("type", Json::str("shutdown"))]))
        .unwrap();
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
}

/// Pull a counter out of a `stats` response.
fn cache_counter(stats: &Json, name: &str) -> i128 {
    stats
        .get("result")
        .and_then(|r| r.get("cache"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_int)
        .unwrap_or_else(|| panic!("stats response lacks cache.{}: {}", name, stats))
}

#[test]
fn sim_round_trip_reuses_the_design_key() {
    let running = spawn(ServerConfig::default());
    let mut client = Client::connect(running.addr()).unwrap();

    // First request ships the source; the response returns the design key
    // and the run statistics of an in-process session.
    let first = client
        .request(&sim_request(vec![
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(100)),
            ("id", Json::Int(1)),
        ]))
        .unwrap();
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{}", first);
    assert_eq!(first.get("id"), Some(&Json::Int(1)));
    let result = first.get("result").unwrap();
    let key = result.get("design").and_then(Json::as_str).unwrap().to_string();
    let reference = {
        let module = llhd::assembly::parse_module(BLINK).unwrap();
        SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .config(SimConfig::until_nanos(100))
            .build()
            .unwrap()
            .run()
            .unwrap()
    };
    assert_eq!(
        result.get("end_time_fs").and_then(Json::as_int).unwrap() as u128,
        reference.end_time.as_femtos()
    );
    assert_eq!(
        result.get("signal_changes").and_then(Json::as_int).unwrap() as usize,
        reference.signal_changes
    );

    // Second request reuses the key — no source on the wire — and asks for
    // the VCD, which must match the in-process trace byte for byte.
    let second = client
        .request(&sim_request(vec![
            ("design", Json::str(key)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(100)),
            ("trace", Json::str("vcd")),
        ]))
        .unwrap();
    assert_eq!(second.get("ok"), Some(&Json::Bool(true)), "{}", second);
    let vcd = second
        .get("result")
        .and_then(|r| r.get("trace_vcd"))
        .and_then(Json::as_str)
        .unwrap();
    assert_eq!(vcd, reference.trace.to_vcd("1fs"));

    // The repeat run was served from the warmed cache.
    let stats = client.request(&Json::obj([("type", Json::str("stats"))])).unwrap();
    assert_eq!(cache_counter(&stats, "elaborate_hits"), 1);
    assert_eq!(cache_counter(&stats, "elaborate_misses"), 1);
    shutdown(&mut client);
    running.join().unwrap();
}

#[test]
fn a_real_design_round_trips_through_the_compiled_engine() {
    // One of the paper's benchmark designs, shipped as assembly text (what
    // a real client would send), run on the compiled engine.
    let design = llhd_designs::all_designs()
        .into_iter()
        .find(|d| d.name == "RR Arbiter")
        .expect("benchmark design exists");
    let module = design.build().unwrap();
    let source = llhd::assembly::write_module(&module);
    let until = design.sim_time_ns(20);

    let running = spawn(ServerConfig::default());
    let mut client = Client::connect(running.addr()).unwrap();
    let response = client
        .request(&sim_request(vec![
            ("source", Json::str(source)),
            ("top", Json::str(design.top)),
            ("engine", Json::str("compile")),
            ("until_ns", Json::uint(until)),
        ]))
        .unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{}", response);

    llhd_blaze::register();
    let reference = SimSession::builder(&module, design.top)
        .engine(EngineKind::Compile)
        .config(SimConfig::until_nanos(until).without_trace())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let result = response.get("result").unwrap();
    assert_eq!(
        result.get("signal_changes").and_then(Json::as_int).unwrap() as usize,
        reference.signal_changes
    );
    assert_eq!(result.get("engine").and_then(Json::as_str), Some("compile"));
    shutdown(&mut client);
    running.join().unwrap();
}

#[test]
fn concurrent_clients_on_one_design_compile_once() {
    let running = spawn(ServerConfig::default());
    let addr = running.addr();
    // Four clients race the same design through the compiled engine; the
    // cache's per-key locking must make exactly one of them compile.
    let workers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let response = client
                    .request(&sim_request(vec![
                        ("source", Json::str(BLINK)),
                        ("top", Json::str("blink")),
                        ("engine", Json::str("compile")),
                        ("until_ns", Json::Int(50 + i)),
                    ]))
                    .unwrap();
                assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{}", response);
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = client.request(&Json::obj([("type", Json::str("stats"))])).unwrap();
    assert_eq!(cache_counter(&stats, "compile_misses"), 1, "{}", stats);
    assert_eq!(cache_counter(&stats, "compile_hits"), 3, "{}", stats);
    assert_eq!(cache_counter(&stats, "entries"), 1);
    shutdown(&mut client);
    running.join().unwrap();
}

#[test]
fn batch_requests_fan_out_and_answer_in_order() {
    let running = spawn(ServerConfig::default());
    let mut client = Client::connect(running.addr()).unwrap();
    let jobs: Vec<Json> = (1..=4)
        .map(|i| {
            Json::obj([
                ("source", Json::str(BLINK)),
                ("top", Json::str("blink")),
                ("engine", Json::str("interpret")),
                ("until_ns", Json::Int(10 * i)),
            ])
        })
        .collect();
    let response = client
        .request(&Json::obj([
            ("type", Json::str("batch")),
            ("jobs", Json::Arr(jobs)),
        ]))
        .unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{}", response);
    let results = response
        .get("result")
        .and_then(|r| r.get("results"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(results.len(), 4);
    for (i, entry) in results.iter().enumerate() {
        assert_eq!(entry.get("ok"), Some(&Json::Bool(true)));
        let end = entry
            .get("result")
            .and_then(|r| r.get("end_time_fs"))
            .and_then(Json::as_int)
            .unwrap();
        assert_eq!(end as u128, 10 * (i as u128 + 1) * 1_000_000, "job {} out of order", i);
    }
    // One design, four jobs: one elaboration, three hits.
    let stats = client.request(&Json::obj([("type", Json::str("stats"))])).unwrap();
    assert_eq!(cache_counter(&stats, "elaborate_misses"), 1);
    assert_eq!(cache_counter(&stats, "elaborate_hits"), 3);
    shutdown(&mut client);
    running.join().unwrap();
}

#[test]
fn malformed_requests_are_answered_not_fatal() {
    let running = spawn(ServerConfig::default());
    let mut client = Client::connect(running.addr()).unwrap();
    let cases: Vec<(Json, &str)> = vec![
        // Not a request object at all (valid JSON, wrong shape).
        (Json::Arr(vec![Json::Int(1)]), "protocol"),
        // Unknown type.
        (Json::obj([("type", Json::str("frobnicate"))]), "protocol"),
        // Sim without a design reference.
        (
            Json::obj([("type", Json::str("sim")), ("top", Json::str("x"))]),
            "protocol",
        ),
        // Invalid LLHD assembly.
        (
            sim_request(vec![
                ("source", Json::str("proc @broken (")),
                ("top", Json::str("broken")),
            ]),
            "source",
        ),
        // Valid source, nonexistent top unit.
        (
            sim_request(vec![
                ("source", Json::str(BLINK)),
                ("top", Json::str("nonexistent")),
            ]),
            "elaborate",
        ),
        // A design key that was never submitted.
        (
            sim_request(vec![
                ("design", Json::str("deadbeef")),
                ("top", Json::str("x")),
            ]),
            "unknown_design",
        ),
        // A design key that is not even hex.
        (
            sim_request(vec![
                ("design", Json::str("not-hex!")),
                ("top", Json::str("x")),
            ]),
            "protocol",
        ),
    ];
    for (request, kind) in cases {
        let response = client.request(&request).unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{}", response);
        assert_eq!(
            response.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some(kind),
            "{}",
            response
        );
    }
    // Raw garbage that is not JSON at all: the server answers with a parse
    // error on the same connection. (Client::request serializes valid
    // JSON, so speak the socket directly.)
    use std::io::{BufRead, BufReader, Write};
    let mut raw = std::net::TcpStream::connect(running.addr()).unwrap();
    writeln!(raw, "this is not json").unwrap();
    let mut line = String::new();
    BufReader::new(raw.try_clone().unwrap()).read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        response.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("parse")
    );
    // The server survived all of it: a normal request still works.
    let pong = client.request(&Json::obj([("type", Json::str("ping"))])).unwrap();
    assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
    shutdown(&mut client);
    running.join().unwrap();
}

#[test]
fn bounded_server_cache_evicts_and_reports() {
    let running = spawn(ServerConfig {
        cache_capacity: Some(2),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(running.addr()).unwrap();
    let mut keys = Vec::new();
    for delay in ["3ns", "7ns", "11ns"] {
        let source = BLINK.replace("5ns", delay);
        let response = client
            .request(&sim_request(vec![
                ("source", Json::str(source)),
                ("top", Json::str("blink")),
                ("engine", Json::str("interpret")),
                ("until_ns", Json::Int(50)),
            ]))
            .unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{}", response);
        keys.push(
            response
                .get("result")
                .and_then(|r| r.get("design"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        );
    }
    let stats = client.request(&Json::obj([("type", Json::str("stats"))])).unwrap();
    assert_eq!(cache_counter(&stats, "entries"), 2, "{}", stats);
    assert_eq!(cache_counter(&stats, "evictions"), 1);
    assert_eq!(cache_counter(&stats, "capacity"), 2);
    // The evicted (least recently used) design's key is gone from the
    // registry too: referring to it demands a resend of the source.
    let evicted = client
        .request(&sim_request(vec![
            ("design", Json::str(keys[0].clone())),
            ("top", Json::str("blink")),
        ]))
        .unwrap();
    assert_eq!(
        evicted.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("unknown_design"),
        "{}",
        evicted
    );
    // The hot design is still resident and served from the cache.
    let hot = client
        .request(&sim_request(vec![
            ("design", Json::str(keys[2].clone())),
            ("top", Json::str("blink")),
            ("until_ns", Json::Int(50)),
        ]))
        .unwrap();
    assert_eq!(hot.get("ok"), Some(&Json::Bool(true)), "{}", hot);
    shutdown(&mut client);
    running.join().unwrap();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let running = spawn(ServerConfig::default());
    let addr = running.addr();
    // A deliberately long simulation (a million 5 ns wakeups) on one
    // connection...
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .request(&sim_request(vec![
                ("source", Json::str(BLINK)),
                ("top", Json::str("blink")),
                ("engine", Json::str("interpret")),
                ("until_ns", Json::Int(5_000_000)),
            ]))
            .unwrap()
    });
    // ...while a second connection asks for shutdown mid-run.
    std::thread::sleep(Duration::from_millis(30));
    let mut other = Client::connect(addr).unwrap();
    let ack = other.request(&Json::obj([("type", Json::str("shutdown"))])).unwrap();
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    // The in-flight run is drained, not dropped: the first client still
    // receives its complete result.
    let response = worker.join().unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{}", response);
    let end_fs = response
        .get("result")
        .and_then(|r| r.get("end_time_fs"))
        .and_then(Json::as_int)
        .unwrap() as u128;
    assert!(
        end_fs >= 4_999_000u128 * 1_000_000,
        "run was cut short at {} fs",
        end_fs
    );
    // And the server process winds down cleanly.
    running.join().unwrap();
}

#[test]
fn a_long_request_does_not_block_a_short_one() {
    let running = spawn(ServerConfig::default());
    let addr = running.addr();
    // Client A: a long simulation (a million 5 ns wakeups, comfortably
    // hundreds of milliseconds).
    let long = std::thread::spawn(move || {
        let started = std::time::Instant::now();
        let mut client = Client::connect(addr).unwrap();
        let response = client
            .request(&sim_request(vec![
                ("source", Json::str(BLINK)),
                ("top", Json::str("blink")),
                ("engine", Json::str("interpret")),
                ("until_ns", Json::Int(5_000_000)),
            ]))
            .unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{}", response);
        started.elapsed()
    });
    // Client B: a tiny simulation submitted while A is in flight must be
    // answered long before A completes — the dispatcher must not
    // head-of-line-block short requests behind a running batch.
    std::thread::sleep(Duration::from_millis(30));
    let started = std::time::Instant::now();
    let mut client = Client::connect(addr).unwrap();
    let response = client
        .request(&sim_request(vec![
            ("source", Json::str(BLINK.replace("5ns", "9ns"))),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(50)),
        ]))
        .unwrap();
    let short_elapsed = started.elapsed();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{}", response);
    let long_elapsed = long.join().unwrap();
    assert!(
        short_elapsed < long_elapsed,
        "short request ({:?}) waited for the long one ({:?})",
        short_elapsed,
        long_elapsed
    );
    shutdown(&mut client);
    running.join().unwrap();
}

#[test]
fn requests_after_shutdown_are_refused_not_hung() {
    // Exercised at the state level (no sockets): once shutdown has begun,
    // a sim request must fail fast with the `shutdown` error kind rather
    // than queue behind a dispatcher that will never run it.
    let server = Server::new(ServerConfig::default());
    let state = server.state();
    state.begin_shutdown();
    let (response, _) = state.handle_line(
        &sim_request(vec![
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
        ])
        .to_string(),
    );
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        response.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("shutdown"),
        "{}",
        response
    );
}

/// A counter process: enough distinct state (a live variable, a resume
/// point, pending events) that a checkpoint has to carry real engine
/// state. Compiles on blaze, so both engines run it.
const COUNTER: &str = r#"
proc @counter () -> (i8$ %out) {
entry:
    %zero = const i8 0
    %i = var i8 %zero
    br %loop
loop:
    %cur = ld i8* %i
    %one = const i8 1
    %next = add i8 %cur, %one
    st i8* %i, %next
    %delay = const time 1ns
    drv i8$ %out, %next after %delay
    wait %loop for %delay
}
"#;

/// A two-level entity design for the structural queries.
const FOLLOWER: &str = r#"
entity @follower (i8$ %a) -> (i8$ %q) {
    %ap = prb i8$ %a
    %delay = const time 1ns
    drv i8$ %q, %ap after %delay
}
entity @top () -> () {
    %zero = const i8 0
    %a = sig i8 %zero
    %q = sig i8 %zero
    inst @follower (%a) -> (%q)
}
"#;

/// Send one request and require `"ok":true`, returning its `result`.
fn ok_result(client: &mut Client, fields: Vec<(&'static str, Json)>) -> Json {
    let response = client.request(&Json::obj(fields)).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{}", response);
    response.get("result").cloned().unwrap()
}

/// Send one request and require `"ok":false`, returning the error kind.
fn error_kind(client: &mut Client, fields: Vec<(&'static str, Json)>) -> String {
    let response = client.request(&Json::obj(fields)).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{}", response);
    response
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string()
}

fn session_id(result: &Json) -> String {
    result.get("session").and_then(Json::as_str).unwrap().to_string()
}

/// The acceptance path of the session family, on both engines: create,
/// step, checkpoint, *kill the session*, restore the checkpoint into a
/// brand-new session, resume — and the resumed run's final trace must be
/// byte-identical to an uninterrupted run of the same design.
#[test]
fn session_checkpoint_restore_resumes_byte_identical_over_tcp() {
    let running = spawn(ServerConfig::default());
    let mut client = Client::connect(running.addr()).unwrap();
    for engine in ["interpret", "compile"] {
        let create = |client: &mut Client| {
            ok_result(
                client,
                vec![
                    ("type", Json::str("session.create")),
                    ("source", Json::str(COUNTER)),
                    ("top", Json::str("counter")),
                    ("engine", Json::str(engine)),
                    ("until_ns", Json::Int(50)),
                    ("trace", Json::str("vcd")),
                ],
            )
        };
        // The uninterrupted reference run.
        let full = create(&mut client);
        let full_id = session_id(&full);
        let stepped = ok_result(
            &mut client,
            vec![
                ("type", Json::str("session.step")),
                ("session", Json::str(full_id.clone())),
                ("steps", Json::Int(10_000)),
            ],
        );
        assert_eq!(stepped.get("done"), Some(&Json::Bool(true)), "{}", stepped);
        let full_result = ok_result(
            &mut client,
            vec![
                ("type", Json::str("session.destroy")),
                ("session", Json::str(full_id)),
            ],
        );

        // Run five cycles, checkpoint, and kill the session outright.
        let first = create(&mut client);
        let first_id = session_id(&first);
        assert_eq!(
            first.get("engine").and_then(Json::as_str),
            Some(if engine == "compile" { "blaze" } else { "interp" }),
            "{}",
            first
        );
        ok_result(
            &mut client,
            vec![
                ("type", Json::str("session.step")),
                ("session", Json::str(first_id.clone())),
                ("steps", Json::Int(5)),
            ],
        );
        let checkpoint = ok_result(
            &mut client,
            vec![
                ("type", Json::str("session.checkpoint")),
                ("session", Json::str(first_id.clone())),
            ],
        );
        let state_hex = checkpoint.get("state").and_then(Json::as_str).unwrap().to_string();
        ok_result(
            &mut client,
            vec![
                ("type", Json::str("session.destroy")),
                ("session", Json::str(first_id.clone())),
            ],
        );
        // The killed session is gone.
        assert_eq!(
            error_kind(
                &mut client,
                vec![
                    ("type", Json::str("session.step")),
                    ("session", Json::str(first_id)),
                ],
            ),
            "unknown_session"
        );

        // Restore into a brand-new session and run out the clock.
        let restored = ok_result(
            &mut client,
            vec![
                ("type", Json::str("session.restore")),
                ("source", Json::str(COUNTER)),
                ("top", Json::str("counter")),
                ("engine", Json::str(engine)),
                ("until_ns", Json::Int(50)),
                ("trace", Json::str("vcd")),
                ("state", Json::str(state_hex)),
            ],
        );
        assert_eq!(restored.get("restored"), Some(&Json::Bool(true)), "{}", restored);
        let resumed_id = session_id(&restored);
        ok_result(
            &mut client,
            vec![
                ("type", Json::str("session.step")),
                ("session", Json::str(resumed_id.clone())),
                ("steps", Json::Int(10_000)),
            ],
        );
        let resumed_result = ok_result(
            &mut client,
            vec![
                ("type", Json::str("session.destroy")),
                ("session", Json::str(resumed_id)),
            ],
        );

        // Byte-identical resume: trace, end time, change count.
        for field in ["trace_vcd", "end_time_fs", "signal_changes", "activations"] {
            assert_eq!(
                full_result.get(field),
                resumed_result.get(field),
                "{}: {} diverged after restore",
                engine,
                field
            );
        }
        assert!(
            full_result.get("trace_vcd").and_then(Json::as_str).unwrap().contains("$timescale"),
            "the comparison must cover a real trace"
        );
    }
    shutdown(&mut client);
    running.join().unwrap();
}

/// Structural queries over a session: hierarchy, who-drives, who-watches,
/// and (on the compiled engine) per-unit superop statistics.
#[test]
fn session_queries_report_hierarchy_and_connectivity() {
    let running = spawn(ServerConfig::default());
    let mut client = Client::connect(running.addr()).unwrap();
    let created = ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.create")),
            ("source", Json::str(FOLLOWER)),
            ("top", Json::str("top")),
            ("engine", Json::str("compile")),
            ("until_ns", Json::Int(10)),
        ],
    );
    let id = session_id(&created);

    let hierarchy = ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.query")),
            ("session", Json::str(id.clone())),
            ("query", Json::str("hierarchy")),
        ],
    );
    let nodes = hierarchy.get("hierarchy").and_then(Json::as_arr).unwrap();
    assert!(!nodes.is_empty(), "{}", hierarchy);
    let paths: Vec<&str> = nodes
        .iter()
        .map(|n| n.get("path").and_then(Json::as_str).unwrap())
        .collect();
    assert!(paths.contains(&"top"), "{:?}", paths);
    assert!(paths.iter().any(|p| p.starts_with("top.")), "{:?}", paths);

    let drivers = ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.query")),
            ("session", Json::str(id.clone())),
            ("query", Json::str("drivers")),
            ("signal", Json::str("top.q")),
        ],
    );
    let driving: Vec<&str> = drivers
        .get("drivers")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|d| d.get("path").and_then(Json::as_str).unwrap())
        .collect();
    assert!(
        driving.iter().any(|p| p.starts_with("top.")),
        "the follower instance must drive top.q: {:?}",
        driving
    );

    let watchers = ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.query")),
            ("session", Json::str(id.clone())),
            ("query", Json::str("watchers")),
            ("signal", Json::str("top.a")),
        ],
    );
    assert!(
        !watchers.get("watchers").and_then(Json::as_arr).unwrap().is_empty(),
        "{}",
        watchers
    );

    let stats = ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.query")),
            ("session", Json::str(id.clone())),
            ("query", Json::str("unit_stats")),
        ],
    );
    let units = stats.get("units").and_then(Json::as_arr).unwrap();
    assert!(!units.is_empty(), "compiled sessions report unit stats: {}", stats);
    assert!(
        units.iter().any(|u| {
            u.get("superops").and_then(Json::as_int).unwrap_or(0) > 0
        }),
        "{}",
        stats
    );

    // An unknown signal in a query is the unknown_signal error kind.
    assert_eq!(
        error_kind(
            &mut client,
            vec![
                ("type", Json::str("session.query")),
                ("session", Json::str(id.clone())),
                ("query", Json::str("drivers")),
                ("signal", Json::str("top.nope")),
            ],
        ),
        "unknown_signal"
    );
    ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.destroy")),
            ("session", Json::str(id)),
        ],
    );
    shutdown(&mut client);
    running.join().unwrap();
}

/// Pokes drive the design mid-session, and peeks observe the effect.
#[test]
fn session_poke_feeds_the_running_design() {
    let running = spawn(ServerConfig::default());
    let mut client = Client::connect(running.addr()).unwrap();
    let created = ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.create")),
            ("source", Json::str(FOLLOWER)),
            ("top", Json::str("top")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(20)),
        ],
    );
    let id = session_id(&created);
    ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.poke")),
            ("session", Json::str(id.clone())),
            ("signal", Json::str("top.a")),
            ("value", Json::Int(99)),
        ],
    );
    ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.step")),
            ("session", Json::str(id.clone())),
            ("steps", Json::Int(10_000)),
        ],
    );
    let peeked = ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.peek")),
            ("session", Json::str(id.clone())),
            ("signal", Json::str("top.q")),
        ],
    );
    assert_eq!(peeked.get("value_int"), Some(&Json::Int(99)), "{}", peeked);
    // A poke value that does not fit the signal's width is rejected.
    assert_eq!(
        error_kind(
            &mut client,
            vec![
                ("type", Json::str("session.poke")),
                ("session", Json::str(id.clone())),
                ("signal", Json::str("top.a")),
                ("value", Json::Int(256)),
            ],
        ),
        "protocol"
    );
    ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.destroy")),
            ("session", Json::str(id)),
        ],
    );
    shutdown(&mut client);
    running.join().unwrap();
}

/// The session lifecycle guards: the cap refuses the N+1th session, a
/// destroyed slot is reusable, and idle sessions expire on their own.
#[test]
fn session_cap_and_idle_timeout_bound_the_table() {
    let running = spawn(ServerConfig {
        session_cap: Some(1),
        session_idle_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(running.addr()).unwrap();
    let create_fields = || {
        vec![
            ("type", Json::str("session.create")),
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(100)),
        ]
    };
    let first = ok_result(&mut client, create_fields());
    let first_id = session_id(&first);
    // The cap is 1: a second session is refused with its own error kind.
    assert_eq!(error_kind(&mut client, create_fields()), "session_limit");
    // Destroying frees the slot.
    ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.destroy")),
            ("session", Json::str(first_id)),
        ],
    );
    let second = ok_result(&mut client, create_fields());
    let second_id = session_id(&second);
    // An untouched session expires after the idle timeout, freeing the
    // slot without any client action.
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        error_kind(
            &mut client,
            vec![
                ("type", Json::str("session.step")),
                ("session", Json::str(second_id)),
            ],
        ),
        "unknown_session"
    );
    ok_result(&mut client, create_fields());
    shutdown(&mut client);
    running.join().unwrap();
}

/// The acceptance path for request deadlines: a `deadline_ms: 1` budget
/// on the RISC-V core — a simulation that takes far longer than a
/// millisecond — must come back as `deadline_exceeded` promptly, on both
/// engines, instead of hanging until the run completes.
#[test]
fn a_blown_deadline_fails_fast_on_both_engines() {
    let design = llhd_designs::all_designs()
        .into_iter()
        .find(|d| d.name == "RISC-V Core")
        .expect("benchmark design exists");
    let module = design.build().unwrap();
    let source = llhd::assembly::write_module(&module);
    // Far more cycles than a millisecond of wall clock can simulate.
    let until = design.sim_time_ns(200_000);

    let running = spawn(ServerConfig::default());
    let mut client = Client::connect(running.addr()).unwrap();
    for engine in ["interpret", "compile"] {
        let started = std::time::Instant::now();
        let response = client
            .request(&sim_request(vec![
                ("source", Json::str(source.clone())),
                ("top", Json::str(design.top)),
                ("engine", Json::str(engine)),
                ("until_ns", Json::uint(until)),
                ("deadline_ms", Json::Int(1)),
            ]))
            .unwrap();
        let elapsed = started.elapsed();
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{}", response);
        let error = response.get("error").unwrap();
        assert_eq!(
            error.get("kind").and_then(Json::as_str),
            Some("deadline_exceeded"),
            "{}: {}",
            engine,
            response
        );
        assert_eq!(error.get("retryable"), Some(&Json::Bool(false)));
        // The partial progress is reported on the error.
        assert!(error.get("end_time_fs").is_some(), "{}", response);
        // "Fast" leaves slack for elaboration/compilation of the design
        // (not covered by the between-cycles deadline checks), but a
        // hang to completion would take far longer still.
        assert!(
            elapsed < Duration::from_secs(20),
            "{}: deadline_ms=1 took {:?}",
            engine,
            elapsed
        );
    }
    // The same design without a deadline still completes: the deadline
    // machinery adds no persistent state.
    let fine = client
        .request(&sim_request(vec![
            ("source", Json::str(source.clone())),
            ("top", Json::str(design.top)),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::uint(design.sim_time_ns(20))),
        ]))
        .unwrap();
    assert_eq!(fine.get("ok"), Some(&Json::Bool(true)), "{}", fine);
    shutdown(&mut client);
    running.join().unwrap();
}

/// A blown `session.step` budget reports progress and leaves the session
/// alive and resumable — the abort lands between scheduler cycles, where
/// engine state is consistent.
#[test]
fn session_step_deadline_reports_progress_and_keeps_the_session() {
    let running = spawn(ServerConfig::default());
    let mut client = Client::connect(running.addr()).unwrap();
    let created = ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.create")),
            ("source", Json::str(COUNTER)),
            ("top", Json::str("counter")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(1_000_000_000)),
        ],
    );
    let id = session_id(&created);
    let response = client
        .request(&Json::obj([
            ("type", Json::str("session.step")),
            ("session", Json::str(id.clone())),
            ("steps", Json::Int(500_000_000)),
            ("deadline_ms", Json::Int(20)),
        ]))
        .unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{}", response);
    let error = response.get("error").unwrap();
    assert_eq!(
        error.get("kind").and_then(Json::as_str),
        Some("deadline_exceeded"),
        "{}",
        response
    );
    let taken = error
        .get("steps_taken")
        .and_then(Json::as_int)
        .unwrap_or_else(|| panic!("no steps_taken on {}", response));
    assert!(taken > 0, "some cycles must have run: {}", response);
    assert!(error.get("end_time_fs").is_some(), "{}", response);
    // The session survived the blown budget: stepping again works and
    // continues from where the abort left off.
    let resumed = ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.step")),
            ("session", Json::str(id.clone())),
            ("steps", Json::Int(5)),
        ],
    );
    assert_eq!(resumed.get("steps"), Some(&Json::Int(5)), "{}", resumed);
    ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.destroy")),
            ("session", Json::str(id)),
        ],
    );
    shutdown(&mut client);
    running.join().unwrap();
}

/// Admission control: a job group larger than the queue cap is shed as a
/// whole with a retryable `overloaded` error carrying `retry_after_ms`,
/// and the shed shows up in `stats.load`.
#[test]
fn overlarge_job_groups_are_shed_with_a_retry_hint() {
    let running = spawn(ServerConfig {
        queue_cap: Some(1),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(running.addr()).unwrap();
    let jobs: Vec<Json> = (0..3)
        .map(|_| {
            Json::obj([
                ("source", Json::str(BLINK)),
                ("top", Json::str("blink")),
                ("engine", Json::str("interpret")),
                ("until_ns", Json::Int(10)),
            ])
        })
        .collect();
    let response = client
        .request(&Json::obj([
            ("type", Json::str("batch")),
            ("jobs", Json::Arr(jobs)),
        ]))
        .unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{}", response);
    let error = response.get("error").unwrap();
    assert_eq!(
        error.get("kind").and_then(Json::as_str),
        Some("overloaded"),
        "{}",
        response
    );
    assert_eq!(error.get("retryable"), Some(&Json::Bool(true)), "{}", response);
    let hint = error
        .get("retry_after_ms")
        .and_then(Json::as_int)
        .unwrap_or_else(|| panic!("no retry_after_ms on {}", response));
    assert!(hint > 0, "{}", response);
    // The shed is counted, and a job group that fits still runs.
    let stats = client.request(&Json::obj([("type", Json::str("stats"))])).unwrap();
    let shed = stats
        .get("result")
        .and_then(|r| r.get("load"))
        .and_then(|l| l.get("shed"))
        .and_then(Json::as_int)
        .unwrap();
    assert_eq!(shed, 1, "{}", stats);
    let single = client
        .request(&sim_request(vec![
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(10)),
        ]))
        .unwrap();
    assert_eq!(single.get("ok"), Some(&Json::Bool(true)), "{}", single);
    shutdown(&mut client);
    running.join().unwrap();
}

/// The `retry_after_ms` hint scales with the queue overshoot — 10 ms per
/// excess job, clamped to [10, 1000] — so heavier overload backs clients
/// off longer while a marginal overrun retries quickly.
#[test]
fn retry_after_ms_scales_with_the_queue_overshoot() {
    let running = spawn(ServerConfig {
        queue_cap: Some(1),
        server_id: Some("overshoot-test".to_string()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(running.addr()).unwrap();
    let batch_of = |n: usize| {
        Json::obj([
            ("type", Json::str("batch")),
            (
                "jobs",
                Json::Arr(
                    (0..n)
                        .map(|_| {
                            Json::obj([
                                ("source", Json::str(BLINK)),
                                ("top", Json::str("blink")),
                                ("engine", Json::str("interpret")),
                                ("until_ns", Json::Int(10)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    };
    let hint_for = |client: &mut Client, jobs: usize| {
        let response = client.request(&batch_of(jobs)).unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{}", response);
        response
            .get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_int)
            .unwrap_or_else(|| panic!("no retry_after_ms on {}", response))
    };
    // With an empty queue and cap 1: a group of n overshoots by n - 1.
    assert_eq!(hint_for(&mut client, 3), 20);
    assert_eq!(hint_for(&mut client, 11), 100);
    // The hint is clamped at one second no matter how deep the overshoot.
    assert_eq!(hint_for(&mut client, 200), 1000);
    shutdown(&mut client);
    running.join().unwrap();
}

/// The additive identity fields: `ping` and `stats` both report the
/// configured `server_id` and a monotone `uptime_ms`, so a fleet router
/// can attribute per-worker numbers.
#[test]
fn ping_and_stats_report_server_id_and_uptime() {
    let running = spawn(ServerConfig {
        server_id: Some("w-test-1".to_string()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(running.addr()).unwrap();
    let pong = client.request(&Json::obj([("type", Json::str("ping"))])).unwrap();
    let result = pong.get("result").unwrap();
    assert_eq!(result.get("pong"), Some(&Json::Bool(true)), "{}", pong);
    assert_eq!(result.get("server_id").and_then(Json::as_str), Some("w-test-1"), "{}", pong);
    let uptime = result.get("uptime_ms").and_then(Json::as_int).unwrap();
    assert!(uptime >= 0, "{}", pong);
    let stats = client.request(&Json::obj([("type", Json::str("stats"))])).unwrap();
    let result = stats.get("result").unwrap();
    assert_eq!(result.get("server_id").and_then(Json::as_str), Some("w-test-1"), "{}", stats);
    assert!(result.get("uptime_ms").and_then(Json::as_int).unwrap() >= uptime, "{}", stats);
    shutdown(&mut client);
    running.join().unwrap();
}

/// An oversized request line (past the 64 MiB cap) is answered with a
/// `protocol` error and the connection survives to serve the next line.
#[test]
fn an_oversized_line_is_rejected_but_the_connection_survives() {
    use std::io::{BufRead, BufReader, Write};
    let running = spawn(ServerConfig::default());
    let mut raw = std::net::TcpStream::connect(running.addr()).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    // Stream just over 64 MiB without a newline: the reject must fire on
    // size alone, before any terminator arrives.
    let chunk = vec![b'x'; 1 << 20];
    for _ in 0..65 {
        raw.write_all(&chunk).unwrap();
    }
    raw.write_all(b"tail\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Json::parse(line.trim()).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{}", response);
    assert_eq!(
        response.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("protocol"),
        "{}",
        response
    );
    assert!(
        response
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap()
            .contains("64 MiB"),
        "{}",
        response
    );
    // Same connection, next line: a normal request still round-trips
    // (the reader discarded the oversized line's tail, including the
    // bytes that arrived after the error was sent).
    writeln!(raw, r#"{{"type":"ping","id":7}}"#).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let pong = Json::parse(line.trim()).unwrap();
    assert_eq!(pong.get("ok"), Some(&Json::Bool(true)), "{}", pong);
    assert_eq!(pong.get("id"), Some(&Json::Int(7)), "{}", pong);
    let mut client = Client::connect(running.addr()).unwrap();
    shutdown(&mut client);
    running.join().unwrap();
}

/// The idle-expiry race: a command that lands around the moment the
/// session expires must get a clean answer either way (`ok` or
/// `unknown_session`), and a command that is *running* when the idle
/// clock would fire keeps the session alive — busy is not idle.
#[test]
fn idle_expiry_racing_an_in_flight_command_is_clean() {
    let running = spawn(ServerConfig {
        session_idle_timeout: Some(Duration::from_millis(120)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(running.addr()).unwrap();
    let create_fields = || {
        vec![
            ("type", Json::str("session.create")),
            ("source", Json::str(COUNTER)),
            ("top", Json::str("counter")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(1_000_000_000)),
        ]
    };
    // Busy is not idle: a step that runs well past the idle timeout must
    // not expire its own session mid-command, and the session is still
    // there afterwards (the command reset the idle clock).
    let busy = ok_result(&mut client, create_fields());
    let busy_id = session_id(&busy);
    let started = std::time::Instant::now();
    let mut stepped = Json::Bool(false);
    // Keep stepping until we have provably straddled the idle window.
    while started.elapsed() < Duration::from_millis(300) {
        stepped = ok_result(
            &mut client,
            vec![
                ("type", Json::str("session.step")),
                ("session", Json::str(busy_id.clone())),
                ("steps", Json::Int(50_000)),
            ],
        );
    }
    assert!(stepped.get("steps").is_some());
    let peeked = client
        .request(&Json::obj([
            ("type", Json::str("session.peek")),
            ("session", Json::str(busy_id.clone())),
            ("signal", Json::str("counter.out")),
        ]))
        .unwrap();
    assert_eq!(
        peeked.get("ok"),
        Some(&Json::Bool(true)),
        "an active session expired mid-use: {}",
        peeked
    );
    ok_result(
        &mut client,
        vec![
            ("type", Json::str("session.destroy")),
            ("session", Json::str(busy_id)),
        ],
    );
    // The expiry edge: fire commands right around the idle deadline.
    // Whatever side of the race each lands on, the answer is well-formed
    // — ok, or a clean unknown_session — never a hang or a dead server.
    for wait_ms in [100u64, 115, 120, 125, 140] {
        let created = ok_result(&mut client, create_fields());
        let id = session_id(&created);
        std::thread::sleep(Duration::from_millis(wait_ms));
        let response = client
            .request(&Json::obj([
                ("type", Json::str("session.step")),
                ("session", Json::str(id.clone())),
                ("steps", Json::Int(1)),
            ]))
            .unwrap();
        match response.get("ok") {
            Some(&Json::Bool(true)) => {
                ok_result(
                    &mut client,
                    vec![
                        ("type", Json::str("session.destroy")),
                        ("session", Json::str(id)),
                    ],
                );
            }
            Some(&Json::Bool(false)) => {
                assert_eq!(
                    response.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
                    Some("unknown_session"),
                    "{}",
                    response
                );
            }
            other => panic!("malformed response ok={:?}: {}", other, response),
        }
    }
    shutdown(&mut client);
    running.join().unwrap();
}
