//! Fuzz-generated designs through the wire protocol.
//!
//! The differential fuzzer normally drives the engines in-process; this
//! test closes the remaining gap by shipping generated designs through
//! the server's JSON protocol — inline source, both engines, explicit
//! `threads` — and demanding the same cross-engine agreement at the
//! protocol surface that the in-process driver demands of the APIs: the
//! rendered VCD coming back over TCP must be byte-identical between the
//! interpreter and the compiled engine, and must match an in-process
//! reference run of the same design.

use llhd_fuzz::{case_seed, DesignPlan};
use llhd_server::json::Json;
use llhd_server::{Client, Server, ServerConfig};
use llhd_sim::api::EngineKind;
use llhd_sim::SimConfig;

fn sim_request(fields: Vec<(&'static str, Json)>) -> Json {
    let mut all = vec![("type", Json::str("sim"))];
    all.extend(fields);
    Json::obj(all)
}

fn vcd_of(response: &Json) -> &str {
    assert_eq!(
        response.get("ok"),
        Some(&Json::Bool(true)),
        "request failed: {}",
        response
    );
    response
        .get("result")
        .and_then(|r| r.get("trace_vcd"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response lacks result.trace_vcd: {}", response))
}

/// Generated designs, inline source, both engines, several thread
/// counts: every combination must return the byte-identical VCD, and it
/// must equal the in-process reference.
#[test]
fn generated_designs_return_identical_vcd_across_engines_and_threads() {
    let running = Server::spawn_tcp(ServerConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(running.addr()).unwrap();

    // A few distinct generated topologies (the seeds are arbitrary but
    // fixed: nested, racing, and multi-cluster shapes all appear).
    for case in 0..4u64 {
        let seed = case_seed(0x517e, case);
        let plan = DesignPlan::generate(seed);
        let (design, module) = plan.build().unwrap();

        // In-process reference: interpreter, serial.
        let reference = llhd_blaze::session(&module, &design.top)
            .engine(EngineKind::Interpret)
            .config(SimConfig::until_nanos(design.until_ns))
            .build()
            .unwrap()
            .run()
            .unwrap()
            .trace
            .to_vcd("1fs");

        let mut wire_vcds = Vec::new();
        for engine in ["interpret", "compile"] {
            for threads in [1i128, 2, 4] {
                let response = client
                    .request(&sim_request(vec![
                        ("source", Json::str(&design.source)),
                        ("top", Json::str(&design.top)),
                        ("engine", Json::str(engine)),
                        ("threads", Json::Int(threads)),
                        ("until_ns", Json::Int(design.until_ns as i128)),
                        ("trace", Json::str("vcd")),
                        ("id", Json::Int(case as i128)),
                    ]))
                    .unwrap();
                wire_vcds.push((engine, threads, vcd_of(&response).to_string()));
            }
        }
        for (engine, threads, vcd) in &wire_vcds {
            assert_eq!(
                vcd, &reference,
                "seed {seed:#018x}: wire VCD ({engine}, t{threads}) != in-process reference",
            );
        }
    }

    let ack = client
        .request(&Json::obj([("type", Json::str("shutdown"))]))
        .unwrap();
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    running.join().unwrap();
}
