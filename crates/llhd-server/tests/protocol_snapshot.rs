//! The committed protocol contract: one exemplar of every request and
//! response shape of protocol v1, round-tripped through a real server and
//! compared byte-for-byte against `tests/snapshots/protocol_v1.txt`.
//!
//! Any wire-visible change — a renamed field, a reordered envelope, a new
//! error kind in an existing flow — fails this test and forces a
//! deliberate snapshot update (and, if the change is not purely additive,
//! a `PROTOCOL_VERSION` bump per the rule in `docs/PROTOCOL.md`).
//!
//! To update after an intentional change:
//!
//! ```text
//! LLHD_UPDATE_SNAPSHOTS=1 cargo test -p llhd-server --test protocol_snapshot
//! ```

use llhd_server::json::Json;
use llhd_server::{Client, Server, ServerConfig};

const SNAPSHOT_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/snapshots/protocol_v1.txt"
);

/// A deterministic design: every response field derived from it (key,
/// end time, change counts, VCD, checkpoint bytes) is stable.
const BLINK: &str = r#"
proc @blink () -> (i1$ %led) {
entry:
    %on = const i1 1
    %off = const i1 0
    %delay = const time 5ns
    drv i1$ %led, %on after %delay
    wait %next for %delay
next:
    drv i1$ %led, %off after %delay
    wait %entry for %delay
}
"#;

/// Wall-clock and build-dependent values have no place in a committed
/// contract: zero them, keeping the *shape* under test.
fn normalize(value: Json) -> Json {
    match value {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .map(|(key, value)| match key.as_str() {
                    "uptime_secs" | "uptime_ms" | "approx_bytes" => (key, Json::Int(0)),
                    "server_id" => (key, Json::str("<server-id>")),
                    _ => (key, normalize(value)),
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(normalize).collect()),
        other => other,
    }
}

/// Send one request, append `# label / > request / < response` to the
/// transcript, and hand the (un-normalized) response back for chaining.
fn exchange(client: &mut Client, transcript: &mut String, label: &str, request: Json) -> Json {
    let response = client.request(&request).unwrap();
    transcript.push_str(&format!(
        "# {}\n> {}\n< {}\n",
        label,
        request,
        normalize(response.clone())
    ));
    response
}

fn result_str(response: &Json, field: &str) -> String {
    response
        .get("result")
        .and_then(|r| r.get(field))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no result.{} in {}", field, response))
        .to_string()
}

#[test]
fn protocol_v1_contract_has_not_drifted() {
    let running = Server::spawn_tcp(ServerConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(running.addr()).unwrap();
    let mut transcript = String::new();
    let t = &mut transcript;

    // --- the stateless request family ---
    exchange(
        &mut client,
        t,
        "ping",
        Json::obj([("type", Json::str("ping")), ("id", Json::Int(1))]),
    );
    let sim = exchange(
        &mut client,
        t,
        "sim (inline source)",
        Json::obj([
            ("type", Json::str("sim")),
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(100)),
        ]),
    );
    let key = result_str(&sim, "design");
    exchange(
        &mut client,
        t,
        "sim (by key, with VCD trace)",
        Json::obj([
            ("type", Json::str("sim")),
            ("design", Json::str(key.clone())),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(20)),
            ("trace", Json::str("vcd")),
        ]),
    );
    exchange(
        &mut client,
        t,
        "batch (second job fails: unknown design)",
        Json::obj([
            ("type", Json::str("batch")),
            (
                "jobs",
                Json::Arr(vec![
                    Json::obj([
                        ("design", Json::str(key.clone())),
                        ("top", Json::str("blink")),
                        ("engine", Json::str("interpret")),
                        ("until_ns", Json::Int(15)),
                    ]),
                    Json::obj([
                        ("design", Json::str("00000000000000000000000000000000")),
                        ("top", Json::str("blink")),
                    ]),
                ]),
            ),
        ]),
    );
    exchange(&mut client, t, "stats", Json::obj([("type", Json::str("stats"))]));

    // --- the session request family ---
    let created = exchange(
        &mut client,
        t,
        "session.create",
        Json::obj([
            ("type", Json::str("session.create")),
            ("design", Json::str(key.clone())),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(100)),
        ]),
    );
    let session = result_str(&created, "session");
    exchange(
        &mut client,
        t,
        "session.step",
        Json::obj([
            ("type", Json::str("session.step")),
            ("session", Json::str(session.clone())),
            ("steps", Json::Int(5)),
        ]),
    );
    exchange(
        &mut client,
        t,
        "session.peek",
        Json::obj([
            ("type", Json::str("session.peek")),
            ("session", Json::str(session.clone())),
            ("signal", Json::str("blink.led")),
        ]),
    );
    exchange(
        &mut client,
        t,
        "session.poke",
        Json::obj([
            ("type", Json::str("session.poke")),
            ("session", Json::str(session.clone())),
            ("signal", Json::str("blink.led")),
            ("value", Json::Int(0)),
        ]),
    );
    exchange(
        &mut client,
        t,
        "session.query (hierarchy)",
        Json::obj([
            ("type", Json::str("session.query")),
            ("session", Json::str(session.clone())),
            ("query", Json::str("hierarchy")),
        ]),
    );
    exchange(
        &mut client,
        t,
        "session.query (drivers)",
        Json::obj([
            ("type", Json::str("session.query")),
            ("session", Json::str(session.clone())),
            ("query", Json::str("drivers")),
            ("signal", Json::str("blink.led")),
        ]),
    );
    exchange(
        &mut client,
        t,
        "session.query (watchers)",
        Json::obj([
            ("type", Json::str("session.query")),
            ("session", Json::str(session.clone())),
            ("query", Json::str("watchers")),
            ("signal", Json::str("blink.led")),
        ]),
    );
    exchange(
        &mut client,
        t,
        "session.query (unit_stats; empty for an interpreted session)",
        Json::obj([
            ("type", Json::str("session.query")),
            ("session", Json::str(session.clone())),
            ("query", Json::str("unit_stats")),
        ]),
    );
    let checkpoint = exchange(
        &mut client,
        t,
        "session.checkpoint",
        Json::obj([
            ("type", Json::str("session.checkpoint")),
            ("session", Json::str(session.clone())),
        ]),
    );
    let state_hex = result_str(&checkpoint, "state");
    exchange(
        &mut client,
        t,
        "session.destroy",
        Json::obj([
            ("type", Json::str("session.destroy")),
            ("session", Json::str(session.clone())),
        ]),
    );
    let restored = exchange(
        &mut client,
        t,
        "session.restore",
        Json::obj([
            ("type", Json::str("session.restore")),
            ("design", Json::str(key.clone())),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(100)),
            ("state", Json::str(state_hex)),
        ]),
    );
    let resumed = result_str(&restored, "session");
    exchange(
        &mut client,
        t,
        "session.destroy (restored session)",
        Json::obj([
            ("type", Json::str("session.destroy")),
            ("session", Json::str(resumed)),
        ]),
    );

    // --- the error shapes ---
    {
        // A parse failure has no JSON to echo an id from.
        use std::io::{BufRead, BufReader, Write};
        let raw = "this is not json";
        let mut stream = std::net::TcpStream::connect(running.addr()).unwrap();
        writeln!(stream, "{}", raw).unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        let response = Json::parse(line.trim()).unwrap();
        t.push_str(&format!("# error: parse\n> {}\n< {}\n", raw, response));
    }
    exchange(
        &mut client,
        t,
        "error: protocol (unknown type)",
        Json::obj([("type", Json::str("frobnicate"))]),
    );
    exchange(
        &mut client,
        t,
        "error: source",
        Json::obj([
            ("type", Json::str("sim")),
            ("source", Json::str("proc @broken")),
            ("top", Json::str("broken")),
        ]),
    );
    exchange(
        &mut client,
        t,
        "error: unknown_design",
        Json::obj([
            ("type", Json::str("sim")),
            ("design", Json::str("ffffffffffffffffffffffffffffffff")),
            ("top", Json::str("blink")),
        ]),
    );
    exchange(
        &mut client,
        t,
        "error: unknown_session",
        Json::obj([
            ("type", Json::str("session.step")),
            ("session", Json::str("s999")),
        ]),
    );
    // One throwaway session purely to address an unknown-signal peek at.
    let opened = client
        .request(&Json::obj([
            ("type", Json::str("session.create")),
            ("design", Json::str(key)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
        ]))
        .unwrap();
    let throwaway = result_str(&opened, "session");
    exchange(
        &mut client,
        t,
        "error: unknown_signal",
        Json::obj([
            ("type", Json::str("session.peek")),
            ("session", Json::str(throwaway)),
            ("signal", Json::str("blink.nope")),
        ]),
    );
    exchange(&mut client, t, "shutdown", Json::obj([("type", Json::str("shutdown"))]));
    running.join().unwrap();
    {
        // Work submitted after shutdown is refused with the `shutdown`
        // kind. Exercised at the state level (as in tests/server.rs) so
        // the exemplar does not race the closing listener.
        let server = Server::new(ServerConfig::default());
        let state = server.state();
        state.begin_shutdown();
        let request = Json::obj([
            ("type", Json::str("sim")),
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
        ]);
        let (response, _) = state.handle_line(&request.to_string());
        t.push_str(&format!("# error: shutdown\n> {}\n< {}\n", request, response));
    }

    if std::env::var_os("LLHD_UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(SNAPSHOT_PATH, &transcript).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(SNAPSHOT_PATH).unwrap_or_default();
    assert_eq!(
        committed, transcript,
        "\nthe wire protocol drifted from tests/snapshots/protocol_v1.txt.\n\
         If the change is intentional (and additive, or PROTOCOL_VERSION was bumped),\n\
         regenerate with: LLHD_UPDATE_SNAPSHOTS=1 cargo test -p llhd-server --test protocol_snapshot\n"
    );
}
