//! The chaos harness: a seeded [`FaultPlan`] injects panics, slow/short/
//! failing reads, and artificial queue pressure into a live server while
//! concurrent clients hammer it with the full request mix. The server
//! must answer every request that survives its connection with a
//! well-formed response (clean retryable errors included), never die,
//! and still serve normally once the storm has passed.
//!
//! Only compiled with the `fault-injection` feature:
//! `cargo test -p llhd-server --features fault-injection --test chaos`.
//! The seed comes from `LLHD_CHAOS_SEED` (default 3405691582) so CI runs
//! are replayable; vary the seed locally to explore other schedules.
#![cfg(feature = "fault-injection")]

use llhd_server::fault::{FaultPlan, Site};
use llhd_server::json::Json;
use llhd_server::{Client, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

const BLINK: &str = r#"
proc @blink () -> (i1$ %led) {
entry:
    %on = const i1 1
    %off = const i1 0
    %delay = const time 5ns
    drv i1$ %led, %on after %delay
    wait %next for %delay
next:
    drv i1$ %led, %off after %delay
    wait %entry for %delay
}
"#;

/// One client's tally of how its requests were answered.
#[derive(Default, Debug)]
struct Tally {
    ok: usize,
    /// Clean errors, by kind.
    internal: usize,
    overloaded: usize,
    other_errors: usize,
    /// Connections lost to injected I/O faults (client reconnected).
    reconnects: usize,
}

/// Send `request`, tolerating injected connection deaths by
/// reconnecting (a fresh attempt of the same request). Panics on a
/// malformed response — that is exactly what the test polices.
fn chaotic_request(
    client: &mut Option<Client>,
    addr: std::net::SocketAddr,
    request: &Json,
    tally: &mut Tally,
) -> Option<Json> {
    for _attempt in 0..30 {
        let live = match client.as_mut() {
            Some(live) => live,
            None => match Client::connect(addr) {
                Ok(fresh) => client.insert(fresh),
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
            },
        };
        match live.request(request) {
            Ok(response) => {
                // Every delivered response must be a well-formed v1
                // envelope; errors must carry kind, message, retryable.
                assert_eq!(response.get("v"), Some(&Json::Int(1)), "{}", response);
                match response.get("ok") {
                    Some(&Json::Bool(true)) => tally.ok += 1,
                    Some(&Json::Bool(false)) => {
                        let error = response.get("error").unwrap_or_else(|| {
                            panic!("error response without error object: {}", response)
                        });
                        let kind = error
                            .get("kind")
                            .and_then(Json::as_str)
                            .unwrap_or_else(|| panic!("error without kind: {}", response));
                        assert!(
                            error.get("message").and_then(Json::as_str).is_some(),
                            "{}",
                            response
                        );
                        let retryable = match error.get("retryable") {
                            Some(&Json::Bool(b)) => b,
                            other => panic!("retryable is {:?} in {}", other, response),
                        };
                        match kind {
                            "internal_error" => tally.internal += 1,
                            "overloaded" => {
                                assert!(retryable, "{}", response);
                                assert!(
                                    error.get("retry_after_ms").and_then(Json::as_int).is_some(),
                                    "overloaded without retry_after_ms: {}",
                                    response
                                );
                                tally.overloaded += 1;
                            }
                            _ => tally.other_errors += 1,
                        }
                    }
                    other => panic!("response ok={:?}: {}", other, response),
                }
                return Some(response);
            }
            Err(_) => {
                // The injected read fault killed this connection (or its
                // response); reconnect and retry the request.
                *client = None;
                tally.reconnects += 1;
            }
        }
    }
    None
}

#[test]
fn a_seeded_fault_storm_cannot_kill_the_server() {
    let seed = std::env::var("LLHD_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xCAFE_BABEu64);
    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_rate(Site::SimPanic, 48)
            .with_rate(Site::IoReadSlow, 12)
            .with_rate(Site::IoReadShort, 24)
            .with_rate(Site::IoReadError, 5)
            .with_rate(Site::QueuePressure, 24),
    );
    let running = Server::spawn_tcp(
        ServerConfig {
            queue_cap: Some(16),
            fault_plan: Some(Arc::clone(&plan)),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind an ephemeral port");
    let addr = running.addr();

    // Six concurrent clients, each issuing the full request mix. Delay
    // variants per client keep several designs in flight at once.
    let workers: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let source = BLINK.replace("5ns", &format!("{}ns", 3 + i));
                let mut client: Option<Client> = None;
                let mut tally = Tally::default();
                for round in 0..30 {
                    let request = match round % 5 {
                        0 => Json::obj([("type", Json::str("ping"))]),
                        1 => Json::obj([
                            ("type", Json::str("sim")),
                            ("source", Json::str(source.clone())),
                            ("top", Json::str("blink")),
                            ("engine", Json::str("interpret")),
                            ("until_ns", Json::Int(40 + round)),
                        ]),
                        2 => Json::obj([
                            ("type", Json::str("batch")),
                            (
                                "jobs",
                                Json::Arr(
                                    (0..3)
                                        .map(|_| {
                                            Json::obj([
                                                ("source", Json::str(source.clone())),
                                                ("top", Json::str("blink")),
                                                ("engine", Json::str("interpret")),
                                                ("until_ns", Json::Int(20)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                        3 => Json::obj([("type", Json::str("stats"))]),
                        // A deliberately bad request: clean errors must
                        // keep flowing during the storm too.
                        _ => Json::obj([
                            ("type", Json::str("sim")),
                            ("design", Json::str("ffffffffffffffffffffffffffffffff")),
                            ("top", Json::str("blink")),
                        ]),
                    };
                    chaotic_request(&mut client, addr, &request, &mut tally);
                }
                tally
            })
        })
        .collect();
    let mut total = Tally::default();
    for worker in workers {
        let tally = worker.join().expect("a client thread died");
        total.ok += tally.ok;
        total.internal += tally.internal;
        total.overloaded += tally.overloaded;
        total.other_errors += tally.other_errors;
        total.reconnects += tally.reconnects;
    }

    // The storm actually stormed: faults fired at three or more distinct
    // sites, including mid-simulation panics the server had to absorb.
    let sites_fired = [
        Site::SimPanic,
        Site::IoReadSlow,
        Site::IoReadShort,
        Site::IoReadError,
        Site::QueuePressure,
    ]
    .iter()
    .filter(|&&site| plan.injected(site) > 0)
    .count();
    assert!(
        sites_fired >= 3,
        "only {} fault sites fired (seed {}): {:?}",
        sites_fired,
        seed,
        plan
    );
    assert!(
        plan.injected(Site::SimPanic) > 0,
        "the panic site never fired (seed {})",
        seed
    );
    // Injected panics must surface to clients as `internal_error`
    // responses. The storm tally usually shows them already, but a
    // panic's response can be eaten by an injected read fault on the
    // same connection (the client reconnects and the retried request
    // need not draw another panic) — so when the storm came up empty,
    // probe sequentially until one surfaces: the plan stays armed and
    // the panic site fires every few simulations. The probe runs long
    // enough (≥ 32 scheduler cycles) that every fired `sim.panic` draw
    // reaches its chosen cycle (`word % 32`) instead of outliving the
    // simulation, so each probe panics with the site's full rate.
    if total.internal == 0 {
        let probe_request = Json::obj([
            ("type", Json::str("sim")),
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(400)),
        ]);
        let mut probe_client: Option<Client> = None;
        let mut probe = Tally::default();
        for _ in 0..100 {
            chaotic_request(&mut probe_client, addr, &probe_request, &mut probe);
            if probe.internal > 0 {
                break;
            }
        }
        total.internal += probe.internal;
    }
    assert!(
        total.internal > 0,
        "injected panics must surface as internal_error responses: {:?}",
        total
    );
    assert!(total.ok > 0, "some requests must succeed mid-storm: {:?}", total);

    // The server outlived the storm: a *fault-free* check is impossible
    // (the plan stays armed), so retry through residual faults — but a
    // healthy server answers a ping and a fresh simulation within a few
    // attempts, and its panic counter shows it absorbed the hits.
    let mut client: Option<Client> = None;
    let mut after = Tally::default();
    let pong = chaotic_request(
        &mut client,
        addr,
        &Json::obj([("type", Json::str("ping"))]),
        &mut after,
    )
    .expect("post-chaos ping went unanswered");
    assert_eq!(pong.get("ok"), Some(&Json::Bool(true)), "{}", pong);
    // The residual storm may still fail individual attempts with an
    // injected panic (the plan stays armed, ~19% per job), so allow a
    // handful of draws — a healthy server answers `ok` within them.
    let mut sim_ok = false;
    for _ in 0..10 {
        let sim = chaotic_request(
            &mut client,
            addr,
            &Json::obj([
                ("type", Json::str("sim")),
                ("source", Json::str(BLINK)),
                ("top", Json::str("blink")),
                ("engine", Json::str("interpret")),
                ("until_ns", Json::Int(100)),
            ]),
            &mut after,
        )
        .expect("post-chaos sim went unanswered");
        if sim.get("ok") == Some(&Json::Bool(true)) {
            sim_ok = true;
            break;
        }
    }
    assert!(sim_ok, "post-chaos sim never succeeded: {:?}", after);
    let stats = chaotic_request(
        &mut client,
        addr,
        &Json::obj([("type", Json::str("stats"))]),
        &mut after,
    )
    .expect("post-chaos stats went unanswered");
    let panics_caught = stats
        .get("result")
        .and_then(|r| r.get("load"))
        .and_then(|l| l.get("panics_caught"))
        .and_then(Json::as_int)
        .unwrap_or_else(|| panic!("stats lacks load.panics_caught: {}", stats));
    assert!(
        panics_caught > 0,
        "the server should have counted absorbed panics: {}",
        stats
    );

    // And it still shuts down cleanly — the serving thread never panicked.
    let mut shut = Tally::default();
    chaotic_request(
        &mut client,
        addr,
        &Json::obj([("type", Json::str("shutdown"))]),
        &mut shut,
    );
    running.state().begin_shutdown();
    running.join().expect("server thread must not have panicked");
}
