//! The shared hot-path scheduling core of both simulation engines.
//!
//! The reference interpreter ([`Simulator`](crate::engine::Simulator)) and
//! the compiled simulator (`llhd-blaze`) execute unit bodies very
//! differently, but share the exact same event-driven scheduling model.
//! This module implements that model once, tuned for the hot path:
//!
//! * **Calendar event queue** ([`EventQueue`]): a binary min-heap over
//!   pending instants whose event payloads live in free-listed
//!   [`EventBucket`]s that are reused across pops (no per-instant
//!   allocation in steady state), plus a *near ring* that keeps the
//!   delta/epsilon events of the current physical instant out of the heap
//!   entirely — the overwhelmingly common zero-delay drive costs a small
//!   vector scan instead of a `BTreeMap` rebalance.
//! * **Dense state** ([`SchedCore`]): signal values, pending-drive
//!   counters, entity sensitivity, and process watch lists are flat
//!   vectors indexed by *resolved* [`SignalId`]s; nothing on the
//!   per-event path hashes.
//! * **Change short-circuiting**: a drive that would re-write a signal's
//!   current value is dropped before it is enqueued (when provably
//!   unobservable, see [`SchedCore::schedule_drive`]), and instances are
//!   only re-activated when a signal they watch actually *changes* value,
//!   not merely when it is driven.
//!
//! # Determinism and fairness
//!
//! When several drives to the same signal land in the same simulation
//! instant, **the last scheduled drive wins**: buckets replay drives in
//! the exact order the running instances scheduled them, and instances
//! run in a deterministic order (entities in sensitivity registration
//! order per changed signal, changed signals in first-change order,
//! followed by timed wake-ups in scheduling order). Two independent
//! processes driving one signal at the same instant therefore resolve
//! deterministically to the value driven by the process that executed
//! last — there is no hash-iteration nondeterminism anywhere in the
//! scheduler. Both engines share this code, which is what makes their
//! traces byte-identical (see the differential test in `llhd-designs`).

use crate::design::{SignalId, SignalInfo};
use crate::engine::{SimConfig, SimError};
use crate::trace::{Trace, TraceEvent};
use llhd::bitcode::{decode_const_value, encode_const_value, read_varint, write_varint};
use llhd::ir::{Module, Opcode};
use llhd::value::{ConstValue, TimeValue};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

// ---------------------------------------------------------------------------
// Snapshot primitives
// ---------------------------------------------------------------------------
//
// The checkpoint format (see `api::EngineState`) reuses the bitcode
// varint + constant codec; these helpers add the few shapes the scheduler
// needs on top.

pub(crate) fn write_time(out: &mut Vec<u8>, t: &TimeValue) {
    write_varint(out, t.as_femtos());
    write_varint(out, t.delta() as u128);
    write_varint(out, t.epsilon() as u128);
}

pub(crate) fn read_time(bytes: &[u8], pos: &mut usize) -> Result<TimeValue, SimError> {
    let femtos = read_u128(bytes, pos)?;
    let delta = read_usize(bytes, pos)? as u32;
    let epsilon = read_usize(bytes, pos)? as u32;
    Ok(TimeValue::new(femtos, delta, epsilon))
}

pub(crate) fn read_u128(bytes: &[u8], pos: &mut usize) -> Result<u128, SimError> {
    read_varint(bytes, pos)
        .ok_or_else(|| SimError::Runtime("truncated engine checkpoint".to_string()))
}

pub(crate) fn read_usize(bytes: &[u8], pos: &mut usize) -> Result<usize, SimError> {
    Ok(read_u128(bytes, pos)? as usize)
}

pub(crate) fn read_const(bytes: &[u8], pos: &mut usize) -> Result<ConstValue, SimError> {
    decode_const_value(bytes, pos)
        .map_err(|e| SimError::Runtime(format!("corrupt engine checkpoint: {}", e)))
}

pub(crate) fn read_byte(bytes: &[u8], pos: &mut usize) -> Result<u8, SimError> {
    let b = *bytes
        .get(*pos)
        .ok_or_else(|| SimError::Runtime("truncated engine checkpoint".to_string()))?;
    *pos += 1;
    Ok(b)
}

/// The events scheduled for one simulation instant.
///
/// Buckets are owned by the [`EventQueue`] and recycled through a free
/// list, so their `Vec` capacities survive across instants.
#[derive(Default, Clone, Debug)]
pub struct EventBucket {
    /// Scheduled signal updates, in scheduling order (last writer wins).
    pub drives: Vec<(SignalId, ConstValue)>,
    /// Timed process wake-ups as `(instance, wait token)`.
    pub wakes: Vec<(u32, u64)>,
}

impl EventBucket {
    fn is_empty(&self) -> bool {
        self.drives.is_empty() && self.wakes.is_empty()
    }
}

/// A two-level calendar event queue ordered by [`TimeValue`].
///
/// Future physical instants live in a binary min-heap; events within the
/// *current* physical instant (delta/epsilon steps) take an O(1) fast
/// path through a small unsorted ring. Every entry carries a monotonic
/// sequence number, so several buckets that end up at the same timestamp
/// are replayed in creation order — scheduling order is preserved
/// end-to-end, which the last-writer-wins drive semantics rely on.
#[derive(Default)]
pub struct EventQueue {
    buckets: Vec<EventBucket>,
    free: Vec<u32>,
    /// Pending future instants as `Reverse((time, seq, bucket))`.
    heap: BinaryHeap<Reverse<(TimeValue, u64, u32)>>,
    /// Pending instants within the current physical time: `(time, seq, bucket)`.
    near: Vec<(TimeValue, u64, u32)>,
    /// The physical component of the current instant (what `near` keys on).
    near_femtos: u128,
    /// Cache of the most recently scheduled instant, so bursts of events
    /// for one timestamp append to one bucket without any search.
    last: Option<(TimeValue, u32)>,
    seq: u64,
    events: usize,
    /// Scratch for merging same-timestamp buckets at pop time.
    merge: Vec<(u64, u32)>,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// The number of pending events (drives plus wakes).
    pub fn len(&self) -> usize {
        self.events
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// The number of buckets ever allocated. Stays flat once the design's
    /// steady-state instant fan-out is reached — pops recycle buckets
    /// through the free list.
    pub fn allocated_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The earliest pending instant, if any.
    pub fn next_time(&self) -> Option<TimeValue> {
        let near = self.near.iter().map(|&(t, _, _)| t).min();
        let far = self.heap.peek().map(|&Reverse((t, _, _))| t);
        match (near, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn alloc(&mut self) -> u32 {
        match self.free.pop() {
            Some(b) => b,
            None => {
                self.buckets.push(EventBucket::default());
                (self.buckets.len() - 1) as u32
            }
        }
    }

    fn bucket_at(&mut self, at: TimeValue) -> u32 {
        if let Some((t, b)) = self.last {
            if t == at {
                return b;
            }
        }
        let bucket = if at.as_femtos() == self.near_femtos {
            match self.near.iter().find(|&&(t, _, _)| t == at) {
                Some(&(_, _, b)) => b,
                None => {
                    let b = self.alloc();
                    self.seq += 1;
                    self.near.push((at, self.seq, b));
                    b
                }
            }
        } else {
            let b = self.alloc();
            self.seq += 1;
            self.heap.push(Reverse((at, self.seq, b)));
            b
        };
        self.last = Some((at, bucket));
        bucket
    }

    /// Schedule a drive of `signal` to `value` at the absolute time `at`.
    pub fn schedule_drive(&mut self, at: TimeValue, signal: SignalId, value: ConstValue) {
        let b = self.bucket_at(at);
        self.buckets[b as usize].drives.push((signal, value));
        self.events += 1;
    }

    /// Schedule a timed wake-up of `instance` (guarded by `token`) at the
    /// absolute time `at`.
    pub fn schedule_wake(&mut self, at: TimeValue, instance: u32, token: u64) {
        let b = self.bucket_at(at);
        self.buckets[b as usize].wakes.push((instance, token));
        self.events += 1;
    }

    /// Pop *all* events of the earliest pending instant, appending them to
    /// `drives` and `wakes` in scheduling order, and return that instant.
    /// The drained buckets return to the free list.
    pub fn pop_next(
        &mut self,
        drives: &mut Vec<(SignalId, ConstValue)>,
        wakes: &mut Vec<(u32, u64)>,
    ) -> Option<TimeValue> {
        let t = self.next_time()?;
        if self.last.is_some_and(|(lt, _)| lt == t) {
            self.last = None;
        }
        // Entering a new physical instant: the near ring is necessarily
        // empty (all its entries would precede `t`), so re-key it.
        self.near_femtos = t.as_femtos();
        let mut merge = std::mem::take(&mut self.merge);
        merge.clear();
        let mut i = 0;
        while i < self.near.len() {
            if self.near[i].0 == t {
                let (_, seq, b) = self.near.swap_remove(i);
                merge.push((seq, b));
            } else {
                i += 1;
            }
        }
        while let Some(&Reverse((ht, seq, b))) = self.heap.peek() {
            if ht != t {
                break;
            }
            self.heap.pop();
            merge.push((seq, b));
        }
        // Replay buckets in creation order so scheduling order survives
        // the merge of same-timestamp buckets.
        merge.sort_unstable_by_key(|&(seq, _)| seq);
        for &(_, b) in &merge {
            let bucket = &mut self.buckets[b as usize];
            self.events -= bucket.drives.len() + bucket.wakes.len();
            drives.append(&mut bucket.drives);
            wakes.append(&mut bucket.wakes);
            debug_assert!(bucket.is_empty());
            self.free.push(b);
        }
        self.merge = merge;
        Some(t)
    }
}

/// Whether enqueue-time drive dropping is sound for this module.
///
/// The short-circuit in [`SchedCore::schedule_drive`] drops a drive that
/// targets the *next delta step* and re-writes the signal's current value,
/// provided no other drive of that signal is pending. The only events that
/// could sneak in between "now" and the next delta step are epsilon-delay
/// events, and every runtime delay originates from a `const time`
/// instruction (time arithmetic can only add such constants), so a module
/// whose time constants all have a zero epsilon component can never
/// observe the drop.
pub fn module_allows_drive_dropping(module: &Module) -> bool {
    for id in module.units() {
        let unit = module.unit(id);
        for block in unit.blocks() {
            for inst in unit.insts(block) {
                let data = unit.inst_data(inst);
                if data.opcode == Opcode::Const {
                    if let Some(ConstValue::Time(t)) = &data.konst {
                        if t.epsilon() > 0 {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// The engine-independent scheduling state: signal values, the event
/// queue, sensitivity, tracing, and the delta-cycle guard.
///
/// Engines drive it in a simple loop:
///
/// 1. run every instance once for initialization (processes suspend via
///    [`SchedCore::suspend`], drives go through
///    [`SchedCore::schedule_drive`]),
/// 2. call [`SchedCore::next_cycle`] to advance to the next instant; it
///    applies the instant's drives, records the trace, and fills `to_run`
///    with the instances to activate,
/// 3. activate them, repeat until `next_cycle` returns `false`.
///
/// All [`SignalId`]s passed to the core must be **resolved** (through
/// [`ElaboratedDesign::resolve`](crate::design::ElaboratedDesign::resolve));
/// engines pre-resolve their per-instance signal tables at
/// elaboration/compile time so the runtime never chases aliases.
pub struct SchedCore {
    max_time: TimeValue,
    max_deltas_per_instant: u32,
    queue: EventQueue,
    time: TimeValue,
    /// Current value of every signal, by resolved id.
    values: Vec<ConstValue>,
    /// Pending (scheduled but not yet applied) drive count per signal.
    pending: Vec<u32>,
    /// Whether enqueue-time drive dropping is sound for this design.
    allow_drop: bool,
    /// Per signal: whether changes are recorded (trace filter, applied once).
    traced: Vec<bool>,
    /// Static sensitivity: resolved signal -> entity instances.
    sensitivity: Vec<Vec<u32>>,
    /// Dynamic sensitivity: resolved signal -> suspended `(process, token)`.
    watchers: Vec<Vec<(u32, u64)>>,
    /// Per instance: currently suspended in a wait.
    waiting: Vec<bool>,
    /// Per instance: current wait token (stale wake-ups are ignored).
    token: Vec<u64>,
    /// Per instance: epoch of the last `to_run` enqueue (dedup).
    run_stamp: Vec<u32>,
    /// Per signal: epoch of the last change (dedup within an instant).
    change_stamp: Vec<u32>,
    epoch: u32,
    trace: Trace,
    signal_changes: usize,
    deltas_in_instant: u32,
    last_physical: u128,
    drives_buf: Vec<(SignalId, ConstValue)>,
    wakes_buf: Vec<(u32, u64)>,
}

impl SchedCore {
    /// Create a core for `signals` (the elaborated signal table) and
    /// `num_instances` unit instances. `allow_drop` enables the
    /// enqueue-time drive short-circuit; pass the result of
    /// [`module_allows_drive_dropping`] for the module being simulated.
    pub fn new(
        config: &SimConfig,
        signals: &[SignalInfo],
        num_instances: usize,
        allow_drop: bool,
    ) -> Self {
        let values: Vec<ConstValue> = signals.iter().map(|s| s.init.clone()).collect();
        let names: Vec<String> = signals.iter().map(|s| s.name.clone()).collect();
        let traced = names
            .iter()
            .map(|name| {
                config.trace
                    && match &config.trace_filter {
                        None => true,
                        Some(filter) => filter
                            .iter()
                            .any(|f| name == f || name.ends_with(&format!(".{}", f))),
                    }
            })
            .collect();
        let n = signals.len();
        SchedCore {
            max_time: config.max_time,
            max_deltas_per_instant: config.max_deltas_per_instant,
            queue: EventQueue::new(),
            time: TimeValue::ZERO,
            values,
            pending: vec![0; n],
            allow_drop,
            traced,
            sensitivity: vec![Vec::new(); n],
            watchers: vec![Vec::new(); n],
            waiting: vec![false; num_instances],
            token: vec![0; num_instances],
            run_stamp: vec![0; num_instances],
            change_stamp: vec![0; n],
            epoch: 0,
            // The trace interns the signal names once, indexed by resolved
            // signal id; recording a change is then an id-stamped push with
            // no string work (see `Trace::record_id`).
            trace: Trace::with_names(names),
            signal_changes: 0,
            deltas_in_instant: 0,
            last_physical: 0,
            drives_buf: Vec::new(),
            wakes_buf: Vec::new(),
        }
    }

    /// Register `instance` (an entity) as statically sensitive to `signal`.
    pub fn add_entity_sensitivity(&mut self, signal: SignalId, instance: usize) {
        let list = &mut self.sensitivity[signal.0];
        if list.last() != Some(&(instance as u32)) {
            list.push(instance as u32);
        }
    }

    /// The current simulation time.
    pub fn time(&self) -> TimeValue {
        self.time
    }

    /// The current value of a (resolved) signal.
    pub fn value(&self, signal: SignalId) -> &ConstValue {
        &self.values[signal.0]
    }

    /// The number of observed signal value changes so far.
    pub fn signal_changes(&self) -> usize {
        self.signal_changes
    }

    /// Take the recorded trace out of the core, leaving a fresh trace
    /// over the same interned name table so recording stays valid if the
    /// engine keeps stepping after a result snapshot.
    pub fn take_trace(&mut self) -> Trace {
        let names = self.trace.shared_names();
        std::mem::replace(&mut self.trace, Trace::with_shared_names(names))
    }

    /// Move the events recorded since the last drain into `buf`, leaving
    /// the trace's interned name table in place so recording continues.
    /// Streaming trace sinks pull events through this after every step.
    pub fn drain_trace_into(&mut self, buf: &mut Vec<crate::trace::TraceEvent>) {
        self.trace.drain_events_into(buf);
    }


    /// The absolute time `delay` from now, clamped forward to the next
    /// delta step so no event can be scheduled at or before the present.
    fn event_time(&self, delay: &TimeValue) -> TimeValue {
        let at = self.time.advance_by(delay);
        if at <= self.time {
            self.time.advance_by(&TimeValue::from_delta(1))
        } else {
            at
        }
    }

    /// Schedule a drive of `signal` to `value` after `delay`.
    ///
    /// Drives that re-write the signal's current value are dropped before
    /// enqueueing when the drop is unobservable: the drive must target the
    /// immediately next delta step (nothing can execute in between, given
    /// the design schedules no epsilon-delay events), and no other drive
    /// of the signal may be pending (a pending drive could change the
    /// value first, or — if it targets the same instant — must still lose
    /// to this one under last-writer-wins).
    pub fn schedule_drive(&mut self, signal: SignalId, value: ConstValue, delay: &TimeValue) {
        let at = self.event_time(delay);
        if self.allow_drop
            && self.pending[signal.0] == 0
            && at.as_femtos() == self.time.as_femtos()
            && at.delta() == self.time.delta() + 1
            && at.epsilon() == 0
            && self.values[signal.0] == value
        {
            return;
        }
        self.pending[signal.0] += 1;
        self.queue.schedule_drive(at, signal, value);
    }

    /// Suspend `instance` until one of the `observed` signals changes or
    /// the optional `timeout` expires. Returns nothing; the instance shows
    /// up in a later `next_cycle` batch when it wakes.
    pub fn suspend(&mut self, instance: usize, observed: &[SignalId], timeout: Option<&TimeValue>) {
        self.token[instance] += 1;
        let token = self.token[instance];
        self.waiting[instance] = true;
        for &sig in observed {
            let Self {
                watchers,
                waiting,
                token: tokens,
                ..
            } = self;
            let list = &mut watchers[sig.0];
            // Bound the stale-entry build-up on rarely-changing signals.
            if list.len() >= 64 {
                list.retain(|&(i, t)| waiting[i as usize] && tokens[i as usize] == t);
            }
            list.push((instance as u32, token));
        }
        if let Some(delay) = timeout {
            let at = self.event_time(delay);
            self.queue.schedule_wake(at, instance as u32, token);
        }
    }

    /// Advance to the next instant: pop its events, apply the drives
    /// (recording changes into the trace), and fill `to_run` with the
    /// instances to activate, in deterministic order. Returns `false`
    /// when the queue is exhausted or the next instant lies beyond the
    /// configured end time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] when the delta-cycle limit within one
    /// physical instant is exceeded.
    pub fn next_cycle(&mut self, to_run: &mut Vec<u32>) -> Result<bool, SimError> {
        to_run.clear();
        let event_time = match self.queue.next_time() {
            Some(t) => t,
            None => return Ok(false),
        };
        if event_time > self.max_time {
            return Ok(false);
        }
        let mut drives = std::mem::take(&mut self.drives_buf);
        let mut wakes = std::mem::take(&mut self.wakes_buf);
        drives.clear();
        wakes.clear();
        self.queue.pop_next(&mut drives, &mut wakes);

        // Guard against unbounded delta cycles within one physical instant.
        if event_time.as_femtos() == self.last_physical {
            self.deltas_in_instant += 1;
            if self.deltas_in_instant > self.max_deltas_per_instant {
                return Err(SimError::Runtime(format!(
                    "delta cycle limit exceeded at {}",
                    event_time
                )));
            }
        } else {
            self.last_physical = event_time.as_femtos();
            self.deltas_in_instant = 0;
        }
        self.time = event_time;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely long runs wrap the epoch; reset the stamps to 0,
            // which is never used as an epoch (the wrap skips it), so no
            // stale stamp can ever alias a live epoch.
            self.run_stamp.iter_mut().for_each(|s| *s = 0);
            self.change_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        let epoch = self.epoch;

        for (signal, value) in drives.drain(..) {
            let s = signal.0;
            self.pending[s] -= 1;
            if self.values[s] == value {
                continue;
            }
            self.values[s] = value.clone();
            self.signal_changes += 1;
            if self.traced[s] {
                self.trace.record_id(event_time, s as u32, value);
            }
            if self.change_stamp[s] == epoch {
                continue;
            }
            self.change_stamp[s] = epoch;
            // Entities statically sensitive to this signal.
            for &inst in &self.sensitivity[s] {
                if self.run_stamp[inst as usize] != epoch {
                    self.run_stamp[inst as usize] = epoch;
                    to_run.push(inst);
                }
            }
            // Processes currently waiting on it. Every live entry wakes,
            // and dead entries are stale, so the whole list drains.
            for (inst, token) in self.watchers[s].drain(..) {
                let i = inst as usize;
                if self.waiting[i] && self.token[i] == token {
                    self.waiting[i] = false;
                    if self.run_stamp[i] != epoch {
                        self.run_stamp[i] = epoch;
                        to_run.push(inst);
                    }
                }
            }
        }
        for (inst, token) in wakes.drain(..) {
            let i = inst as usize;
            if self.waiting[i] && self.token[i] == token {
                self.waiting[i] = false;
                if self.run_stamp[i] != epoch {
                    self.run_stamp[i] = epoch;
                    to_run.push(inst);
                }
            }
        }
        self.drives_buf = drives;
        self.wakes_buf = wakes;
        Ok(true)
    }

    /// The trace events recorded since the last drain, without consuming
    /// them (checkpointing serializes these so a restored engine's final
    /// trace is byte-identical to an uninterrupted run's).
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.events()
    }

    /// Serialize the core's complete dynamic state — time, signal values,
    /// pending counters, wait registrations, undrained trace events, and
    /// the event queue — into `out`. Static state (sensitivity lists,
    /// trace filters, limits) is *not* included: it is a pure function of
    /// design + config and is rebuilt by engine construction, which is
    /// why [`SchedCore::restore_snapshot`] requires a core built over the
    /// same design with the same config.
    pub fn snapshot(&self, out: &mut Vec<u8>) {
        write_time(out, &self.time);
        write_varint(out, self.values.len() as u128);
        for value in &self.values {
            encode_const_value(out, value);
        }
        for &pending in &self.pending {
            write_varint(out, pending as u128);
        }
        for list in &self.watchers {
            write_varint(out, list.len() as u128);
            for &(inst, token) in list {
                write_varint(out, inst as u128);
                write_varint(out, token as u128);
            }
        }
        write_varint(out, self.waiting.len() as u128);
        for &waiting in &self.waiting {
            out.push(waiting as u8);
        }
        for &token in &self.token {
            write_varint(out, token as u128);
        }
        write_varint(out, self.signal_changes as u128);
        write_varint(out, self.deltas_in_instant as u128);
        write_varint(out, self.last_physical);
        let events = self.trace.events();
        write_varint(out, events.len() as u128);
        for event in events {
            write_time(out, &event.time);
            write_varint(out, event.signal as u128);
            encode_const_value(out, &event.value);
        }
        // The event queue: every pending instant as (placement, time, seq,
        // drives, wakes), in sequence order. Placement (near ring vs.
        // heap) is recorded because two buckets at the *same* timestamp
        // can live on different sides, and `bucket_at` appends to a found
        // near bucket but never searches the heap — replaying placement
        // keeps future same-instant scheduling byte-identical.
        let mut entries: Vec<(u64, TimeValue, u32, bool)> = self
            .queue
            .near
            .iter()
            .map(|&(t, seq, b)| (seq, t, b, true))
            .chain(
                self.queue
                    .heap
                    .iter()
                    .map(|&Reverse((t, seq, b))| (seq, t, b, false)),
            )
            .collect();
        entries.sort_unstable_by_key(|&(seq, _, _, _)| seq);
        write_varint(out, self.queue.seq as u128);
        write_varint(out, entries.len() as u128);
        for (seq, time, bucket, near) in entries {
            out.push(near as u8);
            write_time(out, &time);
            write_varint(out, seq as u128);
            let bucket = &self.queue.buckets[bucket as usize];
            write_varint(out, bucket.drives.len() as u128);
            for (signal, value) in &bucket.drives {
                write_varint(out, signal.0 as u128);
                encode_const_value(out, value);
            }
            write_varint(out, bucket.wakes.len() as u128);
            for &(inst, token) in &bucket.wakes {
                write_varint(out, inst as u128);
                write_varint(out, token as u128);
            }
        }
    }

    /// Restore a [`SchedCore::snapshot`] into this core, replacing all
    /// dynamic state. The core must have been built over the same design
    /// (same signal and instance counts) with the same config; otherwise
    /// an error is returned and the core is left in an unspecified state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on truncated or mismatching input.
    pub fn restore_snapshot(&mut self, bytes: &[u8], pos: &mut usize) -> Result<(), SimError> {
        let time = read_time(bytes, pos)?;
        let num_signals = read_usize(bytes, pos)?;
        if num_signals != self.values.len() {
            return Err(SimError::Runtime(format!(
                "checkpoint is for a design with {} signals, this design has {}",
                num_signals,
                self.values.len()
            )));
        }
        self.time = time;
        for value in &mut self.values {
            *value = read_const(bytes, pos)?;
        }
        for pending in &mut self.pending {
            *pending = read_usize(bytes, pos)? as u32;
        }
        for list in &mut self.watchers {
            let n = read_usize(bytes, pos)?;
            list.clear();
            list.reserve(n.min(4096));
            for _ in 0..n {
                let inst = read_usize(bytes, pos)? as u32;
                let token = read_u128(bytes, pos)? as u64;
                list.push((inst, token));
            }
        }
        let num_instances = read_usize(bytes, pos)?;
        if num_instances != self.waiting.len() {
            return Err(SimError::Runtime(format!(
                "checkpoint is for a design with {} instances, this design has {}",
                num_instances,
                self.waiting.len()
            )));
        }
        for waiting in &mut self.waiting {
            *waiting = read_byte(bytes, pos)? != 0;
        }
        for token in &mut self.token {
            *token = read_u128(bytes, pos)? as u64;
        }
        self.signal_changes = read_usize(bytes, pos)?;
        self.deltas_in_instant = read_usize(bytes, pos)? as u32;
        self.last_physical = read_u128(bytes, pos)?;
        // Dedup stamps are meaningful only *within* one `next_cycle`; at a
        // checkpoint boundary they are stale by construction, so restore
        // resets them to 0 (never used as an epoch — the wrap skips it).
        self.epoch = 0;
        self.run_stamp.iter_mut().for_each(|s| *s = 0);
        self.change_stamp.iter_mut().for_each(|s| *s = 0);
        let num_events = read_usize(bytes, pos)?;
        self.trace = Trace::with_shared_names(self.trace.shared_names());
        for _ in 0..num_events {
            let time = read_time(bytes, pos)?;
            let signal = read_usize(bytes, pos)? as u32;
            let value = read_const(bytes, pos)?;
            if (signal as usize) >= num_signals {
                return Err(SimError::Runtime(
                    "corrupt engine checkpoint: trace signal out of range".to_string(),
                ));
            }
            self.trace.record_id(time, signal, value);
        }
        let queue_seq = read_u128(bytes, pos)? as u64;
        let num_entries = read_usize(bytes, pos)?;
        self.queue = EventQueue::new();
        self.queue.seq = queue_seq;
        self.queue.near_femtos = self.time.as_femtos();
        for _ in 0..num_entries {
            let near = read_byte(bytes, pos)? != 0;
            let entry_time = read_time(bytes, pos)?;
            let seq = read_u128(bytes, pos)? as u64;
            let mut bucket = EventBucket::default();
            let num_drives = read_usize(bytes, pos)?;
            for _ in 0..num_drives {
                let signal = read_usize(bytes, pos)?;
                if signal >= num_signals {
                    return Err(SimError::Runtime(
                        "corrupt engine checkpoint: drive signal out of range".to_string(),
                    ));
                }
                let value = read_const(bytes, pos)?;
                bucket.drives.push((SignalId(signal), value));
            }
            let num_wakes = read_usize(bytes, pos)?;
            for _ in 0..num_wakes {
                let inst = read_usize(bytes, pos)?;
                if inst >= num_instances {
                    return Err(SimError::Runtime(
                        "corrupt engine checkpoint: wake instance out of range".to_string(),
                    ));
                }
                let token = read_u128(bytes, pos)? as u64;
                bucket.wakes.push((inst as u32, token));
            }
            self.queue.events += bucket.drives.len() + bucket.wakes.len();
            let b = self.queue.buckets.len() as u32;
            self.queue.buckets.push(bucket);
            if near {
                self.queue.near.push((entry_time, seq, b));
            } else {
                self.queue.heap.push(Reverse((entry_time, seq, b)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(i: usize) -> SignalId {
        SignalId(i)
    }

    fn v(x: u64) -> ConstValue {
        ConstValue::int(16, x)
    }

    #[test]
    fn pops_in_time_delta_epsilon_order() {
        let mut q = EventQueue::new();
        let times = [
            TimeValue::new(2_000, 0, 0),
            TimeValue::new(1_000, 1, 0),
            TimeValue::new(1_000, 0, 1),
            TimeValue::new(1_000, 0, 0),
            TimeValue::new(1_000, 1, 2),
            TimeValue::new(3_000, 0, 0),
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule_drive(t, sig(i), v(i as u64));
        }
        let mut popped = vec![];
        let (mut drives, mut wakes) = (vec![], vec![]);
        while let Some(t) = q.pop_next(&mut drives, &mut wakes) {
            popped.push(t);
        }
        let mut sorted = times.to_vec();
        sorted.sort();
        assert_eq!(popped, sorted);
        assert_eq!(drives.len(), times.len());
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_events_batch_into_one_pop() {
        let mut q = EventQueue::new();
        let t = TimeValue::new(5_000, 0, 0);
        let u = TimeValue::new(9_000, 0, 0);
        // Interleave two timestamps so `t` accumulates several buckets.
        q.schedule_drive(t, sig(0), v(1));
        q.schedule_drive(u, sig(9), v(9));
        q.schedule_drive(t, sig(1), v(2));
        q.schedule_wake(t, 7, 42);
        q.schedule_drive(t, sig(2), v(3));
        assert_eq!(q.len(), 5);
        let (mut drives, mut wakes) = (vec![], vec![]);
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(t));
        // All four `t` events arrive in one pop, in scheduling order.
        assert_eq!(
            drives.iter().map(|&(s, _)| s.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(wakes, vec![(7, 42)]);
        drives.clear();
        wakes.clear();
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(u));
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn near_fast_path_handles_current_instant_deltas() {
        let mut q = EventQueue::new();
        let t0 = TimeValue::new(1_000, 0, 0);
        q.schedule_drive(t0, sig(0), v(0));
        let (mut drives, mut wakes) = (vec![], vec![]);
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(t0));
        // Delta and epsilon steps within the same femtosecond pop in order.
        let d1 = TimeValue::new(1_000, 1, 0);
        let e1 = TimeValue::new(1_000, 0, 1);
        q.schedule_drive(d1, sig(1), v(1));
        q.schedule_drive(e1, sig(2), v(2));
        drives.clear();
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(e1));
        drives.clear();
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(d1));
        assert!(q.is_empty());
    }

    #[test]
    fn buckets_are_reused_after_pops() {
        let mut q = EventQueue::new();
        let (mut drives, mut wakes) = (vec![], vec![]);
        // A clock-like workload: one instant in flight at a time.
        for step in 0..1_000u64 {
            q.schedule_drive(
                TimeValue::new(1_000 * (step as u128 + 1), 0, 0),
                sig(0),
                v(step),
            );
            drives.clear();
            q.pop_next(&mut drives, &mut wakes).unwrap();
            assert_eq!(drives.len(), 1);
        }
        assert!(
            q.allocated_buckets() <= 2,
            "buckets must be recycled, got {}",
            q.allocated_buckets()
        );
    }

    #[test]
    fn merged_same_time_buckets_preserve_scheduling_order() {
        let mut q = EventQueue::new();
        let t = TimeValue::new(4_000, 2, 0);
        // Alternate with another time so the `last` cache misses and `t`
        // gets several distinct buckets (heap path).
        for i in 0..6u64 {
            q.schedule_drive(t, sig(0), v(i));
            q.schedule_drive(TimeValue::new(8_000, 0, 0), sig(1), v(i));
        }
        let (mut drives, mut wakes) = (vec![], vec![]);
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(t));
        let order: Vec<_> = drives.iter().map(|(_, val)| val.clone()).collect();
        assert_eq!(order, (0..6).map(v).collect::<Vec<_>>());
    }
}
