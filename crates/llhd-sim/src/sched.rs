//! The shared hot-path scheduling core of both simulation engines.
//!
//! The reference interpreter ([`Simulator`](crate::engine::Simulator)) and
//! the compiled simulator (`llhd-blaze`) execute unit bodies very
//! differently, but share the exact same event-driven scheduling model.
//! This module implements that model once, tuned for the hot path:
//!
//! * **Calendar event queue** ([`EventQueue`]): a binary min-heap over
//!   pending instants whose event payloads live in free-listed
//!   [`EventBucket`]s that are reused across pops (no per-instant
//!   allocation in steady state), plus a *near ring* that keeps the
//!   delta/epsilon events of the current physical instant out of the heap
//!   entirely — the overwhelmingly common zero-delay drive costs a small
//!   vector scan instead of a `BTreeMap` rebalance.
//! * **Dense state** ([`SchedCore`]): signal values, pending-drive
//!   counters, entity sensitivity, and process watch lists are flat
//!   vectors indexed by *resolved* [`SignalId`]s; nothing on the
//!   per-event path hashes.
//! * **Change short-circuiting**: a drive that would re-write a signal's
//!   current value is dropped before it is enqueued (when provably
//!   unobservable, see [`SchedCore::schedule_drive`]), and instances are
//!   only re-activated when a signal they watch actually *changes* value,
//!   not merely when it is driven.
//!
//! # Determinism and fairness
//!
//! When several drives to the same signal land in the same simulation
//! instant, **the last scheduled drive wins**: buckets replay drives in
//! the exact order the running instances scheduled them, and instances
//! run in a deterministic order (entities in sensitivity registration
//! order per changed signal, changed signals in first-change order,
//! followed by timed wake-ups in scheduling order). Two independent
//! processes driving one signal at the same instant therefore resolve
//! deterministically to the value driven by the process that executed
//! last — there is no hash-iteration nondeterminism anywhere in the
//! scheduler. Both engines share this code, which is what makes their
//! traces byte-identical (see the differential test in `llhd-designs`).

use crate::design::{SignalId, SignalInfo};
use crate::engine::{SimConfig, SimError};
use crate::trace::{Trace, TraceEvent};
use llhd::bitcode::{decode_const_value, encode_const_value, read_varint, write_varint};
use llhd::ir::{Module, Opcode};
use llhd::value::{ConstValue, TimeValue};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

// ---------------------------------------------------------------------------
// Snapshot primitives
// ---------------------------------------------------------------------------
//
// The checkpoint format (see `api::EngineState`) reuses the bitcode
// varint + constant codec; these helpers add the few shapes the scheduler
// needs on top.

pub(crate) fn write_time(out: &mut Vec<u8>, t: &TimeValue) {
    write_varint(out, t.as_femtos());
    write_varint(out, t.delta() as u128);
    write_varint(out, t.epsilon() as u128);
}

pub(crate) fn read_time(bytes: &[u8], pos: &mut usize) -> Result<TimeValue, SimError> {
    let femtos = read_u128(bytes, pos)?;
    let delta = read_usize(bytes, pos)? as u32;
    let epsilon = read_usize(bytes, pos)? as u32;
    Ok(TimeValue::new(femtos, delta, epsilon))
}

pub(crate) fn read_u128(bytes: &[u8], pos: &mut usize) -> Result<u128, SimError> {
    read_varint(bytes, pos)
        .ok_or_else(|| SimError::Runtime("truncated engine checkpoint".to_string()))
}

pub(crate) fn read_usize(bytes: &[u8], pos: &mut usize) -> Result<usize, SimError> {
    Ok(read_u128(bytes, pos)? as usize)
}

pub(crate) fn read_const(bytes: &[u8], pos: &mut usize) -> Result<ConstValue, SimError> {
    decode_const_value(bytes, pos)
        .map_err(|e| SimError::Runtime(format!("corrupt engine checkpoint: {}", e)))
}

pub(crate) fn read_byte(bytes: &[u8], pos: &mut usize) -> Result<u8, SimError> {
    let b = *bytes
        .get(*pos)
        .ok_or_else(|| SimError::Runtime("truncated engine checkpoint".to_string()))?;
    *pos += 1;
    Ok(b)
}

/// The events scheduled for one simulation instant.
///
/// Buckets are owned by the [`EventQueue`] and recycled through a free
/// list, so their `Vec` capacities survive across instants.
#[derive(Default, Clone, Debug)]
pub struct EventBucket {
    /// Scheduled signal updates, in scheduling order (last writer wins).
    pub drives: Vec<(SignalId, ConstValue)>,
    /// Timed process wake-ups as `(instance, wait token)`.
    pub wakes: Vec<(u32, u64)>,
}

impl EventBucket {
    fn is_empty(&self) -> bool {
        self.drives.is_empty() && self.wakes.is_empty()
    }
}

/// A two-level calendar event queue ordered by [`TimeValue`].
///
/// Future physical instants live in a binary min-heap; events within the
/// *current* physical instant (delta/epsilon steps) take an O(1) fast
/// path through a small unsorted ring. Every entry carries a monotonic
/// sequence number, so several buckets that end up at the same timestamp
/// are replayed in creation order — scheduling order is preserved
/// end-to-end, which the last-writer-wins drive semantics rely on.
#[derive(Default)]
pub struct EventQueue {
    buckets: Vec<EventBucket>,
    free: Vec<u32>,
    /// Pending future instants as `Reverse((time, seq, bucket))`.
    heap: BinaryHeap<Reverse<(TimeValue, u64, u32)>>,
    /// Pending instants within the current physical time: `(time, seq, bucket)`.
    near: Vec<(TimeValue, u64, u32)>,
    /// The physical component of the current instant (what `near` keys on).
    near_femtos: u128,
    /// Cache of the most recently scheduled instant, so bursts of events
    /// for one timestamp append to one bucket without any search.
    last: Option<(TimeValue, u32)>,
    seq: u64,
    events: usize,
    /// Scratch for merging same-timestamp buckets at pop time.
    merge: Vec<(u64, u32)>,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// The number of pending events (drives plus wakes).
    pub fn len(&self) -> usize {
        self.events
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// The number of buckets ever allocated. Stays flat once the design's
    /// steady-state instant fan-out is reached — pops recycle buckets
    /// through the free list.
    pub fn allocated_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The earliest pending instant, if any.
    pub fn next_time(&self) -> Option<TimeValue> {
        let near = self.near.iter().map(|&(t, _, _)| t).min();
        let far = self.heap.peek().map(|&Reverse((t, _, _))| t);
        match (near, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn alloc(&mut self) -> u32 {
        match self.free.pop() {
            Some(b) => b,
            None => {
                self.buckets.push(EventBucket::default());
                (self.buckets.len() - 1) as u32
            }
        }
    }

    fn bucket_at(&mut self, at: TimeValue) -> u32 {
        if let Some((t, b)) = self.last {
            if t == at {
                return b;
            }
        }
        let bucket = if at.as_femtos() == self.near_femtos {
            match self.near.iter().find(|&&(t, _, _)| t == at) {
                Some(&(_, _, b)) => b,
                None => {
                    let b = self.alloc();
                    self.seq += 1;
                    self.near.push((at, self.seq, b));
                    b
                }
            }
        } else {
            let b = self.alloc();
            self.seq += 1;
            self.heap.push(Reverse((at, self.seq, b)));
            b
        };
        self.last = Some((at, bucket));
        bucket
    }

    /// Schedule a drive of `signal` to `value` at the absolute time `at`.
    pub fn schedule_drive(&mut self, at: TimeValue, signal: SignalId, value: ConstValue) {
        let b = self.bucket_at(at);
        self.buckets[b as usize].drives.push((signal, value));
        self.events += 1;
    }

    /// Schedule a timed wake-up of `instance` (guarded by `token`) at the
    /// absolute time `at`.
    pub fn schedule_wake(&mut self, at: TimeValue, instance: u32, token: u64) {
        let b = self.bucket_at(at);
        self.buckets[b as usize].wakes.push((instance, token));
        self.events += 1;
    }

    /// Pop *all* events of the earliest pending instant, appending them to
    /// `drives` and `wakes` in scheduling order, and return that instant.
    /// The drained buckets return to the free list.
    pub fn pop_next(
        &mut self,
        drives: &mut Vec<(SignalId, ConstValue)>,
        wakes: &mut Vec<(u32, u64)>,
    ) -> Option<TimeValue> {
        let t = self.next_time()?;
        if self.last.is_some_and(|(lt, _)| lt == t) {
            self.last = None;
        }
        // Entering a new physical instant: the near ring is necessarily
        // empty (all its entries would precede `t`), so re-key it.
        self.near_femtos = t.as_femtos();
        let mut merge = std::mem::take(&mut self.merge);
        merge.clear();
        let mut i = 0;
        while i < self.near.len() {
            if self.near[i].0 == t {
                let (_, seq, b) = self.near.swap_remove(i);
                merge.push((seq, b));
            } else {
                i += 1;
            }
        }
        while let Some(&Reverse((ht, seq, b))) = self.heap.peek() {
            if ht != t {
                break;
            }
            self.heap.pop();
            merge.push((seq, b));
        }
        // Replay buckets in creation order so scheduling order survives
        // the merge of same-timestamp buckets.
        merge.sort_unstable_by_key(|&(seq, _)| seq);
        for &(_, b) in &merge {
            let bucket = &mut self.buckets[b as usize];
            self.events -= bucket.drives.len() + bucket.wakes.len();
            drives.append(&mut bucket.drives);
            wakes.append(&mut bucket.wakes);
            debug_assert!(bucket.is_empty());
            self.free.push(b);
        }
        self.merge = merge;
        Some(t)
    }
}

/// Whether enqueue-time drive dropping is sound for this module.
///
/// The short-circuit in [`SchedCore::schedule_drive`] drops a drive that
/// targets the *next delta step* and re-writes the signal's current value,
/// provided no other drive of that signal is pending. The only events that
/// could sneak in between "now" and the next delta step are epsilon-delay
/// events, and every runtime delay originates from a `const time`
/// instruction (time arithmetic can only add such constants), so a module
/// whose time constants all have a zero epsilon component can never
/// observe the drop.
pub fn module_allows_drive_dropping(module: &Module) -> bool {
    for id in module.units() {
        let unit = module.unit(id);
        for block in unit.blocks() {
            for inst in unit.insts(block) {
                let data = unit.inst_data(inst);
                if data.opcode == Opcode::Const {
                    if let Some(ConstValue::Time(t)) = &data.konst {
                        if t.epsilon() > 0 {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// The engine-independent scheduling state: signal values, the event
/// queue, sensitivity, tracing, and the delta-cycle guard.
///
/// Engines drive it in a simple loop:
///
/// 1. run every instance once for initialization (processes suspend via
///    [`SchedCore::suspend`], drives go through
///    [`SchedCore::schedule_drive`]),
/// 2. call [`SchedCore::next_cycle`] to advance to the next instant; it
///    applies the instant's drives, records the trace, and fills `to_run`
///    with the instances to activate,
/// 3. activate them, repeat until `next_cycle` returns `false`.
///
/// All [`SignalId`]s passed to the core must be **resolved** (through
/// [`ElaboratedDesign::resolve`](crate::design::ElaboratedDesign::resolve));
/// engines pre-resolve their per-instance signal tables at
/// elaboration/compile time so the runtime never chases aliases.
pub struct SchedCore {
    max_time: TimeValue,
    max_deltas_per_instant: u32,
    queue: EventQueue,
    time: TimeValue,
    /// Current value of every signal, by resolved id.
    values: Vec<ConstValue>,
    /// Pending (scheduled but not yet applied) drive count per signal.
    pending: Vec<u32>,
    /// Whether enqueue-time drive dropping is sound for this design.
    allow_drop: bool,
    /// Per signal: whether changes are recorded (trace filter, applied once).
    traced: Vec<bool>,
    /// Static sensitivity: resolved signal -> entity instances.
    sensitivity: Vec<Vec<u32>>,
    /// Dynamic sensitivity: resolved signal -> suspended `(process, token)`.
    watchers: Vec<Vec<(u32, u64)>>,
    /// Per instance: currently suspended in a wait.
    waiting: Vec<bool>,
    /// Per instance: current wait token (stale wake-ups are ignored).
    token: Vec<u64>,
    /// Per instance: epoch of the last `to_run` enqueue (dedup).
    run_stamp: Vec<u32>,
    /// Per signal: epoch of the last change (dedup within an instant).
    change_stamp: Vec<u32>,
    epoch: u32,
    trace: Trace,
    signal_changes: usize,
    deltas_in_instant: u32,
    last_physical: u128,
    drives_buf: Vec<(SignalId, ConstValue)>,
    wakes_buf: Vec<(u32, u64)>,
}

impl SchedCore {
    /// Create a core for `signals` (the elaborated signal table) and
    /// `num_instances` unit instances. `allow_drop` enables the
    /// enqueue-time drive short-circuit; pass the result of
    /// [`module_allows_drive_dropping`] for the module being simulated.
    pub fn new(
        config: &SimConfig,
        signals: &[SignalInfo],
        num_instances: usize,
        allow_drop: bool,
    ) -> Self {
        let values: Vec<ConstValue> = signals.iter().map(|s| s.init.clone()).collect();
        let names: Vec<String> = signals.iter().map(|s| s.name.clone()).collect();
        let traced = names
            .iter()
            .map(|name| {
                config.trace
                    && match &config.trace_filter {
                        None => true,
                        Some(filter) => filter
                            .iter()
                            .any(|f| name == f || name.ends_with(&format!(".{}", f))),
                    }
            })
            .collect();
        let n = signals.len();
        SchedCore {
            max_time: config.max_time,
            max_deltas_per_instant: config.max_deltas_per_instant,
            queue: EventQueue::new(),
            time: TimeValue::ZERO,
            values,
            pending: vec![0; n],
            allow_drop,
            traced,
            sensitivity: vec![Vec::new(); n],
            watchers: vec![Vec::new(); n],
            waiting: vec![false; num_instances],
            token: vec![0; num_instances],
            run_stamp: vec![0; num_instances],
            change_stamp: vec![0; n],
            epoch: 0,
            // The trace interns the signal names once, indexed by resolved
            // signal id; recording a change is then an id-stamped push with
            // no string work (see `Trace::record_id`).
            trace: Trace::with_names(names),
            signal_changes: 0,
            deltas_in_instant: 0,
            last_physical: 0,
            drives_buf: Vec::new(),
            wakes_buf: Vec::new(),
        }
    }

    /// Register `instance` (an entity) as statically sensitive to `signal`.
    pub fn add_entity_sensitivity(&mut self, signal: SignalId, instance: usize) {
        let list = &mut self.sensitivity[signal.0];
        if list.last() != Some(&(instance as u32)) {
            list.push(instance as u32);
        }
    }

    /// The current simulation time.
    pub fn time(&self) -> TimeValue {
        self.time
    }

    /// The current value of a (resolved) signal.
    pub fn value(&self, signal: SignalId) -> &ConstValue {
        &self.values[signal.0]
    }

    /// The number of observed signal value changes so far.
    pub fn signal_changes(&self) -> usize {
        self.signal_changes
    }

    /// Take the recorded trace out of the core, leaving a fresh trace
    /// over the same interned name table so recording stays valid if the
    /// engine keeps stepping after a result snapshot.
    pub fn take_trace(&mut self) -> Trace {
        let names = self.trace.shared_names();
        std::mem::replace(&mut self.trace, Trace::with_shared_names(names))
    }

    /// Move the events recorded since the last drain into `buf`, leaving
    /// the trace's interned name table in place so recording continues.
    /// Streaming trace sinks pull events through this after every step.
    pub fn drain_trace_into(&mut self, buf: &mut Vec<crate::trace::TraceEvent>) {
        self.trace.drain_events_into(buf);
    }


    /// The absolute time `delay` from now, clamped forward to the next
    /// delta step so no event can be scheduled at or before the present.
    fn event_time(&self, delay: &TimeValue) -> TimeValue {
        let at = self.time.advance_by(delay);
        if at <= self.time {
            self.time.advance_by(&TimeValue::from_delta(1))
        } else {
            at
        }
    }

    /// Schedule a drive of `signal` to `value` after `delay`.
    ///
    /// Drives that re-write the signal's current value are dropped before
    /// enqueueing when the drop is unobservable: the drive must target the
    /// immediately next delta step (nothing can execute in between, given
    /// the design schedules no epsilon-delay events), and no other drive
    /// of the signal may be pending (a pending drive could change the
    /// value first, or — if it targets the same instant — must still lose
    /// to this one under last-writer-wins).
    pub fn schedule_drive(&mut self, signal: SignalId, value: ConstValue, delay: &TimeValue) {
        let at = self.event_time(delay);
        if self.allow_drop
            && self.pending[signal.0] == 0
            && at.as_femtos() == self.time.as_femtos()
            && at.delta() == self.time.delta() + 1
            && at.epsilon() == 0
            && self.values[signal.0] == value
        {
            return;
        }
        self.pending[signal.0] += 1;
        self.queue.schedule_drive(at, signal, value);
    }

    /// Suspend `instance` until one of the `observed` signals changes or
    /// the optional `timeout` expires. Returns nothing; the instance shows
    /// up in a later `next_cycle` batch when it wakes.
    pub fn suspend(&mut self, instance: usize, observed: &[SignalId], timeout: Option<&TimeValue>) {
        self.token[instance] += 1;
        let token = self.token[instance];
        self.waiting[instance] = true;
        for &sig in observed {
            let Self {
                watchers,
                waiting,
                token: tokens,
                ..
            } = self;
            let list = &mut watchers[sig.0];
            // Bound the stale-entry build-up on rarely-changing signals.
            if list.len() >= 64 {
                list.retain(|&(i, t)| waiting[i as usize] && tokens[i as usize] == t);
            }
            list.push((instance as u32, token));
        }
        if let Some(delay) = timeout {
            let at = self.event_time(delay);
            self.queue.schedule_wake(at, instance as u32, token);
        }
    }

    /// Advance to the next instant: pop its events, apply the drives
    /// (recording changes into the trace), and fill `to_run` with the
    /// instances to activate, in deterministic order. Returns `false`
    /// when the queue is exhausted or the next instant lies beyond the
    /// configured end time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] when the delta-cycle limit within one
    /// physical instant is exceeded.
    pub fn next_cycle(&mut self, to_run: &mut Vec<u32>) -> Result<bool, SimError> {
        to_run.clear();
        let event_time = match self.queue.next_time() {
            Some(t) => t,
            None => return Ok(false),
        };
        if event_time > self.max_time {
            return Ok(false);
        }
        let mut drives = std::mem::take(&mut self.drives_buf);
        let mut wakes = std::mem::take(&mut self.wakes_buf);
        drives.clear();
        wakes.clear();
        self.queue.pop_next(&mut drives, &mut wakes);

        // Guard against unbounded delta cycles within one physical instant.
        if event_time.as_femtos() == self.last_physical {
            self.deltas_in_instant += 1;
            if self.deltas_in_instant > self.max_deltas_per_instant {
                return Err(SimError::Runtime(format!(
                    "delta cycle limit exceeded at {}",
                    event_time
                )));
            }
        } else {
            self.last_physical = event_time.as_femtos();
            self.deltas_in_instant = 0;
        }
        self.time = event_time;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely long runs wrap the epoch; reset the stamps to 0,
            // which is never used as an epoch (the wrap skips it), so no
            // stale stamp can ever alias a live epoch.
            self.run_stamp.iter_mut().for_each(|s| *s = 0);
            self.change_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        let epoch = self.epoch;

        for (signal, value) in drives.drain(..) {
            let s = signal.0;
            self.pending[s] -= 1;
            if self.values[s] == value {
                continue;
            }
            self.values[s] = value.clone();
            self.signal_changes += 1;
            if self.traced[s] {
                self.trace.record_id(event_time, s as u32, value);
            }
            if self.change_stamp[s] == epoch {
                continue;
            }
            self.change_stamp[s] = epoch;
            // Entities statically sensitive to this signal.
            for &inst in &self.sensitivity[s] {
                if self.run_stamp[inst as usize] != epoch {
                    self.run_stamp[inst as usize] = epoch;
                    to_run.push(inst);
                }
            }
            // Processes currently waiting on it. Every live entry wakes,
            // and dead entries are stale, so the whole list drains.
            for (inst, token) in self.watchers[s].drain(..) {
                let i = inst as usize;
                if self.waiting[i] && self.token[i] == token {
                    self.waiting[i] = false;
                    if self.run_stamp[i] != epoch {
                        self.run_stamp[i] = epoch;
                        to_run.push(inst);
                    }
                }
            }
        }
        for (inst, token) in wakes.drain(..) {
            let i = inst as usize;
            if self.waiting[i] && self.token[i] == token {
                self.waiting[i] = false;
                if self.run_stamp[i] != epoch {
                    self.run_stamp[i] = epoch;
                    to_run.push(inst);
                }
            }
        }
        self.drives_buf = drives;
        self.wakes_buf = wakes;
        Ok(true)
    }

    /// The trace events recorded since the last drain, without consuming
    /// them (checkpointing serializes these so a restored engine's final
    /// trace is byte-identical to an uninterrupted run's).
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.events()
    }

    /// Serialize the core's complete dynamic state — time, signal values,
    /// pending counters, wait registrations, undrained trace events, and
    /// the event queue — into `out`. Static state (sensitivity lists,
    /// trace filters, limits) is *not* included: it is a pure function of
    /// design + config and is rebuilt by engine construction, which is
    /// why [`SchedCore::restore_snapshot`] requires a core built over the
    /// same design with the same config.
    pub fn snapshot(&self, out: &mut Vec<u8>) {
        write_time(out, &self.time);
        write_varint(out, self.values.len() as u128);
        for value in &self.values {
            encode_const_value(out, value);
        }
        for &pending in &self.pending {
            write_varint(out, pending as u128);
        }
        for list in &self.watchers {
            write_varint(out, list.len() as u128);
            for &(inst, token) in list {
                write_varint(out, inst as u128);
                write_varint(out, token as u128);
            }
        }
        write_varint(out, self.waiting.len() as u128);
        for &waiting in &self.waiting {
            out.push(waiting as u8);
        }
        for &token in &self.token {
            write_varint(out, token as u128);
        }
        write_varint(out, self.signal_changes as u128);
        write_varint(out, self.deltas_in_instant as u128);
        write_varint(out, self.last_physical);
        let events = self.trace.events();
        write_varint(out, events.len() as u128);
        for event in events {
            write_time(out, &event.time);
            write_varint(out, event.signal as u128);
            encode_const_value(out, &event.value);
        }
        // The event queue: every pending instant as (placement, time, seq,
        // drives, wakes), in sequence order. Placement (near ring vs.
        // heap) is recorded because two buckets at the *same* timestamp
        // can live on different sides, and `bucket_at` appends to a found
        // near bucket but never searches the heap — replaying placement
        // keeps future same-instant scheduling byte-identical.
        let mut entries: Vec<(u64, TimeValue, u32, bool)> = self
            .queue
            .near
            .iter()
            .map(|&(t, seq, b)| (seq, t, b, true))
            .chain(
                self.queue
                    .heap
                    .iter()
                    .map(|&Reverse((t, seq, b))| (seq, t, b, false)),
            )
            .collect();
        entries.sort_unstable_by_key(|&(seq, _, _, _)| seq);
        write_varint(out, self.queue.seq as u128);
        write_varint(out, entries.len() as u128);
        for (seq, time, bucket, near) in entries {
            out.push(near as u8);
            write_time(out, &time);
            write_varint(out, seq as u128);
            let bucket = &self.queue.buckets[bucket as usize];
            write_varint(out, bucket.drives.len() as u128);
            for (signal, value) in &bucket.drives {
                write_varint(out, signal.0 as u128);
                encode_const_value(out, value);
            }
            write_varint(out, bucket.wakes.len() as u128);
            for &(inst, token) in &bucket.wakes {
                write_varint(out, inst as u128);
                write_varint(out, token as u128);
            }
        }
    }

    /// Restore a [`SchedCore::snapshot`] into this core, replacing all
    /// dynamic state. The core must have been built over the same design
    /// (same signal and instance counts) with the same config; otherwise
    /// an error is returned and the core is left in an unspecified state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on truncated or mismatching input.
    pub fn restore_snapshot(&mut self, bytes: &[u8], pos: &mut usize) -> Result<(), SimError> {
        let time = read_time(bytes, pos)?;
        let num_signals = read_usize(bytes, pos)?;
        if num_signals != self.values.len() {
            return Err(SimError::Runtime(format!(
                "checkpoint is for a design with {} signals, this design has {}",
                num_signals,
                self.values.len()
            )));
        }
        self.time = time;
        for value in &mut self.values {
            *value = read_const(bytes, pos)?;
        }
        for pending in &mut self.pending {
            *pending = read_usize(bytes, pos)? as u32;
        }
        for list in &mut self.watchers {
            let n = read_usize(bytes, pos)?;
            list.clear();
            list.reserve(n.min(4096));
            for _ in 0..n {
                let inst = read_usize(bytes, pos)? as u32;
                let token = read_u128(bytes, pos)? as u64;
                list.push((inst, token));
            }
        }
        let num_instances = read_usize(bytes, pos)?;
        if num_instances != self.waiting.len() {
            return Err(SimError::Runtime(format!(
                "checkpoint is for a design with {} instances, this design has {}",
                num_instances,
                self.waiting.len()
            )));
        }
        for waiting in &mut self.waiting {
            *waiting = read_byte(bytes, pos)? != 0;
        }
        for token in &mut self.token {
            *token = read_u128(bytes, pos)? as u64;
        }
        self.signal_changes = read_usize(bytes, pos)?;
        self.deltas_in_instant = read_usize(bytes, pos)? as u32;
        self.last_physical = read_u128(bytes, pos)?;
        // Dedup stamps are meaningful only *within* one `next_cycle`; at a
        // checkpoint boundary they are stale by construction, so restore
        // resets them to 0 (never used as an epoch — the wrap skips it).
        self.epoch = 0;
        self.run_stamp.iter_mut().for_each(|s| *s = 0);
        self.change_stamp.iter_mut().for_each(|s| *s = 0);
        let num_events = read_usize(bytes, pos)?;
        self.trace = Trace::with_shared_names(self.trace.shared_names());
        for _ in 0..num_events {
            let time = read_time(bytes, pos)?;
            let signal = read_usize(bytes, pos)? as u32;
            let value = read_const(bytes, pos)?;
            if (signal as usize) >= num_signals {
                return Err(SimError::Runtime(
                    "corrupt engine checkpoint: trace signal out of range".to_string(),
                ));
            }
            self.trace.record_id(time, signal, value);
        }
        let queue_seq = read_u128(bytes, pos)? as u64;
        let num_entries = read_usize(bytes, pos)?;
        self.queue = EventQueue::new();
        self.queue.seq = queue_seq;
        self.queue.near_femtos = self.time.as_femtos();
        for _ in 0..num_entries {
            let near = read_byte(bytes, pos)? != 0;
            let entry_time = read_time(bytes, pos)?;
            let seq = read_u128(bytes, pos)? as u64;
            let mut bucket = EventBucket::default();
            let num_drives = read_usize(bytes, pos)?;
            for _ in 0..num_drives {
                let signal = read_usize(bytes, pos)?;
                if signal >= num_signals {
                    return Err(SimError::Runtime(
                        "corrupt engine checkpoint: drive signal out of range".to_string(),
                    ));
                }
                let value = read_const(bytes, pos)?;
                bucket.drives.push((SignalId(signal), value));
            }
            let num_wakes = read_usize(bytes, pos)?;
            for _ in 0..num_wakes {
                let inst = read_usize(bytes, pos)?;
                if inst >= num_instances {
                    return Err(SimError::Runtime(
                        "corrupt engine checkpoint: wake instance out of range".to_string(),
                    ));
                }
                let token = read_u128(bytes, pos)? as u64;
                bucket.wakes.push((inst as u32, token));
            }
            self.queue.events += bucket.drives.len() + bucket.wakes.len();
            let b = self.queue.buckets.len() as u32;
            self.queue.buckets.push(bucket);
            if near {
                self.queue.near.push((entry_time, seq, b));
            } else {
                self.queue.heap.push(Reverse((entry_time, seq, b)));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Deferred core access: the island-parallel activation path
// ---------------------------------------------------------------------------

/// How a running activation talks to the scheduling core.
///
/// Both engines' activation paths are generic over this trait and
/// monomorphize twice: once over [`SchedCore`] itself (the serial loop —
/// identical code to calling the core directly) and once over
/// [`DeferredSink`] (the island-parallel loop, which logs the mutations
/// and replays them on the main thread; see [`run_instant_parallel`]).
pub trait CoreSink {
    /// The current value of a (resolved) signal.
    fn value(&self, signal: SignalId) -> &ConstValue;
    /// Schedule a drive of `signal` to `value` after `delay`.
    fn schedule_drive(&mut self, signal: SignalId, value: ConstValue, delay: &TimeValue);
    /// Suspend `instance` until one of the `observed` signals changes or
    /// the optional `timeout` expires.
    fn suspend(&mut self, instance: usize, observed: &[SignalId], timeout: Option<&TimeValue>);
}

impl CoreSink for SchedCore {
    #[inline]
    fn value(&self, signal: SignalId) -> &ConstValue {
        SchedCore::value(self, signal)
    }
    #[inline]
    fn schedule_drive(&mut self, signal: SignalId, value: ConstValue, delay: &TimeValue) {
        SchedCore::schedule_drive(self, signal, value, delay)
    }
    #[inline]
    fn suspend(&mut self, instance: usize, observed: &[SignalId], timeout: Option<&TimeValue>) {
        SchedCore::suspend(self, instance, observed, timeout)
    }
}

/// One core mutation recorded by a [`DeferredSink`].
enum CoreOp {
    Drive(SignalId, ConstValue, TimeValue),
    Suspend(u32, Vec<SignalId>, Option<TimeValue>),
}

/// The core mutations of one deferred activation, in program order.
#[derive(Default)]
pub struct CoreLog {
    ops: Vec<CoreOp>,
}

impl CoreLog {
    /// Apply the logged mutations to `core`, in the order they were made.
    pub fn replay(self, core: &mut SchedCore) {
        for op in self.ops {
            match op {
                CoreOp::Drive(signal, value, delay) => core.schedule_drive(signal, value, &delay),
                CoreOp::Suspend(inst, observed, timeout) => {
                    core.suspend(inst as usize, &observed, timeout.as_ref())
                }
            }
        }
    }
}

/// A [`CoreSink`] that reads from a shared core but *logs* mutations
/// instead of applying them.
///
/// This is what makes island-parallel instants byte-identical to serial
/// execution: during an instant's activation phase the core's signal
/// values never change (drives apply only at the next
/// [`SchedCore::next_cycle`], which also does all trace recording), so
/// concurrent readers observe exactly what serial activations would. The
/// only mutations an activation performs — drive scheduling and wait
/// registration — are logged per-activation and replayed on the main
/// thread in the exact position order of the serial loop, which
/// reproduces the serial queue state (bucket sequence numbers,
/// drop-short-circuit decisions, last-writer-wins order) bit for bit.
pub struct DeferredSink<'a> {
    core: &'a SchedCore,
    log: CoreLog,
}

impl<'a> DeferredSink<'a> {
    /// A sink reading from `core`, starting with an empty log.
    pub fn new(core: &'a SchedCore) -> Self {
        DeferredSink {
            core,
            log: CoreLog::default(),
        }
    }

    /// The recorded mutations.
    pub fn into_log(self) -> CoreLog {
        self.log
    }
}

impl CoreSink for DeferredSink<'_> {
    fn value(&self, signal: SignalId) -> &ConstValue {
        self.core.value(signal)
    }
    fn schedule_drive(&mut self, signal: SignalId, value: ConstValue, delay: &TimeValue) {
        self.log.ops.push(CoreOp::Drive(signal, value, *delay));
    }
    fn suspend(&mut self, instance: usize, observed: &[SignalId], timeout: Option<&TimeValue>) {
        self.log
            .ops
            .push(CoreOp::Suspend(instance as u32, observed.to_vec(), timeout.copied()));
    }
}

/// The outcome of one island-parallel instant: the per-worker scratch
/// values (for the caller to fold into its counters) and the first error
/// in serial position order, if any.
pub struct ParallelInstant<Scr> {
    /// One scratch per worker that ran, in no particular order. Callers
    /// fold these into their counters; the fold must therefore be
    /// order-independent (plain sums are).
    pub scratches: Vec<Scr>,
    /// `Ok`, or the error of the earliest erroring activation in serial
    /// position order — the same error the serial loop would surface.
    pub result: Result<(), SimError>,
}

/// What one worker brings back from its share of an instant.
struct WorkerOut<Scr> {
    /// `(serial position, log)` per activation the worker ran.
    logs: Vec<(u32, CoreLog)>,
    scratch: Scr,
    err: Option<(u32, SimError)>,
}

fn run_bucket<St, Scr, F>(
    core: &SchedCore,
    list: Vec<(u32, u32, &mut St)>,
    mut scratch: Scr,
    activate: &F,
) -> WorkerOut<Scr>
where
    F: Fn(&mut St, &mut Scr, u32, &mut DeferredSink) -> Result<(), SimError>,
{
    let mut logs = Vec::with_capacity(list.len());
    let mut err = None;
    for (pos, inst, st) in list {
        let mut sink = DeferredSink::new(core);
        let result = activate(st, &mut scratch, inst, &mut sink);
        logs.push((pos, sink.into_log()));
        if let Err(e) = result {
            // Stop at the first error, exactly like the serial loop; the
            // merge discards every position after the earliest error
            // anyway.
            err = Some((pos, e));
            break;
        }
    }
    WorkerOut { logs, scratch, err }
}

/// Run one instant's activations on a scoped worker pool, bucketed by
/// sensitivity island, and replay their logged core mutations in serial
/// position order (see [`DeferredSink`] for why that reproduces serial
/// execution byte for byte).
///
/// `to_run` is the batch produced by [`SchedCore::next_cycle`] (each
/// instance appears at most once), `states` the caller's per-instance
/// state table, `island_of` the per-instance island assignment, and
/// `threads` the worker budget (capped at 64). Buckets are formed as
/// `island % threads`, the calling thread runs the first non-empty bucket
/// itself, and each worker processes its activations in serial position
/// order with a fresh scratch from `make_scratch`.
///
/// Returns `None` — *without having run anything* — when the instant is
/// not worth parallelizing (fewer than two occupied buckets or fewer than
/// two threads); the caller then runs its serial loop. On `Some`, all
/// completed activations' mutations have been replayed into `core`.
///
/// # Errors
///
/// An erroring activation terminates its bucket. The merge replays every
/// position before the earliest error, then the erroring activation's
/// partial log (serial execution applies an activation's mutations as it
/// goes, so the ops preceding the error did land), and discards the
/// rest; the error is returned in [`ParallelInstant::result`]. Buckets
/// past the error may already have run activations the serial loop never
/// reached — their `states` mutations and scratch counts survive — so an
/// erroring parallel instant is *not* bit-identical to an erroring
/// serial one. That divergence is unobservable: both engines poison
/// themselves on a step error, and a poisoned engine refuses `finish`
/// and `checkpoint`.
///
/// # Panics
///
/// A panicking activation propagates to the caller once all workers have
/// been joined, same as a panic in the serial loop (the server's
/// catch-unwind isolation applies either way).
pub fn run_instant_parallel<St, Scr, F>(
    core: &mut SchedCore,
    to_run: &[u32],
    states: &mut [St],
    island_of: &[u32],
    threads: usize,
    make_scratch: impl Fn() -> Scr,
    activate: F,
) -> Option<ParallelInstant<Scr>>
where
    St: Send,
    Scr: Send,
    F: Fn(&mut St, &mut Scr, u32, &mut DeferredSink) -> Result<(), SimError> + Sync,
{
    let threads = threads.clamp(1, 64);
    if threads < 2 || to_run.len() < 2 {
        return None;
    }
    // Bucket the instant's activations by island, preserving serial
    // position order within each bucket.
    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); threads];
    for (pos, &inst) in to_run.iter().enumerate() {
        let island = island_of.get(inst as usize).copied().unwrap_or(0);
        buckets[island as usize % threads].push((pos as u32, inst));
    }
    if buckets.iter().filter(|b| !b.is_empty()).count() < 2 {
        return None;
    }
    // Hand each bucket exclusive `&mut` access to its instances' states.
    // `next_cycle` dedups `to_run` (run stamps), so every instance slot
    // is taken at most once.
    let mut slots: Vec<Option<&mut St>> = states.iter_mut().map(Some).collect();
    // One worker job: the bucket's (serial position, instance, state)
    // triples plus that worker's private scratch.
    type Job<'s, St, Scr> = (Vec<(u32, u32, &'s mut St)>, Scr);
    let mut jobs: Vec<Job<'_, St, Scr>> = Vec::new();
    for bucket in buckets {
        if bucket.is_empty() {
            continue;
        }
        let mut list = Vec::with_capacity(bucket.len());
        for (pos, inst) in bucket {
            let st = slots[inst as usize]
                .take()
                .expect("instance appears twice in one to_run batch");
            list.push((pos, inst, st));
        }
        jobs.push((list, make_scratch()));
    }
    let activate = &activate;
    let shared: &SchedCore = core;
    let outs: Vec<WorkerOut<Scr>> = std::thread::scope(|scope| {
        let mut jobs = jobs.into_iter();
        let (first_list, first_scratch) = jobs.next().expect("at least two occupied buckets");
        let handles: Vec<_> = jobs
            .map(|(list, scratch)| scope.spawn(move || run_bucket(shared, list, scratch, activate)))
            .collect();
        // The calling thread is worker zero: with W occupied buckets only
        // W - 1 threads are spawned.
        let mut outs = Vec::with_capacity(handles.len() + 1);
        outs.push(run_bucket(shared, first_list, first_scratch, activate));
        for handle in handles {
            match handle.join() {
                Ok(out) => outs.push(out),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        outs
    });
    // Merge: replay logs in serial position order.
    let mut merged: Vec<Option<CoreLog>> = Vec::with_capacity(to_run.len());
    merged.resize_with(to_run.len(), || None);
    let mut first_err: Option<(u32, SimError)> = None;
    let mut scratches = Vec::with_capacity(outs.len());
    for out in outs {
        for (pos, log) in out.logs {
            merged[pos as usize] = Some(log);
        }
        if let Some((pos, e)) = out.err {
            let earlier = match &first_err {
                None => true,
                Some((p, _)) => pos < *p,
            };
            if earlier {
                first_err = Some((pos, e));
            }
        }
        scratches.push(out.scratch);
    }
    let limit = match &first_err {
        None => to_run.len(),
        Some((p, _)) => *p as usize + 1,
    };
    for log in merged.into_iter().take(limit).flatten() {
        log.replay(core);
    }
    Some(ParallelInstant {
        scratches,
        result: match first_err {
            None => Ok(()),
            Some((_, e)) => Err(e),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(i: usize) -> SignalId {
        SignalId(i)
    }

    fn v(x: u64) -> ConstValue {
        ConstValue::int(16, x)
    }

    #[test]
    fn pops_in_time_delta_epsilon_order() {
        let mut q = EventQueue::new();
        let times = [
            TimeValue::new(2_000, 0, 0),
            TimeValue::new(1_000, 1, 0),
            TimeValue::new(1_000, 0, 1),
            TimeValue::new(1_000, 0, 0),
            TimeValue::new(1_000, 1, 2),
            TimeValue::new(3_000, 0, 0),
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule_drive(t, sig(i), v(i as u64));
        }
        let mut popped = vec![];
        let (mut drives, mut wakes) = (vec![], vec![]);
        while let Some(t) = q.pop_next(&mut drives, &mut wakes) {
            popped.push(t);
        }
        let mut sorted = times.to_vec();
        sorted.sort();
        assert_eq!(popped, sorted);
        assert_eq!(drives.len(), times.len());
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_events_batch_into_one_pop() {
        let mut q = EventQueue::new();
        let t = TimeValue::new(5_000, 0, 0);
        let u = TimeValue::new(9_000, 0, 0);
        // Interleave two timestamps so `t` accumulates several buckets.
        q.schedule_drive(t, sig(0), v(1));
        q.schedule_drive(u, sig(9), v(9));
        q.schedule_drive(t, sig(1), v(2));
        q.schedule_wake(t, 7, 42);
        q.schedule_drive(t, sig(2), v(3));
        assert_eq!(q.len(), 5);
        let (mut drives, mut wakes) = (vec![], vec![]);
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(t));
        // All four `t` events arrive in one pop, in scheduling order.
        assert_eq!(
            drives.iter().map(|&(s, _)| s.0).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(wakes, vec![(7, 42)]);
        drives.clear();
        wakes.clear();
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(u));
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn near_fast_path_handles_current_instant_deltas() {
        let mut q = EventQueue::new();
        let t0 = TimeValue::new(1_000, 0, 0);
        q.schedule_drive(t0, sig(0), v(0));
        let (mut drives, mut wakes) = (vec![], vec![]);
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(t0));
        // Delta and epsilon steps within the same femtosecond pop in order.
        let d1 = TimeValue::new(1_000, 1, 0);
        let e1 = TimeValue::new(1_000, 0, 1);
        q.schedule_drive(d1, sig(1), v(1));
        q.schedule_drive(e1, sig(2), v(2));
        drives.clear();
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(e1));
        drives.clear();
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(d1));
        assert!(q.is_empty());
    }

    #[test]
    fn buckets_are_reused_after_pops() {
        let mut q = EventQueue::new();
        let (mut drives, mut wakes) = (vec![], vec![]);
        // A clock-like workload: one instant in flight at a time.
        for step in 0..1_000u64 {
            q.schedule_drive(
                TimeValue::new(1_000 * (step as u128 + 1), 0, 0),
                sig(0),
                v(step),
            );
            drives.clear();
            q.pop_next(&mut drives, &mut wakes).unwrap();
            assert_eq!(drives.len(), 1);
        }
        assert!(
            q.allocated_buckets() <= 2,
            "buckets must be recycled, got {}",
            q.allocated_buckets()
        );
    }

    #[test]
    fn merged_same_time_buckets_preserve_scheduling_order() {
        let mut q = EventQueue::new();
        let t = TimeValue::new(4_000, 2, 0);
        // Alternate with another time so the `last` cache misses and `t`
        // gets several distinct buckets (heap path).
        for i in 0..6u64 {
            q.schedule_drive(t, sig(0), v(i));
            q.schedule_drive(TimeValue::new(8_000, 0, 0), sig(1), v(i));
        }
        let (mut drives, mut wakes) = (vec![], vec![]);
        assert_eq!(q.pop_next(&mut drives, &mut wakes), Some(t));
        let order: Vec<_> = drives.iter().map(|(_, val)| val.clone()).collect();
        assert_eq!(order, (0..6).map(v).collect::<Vec<_>>());
    }

    fn test_core(num_signals: usize, num_instances: usize) -> SchedCore {
        let signals: Vec<SignalInfo> = (0..num_signals)
            .map(|i| SignalInfo {
                name: format!("s{}", i),
                ty: llhd::ty::signal_ty(llhd::ty::int_ty(16)),
                init: v(0),
            })
            .collect();
        SchedCore::new(&SimConfig::default(), &signals, num_instances, false)
    }

    /// The same synthetic workload driven serially through the core and
    /// in parallel through `run_instant_parallel` must leave both cores
    /// with identical snapshots: every instance drives its own signal
    /// with a value derived from a shared read, and odd instances also
    /// suspend on a neighbour's signal.
    #[test]
    fn parallel_instant_replay_matches_serial() {
        let n = 8usize;
        // Serial reference.
        let mut serial = test_core(n, n);
        let mut serial_states: Vec<u64> = (0..n as u64).collect();
        let to_run: Vec<u32> = (0..n as u32).collect();
        for &inst in &to_run {
            let st = &mut serial_states[inst as usize];
            body(&mut serial, st, inst);
        }
        // Parallel run: islands = instance parity, 4 threads.
        let mut par = test_core(n, n);
        let mut par_states: Vec<u64> = (0..n as u64).collect();
        let island_of: Vec<u32> = (0..n as u32).map(|i| i % 4).collect();
        let outcome = run_instant_parallel(
            &mut par,
            &to_run,
            &mut par_states,
            &island_of,
            4,
            || (),
            |st, _scr, inst, sink| {
                body_sink(sink, st, inst);
                Ok(())
            },
        )
        .expect("4 islands over 4 threads must parallelize");
        outcome.result.unwrap();
        assert_eq!(serial_states, par_states);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        serial.snapshot(&mut a);
        par.snapshot(&mut b);
        assert_eq!(a, b, "parallel replay must reproduce the serial core");
    }

    fn body(core: &mut SchedCore, st: &mut u64, inst: u32) {
        body_sink(core, st, inst);
    }

    /// One synthetic activation: read a shared signal, drive your own,
    /// and (odd instances) suspend on a neighbour with a timeout.
    fn body_sink<S: CoreSink>(sink: &mut S, st: &mut u64, inst: u32) {
        let shared = (sink.value(sig(0)) == &v(0)) as u64;
        *st = st.wrapping_mul(31).wrapping_add(shared + inst as u64);
        let delay = TimeValue::new(1_000 * (1 + inst as u128 % 3), 0, 0);
        sink.schedule_drive(sig(inst as usize), v(*st), &delay);
        if inst % 2 == 1 {
            let observed = [sig((inst as usize + 1) % 8)];
            sink.suspend(inst as usize, &observed, Some(&delay));
        }
    }
}
