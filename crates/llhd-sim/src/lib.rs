//! # llhd-sim — the LLHD reference simulator
//!
//! An event-driven interpreter for LLHD designs, deliberately built as the
//! simplest possible simulator of the instruction set (§6.1 of the paper).
//! It supports all three dialects: Behavioural processes (including
//! testbenches with waits, variables, and function calls), Structural
//! entities with `reg` storage elements, and Netlist entities.
//!
//! The flow is: [`elaborate`](design::elaborate) a [`Module`](llhd::ir::Module)
//! starting from a top-level unit into a flat design (signals + unit
//! instances), then run it with a [`Simulator`](engine::Simulator).
//!
//! ```
//! use llhd::assembly::parse_module;
//! use llhd_sim::{simulate, SimConfig};
//!
//! let module = parse_module(r#"
//! proc @blink () -> (i1$ %led) {
//! entry:
//!     %on = const i1 1
//!     %off = const i1 0
//!     %delay = const time 5ns
//!     drv i1$ %led, %on after %delay
//!     wait %next for %delay
//! next:
//!     drv i1$ %led, %off after %delay
//!     wait %entry for %delay
//! }
//! "#).unwrap();
//! let result = simulate(&module, "blink", &SimConfig::until_nanos(100)).unwrap();
//! assert!(result.trace.changes_of("led").count() >= 18);
//! ```

pub mod design;
pub mod engine;
pub mod sched;
pub mod trace;

pub use design::{elaborate, ElaborateError, ElaboratedDesign, SignalId};
pub use sched::{EventQueue, SchedCore};
pub use engine::{SimConfig, SimError, SimResult, Simulator};
pub use trace::{Trace, TraceEvent};

use llhd::ir::Module;

/// Elaborate `top` from `module` and simulate it with the given
/// configuration. This is the convenience entry point used by examples,
/// benchmarks, and tests.
///
/// # Errors
///
/// Returns an error if elaboration fails (unknown top unit, malformed
/// hierarchy) or the simulation encounters an unsupported construct.
pub fn simulate(module: &Module, top: &str, config: &SimConfig) -> Result<SimResult, SimError> {
    let design = elaborate(module, top).map_err(SimError::Elaborate)?;
    let mut simulator = Simulator::new(module, design, config.clone());
    simulator.run()
}
