//! # llhd-sim — the LLHD reference simulator
//!
//! An event-driven interpreter for LLHD designs, deliberately built as the
//! simplest possible simulator of the instruction set (§6.1 of the paper).
//! It supports all three dialects: Behavioural processes (including
//! testbenches with waits, variables, and function calls), Structural
//! entities with `reg` storage elements, and Netlist entities.
//!
//! The engine-agnostic entry point is [`api::SimSession`]: it owns
//! elaboration, engine selection (this interpreter or the compiled
//! `llhd-blaze` engine), run limits, and trace configuration in one place:
//!
//! ```
//! use llhd::assembly::parse_module;
//! use llhd_sim::api::SimSession;
//!
//! let module = parse_module(r#"
//! proc @blink () -> (i1$ %led) {
//! entry:
//!     %on = const i1 1
//!     %off = const i1 0
//!     %delay = const time 5ns
//!     drv i1$ %led, %on after %delay
//!     wait %next for %delay
//! next:
//!     drv i1$ %led, %off after %delay
//!     wait %entry for %delay
//! }
//! "#).unwrap();
//! let result = SimSession::builder(&module, "blink")
//!     .until_nanos(100)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(result.trace.changes_of("led").count() >= 18);
//! ```
//!
//! Underneath, [`design::elaborate`] flattens a [`llhd::ir::Module`]
//! into signals + unit instances, and an [`engine::Simulator`]
//! interprets it.

pub mod api;
pub mod design;
pub mod engine;
pub mod islands;
pub mod query;
pub mod sched;
pub mod trace;

pub use api::{BatchJob, DesignCache, EngineKind, EngineState, SimSession, TraceSink};
pub use design::{elaborate, ElaborateError, ElaboratedDesign, SignalId};
pub use islands::{IslandInfo, IslandPlan};
pub use query::DesignQuery;
pub use engine::{RunControl, SimConfig, SimError, SimResult, Simulator};
pub use sched::{EventQueue, SchedCore};
pub use trace::{Trace, TraceEvent};
