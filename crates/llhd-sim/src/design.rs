//! Design elaboration.
//!
//! Elaboration turns a hierarchical [`Module`] into a flat design: a table
//! of signal instances and a table of unit instances (processes and
//! entities) with their argument signals resolved. This mirrors what the
//! paper describes for entities: upon initialization all instructions are
//! executed once — signal creation and sub-circuit instantiation happen
//! here, everything else is re-evaluated by the simulation engine.

use llhd::eval::eval_pure;
use llhd::ir::{Module, Opcode, UnitId, UnitKind, Value};
use llhd::ty::Type;
use llhd::value::ConstValue;
use std::collections::HashMap;
use std::fmt;

/// A handle to an elaborated signal instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SignalId(pub usize);

/// A handle to an elaborated unit instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InstanceId(pub usize);

/// Information about one signal instance.
#[derive(Clone, Debug)]
pub struct SignalInfo {
    /// The hierarchical name of the signal.
    pub name: String,
    /// The payload type of the signal.
    pub ty: Type,
    /// The initial value.
    pub init: ConstValue,
}

/// Whether an instance executes as a process or as an entity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstanceKind {
    /// A control-flow process.
    Process,
    /// A data-flow entity.
    Entity,
}

/// One elaborated unit instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The unit this instance executes.
    pub unit: UnitId,
    /// Process or entity.
    pub kind: InstanceKind,
    /// The hierarchical instance path.
    pub name: String,
    /// Mapping from the unit's signal-typed values (arguments, `sig` and
    /// `del` results) to the global signal instances.
    pub signal_map: HashMap<Value, SignalId>,
}

/// A fully elaborated design: flat lists of signals and instances.
#[derive(Clone, Debug, Default)]
pub struct ElaboratedDesign {
    /// All signal instances.
    pub signals: Vec<SignalInfo>,
    /// All unit instances.
    pub instances: Vec<Instance>,
    /// Alias table produced by `con` instructions; `resolve` follows it.
    aliases: Vec<usize>,
}

impl ElaboratedDesign {
    fn add_signal(&mut self, name: String, ty: Type, init: ConstValue) -> SignalId {
        let id = SignalId(self.signals.len());
        self.signals.push(SignalInfo { name, ty, init });
        self.aliases.push(id.0);
        id
    }

    fn connect(&mut self, a: SignalId, b: SignalId) {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        if ra != rb {
            self.aliases[rb.0] = ra.0;
        }
    }

    /// Resolve a signal through any `con` aliases to its canonical
    /// representative.
    pub fn resolve(&self, signal: SignalId) -> SignalId {
        let mut cur = signal.0;
        while self.aliases[cur] != cur {
            cur = self.aliases[cur];
        }
        SignalId(cur)
    }

    /// The number of signal instances (including aliased ones).
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// The number of unit instances.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Find a signal by hierarchical name suffix.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name || s.name.ends_with(&format!(".{}", name)))
            .map(SignalId)
    }
}

/// An error produced during elaboration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ElaborateError {
    /// The requested top unit does not exist in the module.
    UnknownTop(String),
    /// An instantiated unit is not defined in the module.
    UnknownUnit(String),
    /// A construct that elaboration cannot handle.
    Unsupported(String),
}

impl fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match self {
            ElaborateError::UnknownTop(name) => write!(f, "unknown top unit '{}'", name),
            ElaborateError::UnknownUnit(name) => write!(f, "unknown unit '{}'", name),
            ElaborateError::Unsupported(msg) => write!(f, "unsupported construct: {}", msg),
        }
    }
}

impl std::error::Error for ElaborateError {}

/// Elaborate the design rooted at the unit with identifier `top`.
///
/// # Errors
///
/// See [`ElaborateError`].
pub fn elaborate(module: &Module, top: &str) -> Result<ElaboratedDesign, ElaborateError> {
    let top_id = module
        .unit_by_ident(top)
        .ok_or_else(|| ElaborateError::UnknownTop(top.to_string()))?;
    let mut design = ElaboratedDesign::default();
    // Create signals for the top-level ports.
    let unit = module.unit(top_id);
    let mut bound = vec![];
    for arg in unit.args() {
        let ty = unit.value_type(arg);
        if !ty.is_signal() {
            return Err(ElaborateError::Unsupported(format!(
                "top-level argument of non-signal type {}",
                ty
            )));
        }
        let payload = ty.unwrap_signal().clone();
        let name = unit
            .value_name(arg)
            .map(|n| n.to_string())
            .unwrap_or_else(|| format!("port{}", arg.index()));
        let id = design.add_signal(
            format!("{}.{}", top, name),
            payload.clone(),
            ConstValue::zero_of(&payload),
        );
        bound.push(id);
    }
    instantiate(module, top_id, &bound, top.to_string(), &mut design)?;
    Ok(design)
}

/// One elaboration-time item: either a compile-time value or a signal.
#[derive(Clone, Debug)]
enum Item {
    Value(ConstValue),
    Signal(SignalId),
}

fn instantiate(
    module: &Module,
    unit_id: UnitId,
    bound: &[SignalId],
    path: String,
    design: &mut ElaboratedDesign,
) -> Result<InstanceId, ElaborateError> {
    let unit = module.unit(unit_id);
    match unit.kind() {
        UnitKind::Process => {
            let mut signal_map = HashMap::new();
            for (arg, &sig) in unit.args().into_iter().zip(bound) {
                signal_map.insert(arg, sig);
            }
            let id = InstanceId(design.instances.len());
            design.instances.push(Instance {
                unit: unit_id,
                kind: InstanceKind::Process,
                name: path,
                signal_map,
            });
            Ok(id)
        }
        UnitKind::Entity => instantiate_entity(module, unit_id, bound, path, design),
        UnitKind::Function => Err(ElaborateError::Unsupported(
            "functions cannot be instantiated".to_string(),
        )),
    }
}

fn instantiate_entity(
    module: &Module,
    unit_id: UnitId,
    bound: &[SignalId],
    path: String,
    design: &mut ElaboratedDesign,
) -> Result<InstanceId, ElaborateError> {
    let unit = module.unit(unit_id);
    let mut env: HashMap<Value, Item> = HashMap::new();
    for (arg, &sig) in unit.args().into_iter().zip(bound) {
        env.insert(arg, Item::Signal(sig));
    }
    let body = unit
        .entry_block()
        .ok_or_else(|| ElaborateError::Unsupported("entity without body".to_string()))?;
    for inst in unit.insts(body) {
        let data = unit.inst_data(inst);
        match data.opcode {
            Opcode::Const => {
                let result = unit.inst_result(inst);
                env.insert(result, Item::Value(data.konst.clone().unwrap()));
            }
            Opcode::Sig => {
                let result = unit.inst_result(inst);
                let init = match env.get(&data.args[0]) {
                    Some(Item::Value(v)) => v.clone(),
                    _ => ConstValue::zero_of(unit.value_type(data.args[0]).strip()),
                };
                let name = unit
                    .value_name(result)
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| format!("sig{}", result.index()));
                let ty = unit.value_type(data.args[0]);
                let id = design.add_signal(format!("{}.{}", path, name), ty, init);
                env.insert(result, Item::Signal(id));
            }
            Opcode::Del => {
                let result = unit.inst_result(inst);
                let source = match env.get(&data.args[0]) {
                    Some(Item::Signal(s)) => *s,
                    _ => {
                        return Err(ElaborateError::Unsupported(
                            "del of a non-signal value".to_string(),
                        ))
                    }
                };
                let info = design.signals[design.resolve(source).0].clone();
                let name = unit
                    .value_name(result)
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| format!("del{}", result.index()));
                let id = design.add_signal(format!("{}.{}", path, name), info.ty, info.init);
                env.insert(result, Item::Signal(id));
            }
            Opcode::Con => {
                let a = match env.get(&data.args[0]) {
                    Some(Item::Signal(s)) => *s,
                    _ => {
                        return Err(ElaborateError::Unsupported(
                            "con of a non-signal value".to_string(),
                        ))
                    }
                };
                let b = match env.get(&data.args[1]) {
                    Some(Item::Signal(s)) => *s,
                    _ => {
                        return Err(ElaborateError::Unsupported(
                            "con of a non-signal value".to_string(),
                        ))
                    }
                };
                design.connect(a, b);
            }
            Opcode::Prb => {
                // During elaboration a probe yields the initial value of the
                // signal; this is only used if the value feeds another
                // elaboration-time construct.
                if let Some(Item::Signal(sig)) = env.get(&data.args[0]) {
                    let init = design.signals[design.resolve(*sig).0].init.clone();
                    env.insert(unit.inst_result(inst), Item::Value(init));
                }
            }
            Opcode::Inst => {
                let ext = data.ext_unit.unwrap();
                let ext_data = unit.ext_unit_data(ext);
                let child_id = module
                    .unit_by_name(&ext_data.name)
                    .ok_or_else(|| ElaborateError::UnknownUnit(ext_data.name.to_string()))?;
                let mut child_bound = vec![];
                for &arg in &data.args {
                    match env.get(&arg) {
                        Some(Item::Signal(s)) => child_bound.push(*s),
                        _ => {
                            return Err(ElaborateError::Unsupported(
                                "instance argument is not a signal".to_string(),
                            ))
                        }
                    }
                }
                let child_name = ext_data
                    .name
                    .ident()
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("u{}", child_id.index()));
                instantiate(
                    module,
                    child_id,
                    &child_bound,
                    format!("{}.{}", path, child_name),
                    design,
                )?;
            }
            Opcode::Drv | Opcode::DrvCond | Opcode::Reg | Opcode::Call => {
                // Runtime behaviour, handled by the engine.
            }
            op if op.is_pure() => {
                // Evaluate if all operands are elaboration-time values.
                let mut args = Vec::with_capacity(data.args.len());
                let mut ok = true;
                for &a in &data.args {
                    match env.get(&a) {
                        Some(Item::Value(v)) => args.push(v.clone()),
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    if let Some(value) = eval_pure(op, &args, &data.imms) {
                        if let Some(result) = unit.get_inst_result(inst) {
                            env.insert(result, Item::Value(value));
                        }
                    }
                }
            }
            op => {
                return Err(ElaborateError::Unsupported(format!(
                    "instruction {} in entity",
                    op
                )))
            }
        }
    }
    let signal_map = env
        .into_iter()
        .filter_map(|(value, item)| match item {
            Item::Signal(sig) => Some((value, sig)),
            Item::Value(_) => None,
        })
        .collect();
    let id = InstanceId(design.instances.len());
    design.instances.push(Instance {
        unit: unit_id,
        kind: InstanceKind::Entity,
        name: path,
        signal_map,
    });
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;

    const ACC_DESIGN: &str = r#"
        proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
        init:
            %clk0 = prb i1$ %clk
            wait %init, %clk
        }
        entity @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
            %qp = prb i32$ %q
        }
        entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
            %zero = const i32 0
            %d = sig i32 %zero
            inst @acc_ff (%clk, %d) -> (%q)
            inst @acc_comb (%q, %x, %en) -> (%d)
        }
    "#;

    #[test]
    fn elaborates_hierarchy() {
        let module = parse_module(ACC_DESIGN).unwrap();
        let design = elaborate(&module, "acc").unwrap();
        // 4 top-level ports + 1 internal signal.
        assert_eq!(design.num_signals(), 5);
        // acc + acc_ff + acc_comb.
        assert_eq!(design.num_instances(), 3);
        assert!(design.signal_by_name("d").is_some());
        assert!(design.signal_by_name("clk").is_some());
        let ff = design
            .instances
            .iter()
            .find(|i| i.name.ends_with("acc_ff"))
            .unwrap();
        assert_eq!(ff.kind, InstanceKind::Process);
        assert_eq!(ff.signal_map.len(), 3);
        // The child's %d argument is bound to the parent's internal signal.
        let d = design.signal_by_name("d").unwrap();
        assert!(ff.signal_map.values().any(|&s| s == d));
    }

    #[test]
    fn unknown_top_is_an_error() {
        let module = parse_module(ACC_DESIGN).unwrap();
        assert!(matches!(
            elaborate(&module, "missing"),
            Err(ElaborateError::UnknownTop(name)) if name == "missing"
        ));
    }

    #[test]
    fn unknown_child_is_an_error() {
        let module = parse_module(
            r#"
            entity @top () -> () {
                %zero = const i1 0
                %s = sig i1 %zero
                inst @missing (%s) -> ()
            }
            "#,
        )
        .unwrap();
        assert!(matches!(
            elaborate(&module, "top"),
            Err(ElaborateError::UnknownUnit(_))
        ));
    }

    #[test]
    fn signal_initial_values_come_from_constants() {
        let module = parse_module(
            r#"
            entity @top () -> () {
                %init = const i8 42
                %s = sig i8 %init
            }
            "#,
        )
        .unwrap();
        let design = elaborate(&module, "top").unwrap();
        let s = design.signal_by_name("s").unwrap();
        assert_eq!(design.signals[s.0].init, ConstValue::int(8, 42));
    }

    #[test]
    fn connected_signals_resolve_to_one() {
        let module = parse_module(
            r#"
            entity @top () -> () {
                %zero = const i8 0
                %a = sig i8 %zero
                %b = sig i8 %zero
                con i8$ %a, %b
            }
            "#,
        )
        .unwrap();
        let design = elaborate(&module, "top").unwrap();
        let a = design.signal_by_name("a").unwrap();
        let b = design.signal_by_name("b").unwrap();
        assert_eq!(design.resolve(a), design.resolve(b));
    }

    #[test]
    fn cannot_elaborate_partial_equality_mismatch() {
        // PartialEq needed for the error comparison in tests.
        assert_ne!(
            ElaborateError::UnknownTop("a".into()),
            ElaborateError::UnknownUnit("a".into())
        );
    }
}
