//! The unified, engine-agnostic simulation surface.
//!
//! The paper positions LLHD as a single substrate that many tools consume
//! interchangeably; this module is the corresponding *API* substrate for
//! simulation. Instead of two divergent entry points (the interpreter's
//! `simulate` and blaze's elaborate/compile plumbing), every consumer —
//! tests, benchmarks, examples, batch drivers, a future server mode —
//! builds a [`SimSession`]:
//!
//! ```
//! use llhd::assembly::parse_module;
//! use llhd_sim::api::{EngineKind, SimSession};
//!
//! let module = parse_module(r#"
//! proc @blink () -> (i1$ %led) {
//! entry:
//!     %on = const i1 1
//!     %off = const i1 0
//!     %delay = const time 5ns
//!     drv i1$ %led, %on after %delay
//!     wait %next for %delay
//! next:
//!     drv i1$ %led, %off after %delay
//!     wait %entry for %delay
//! }
//! "#).unwrap();
//! let result = SimSession::builder(&module, "blink")
//!     .engine(EngineKind::Interpret)
//!     .until_nanos(100)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(result.trace.changes_of("led").count() >= 18);
//! ```
//!
//! The pieces:
//!
//! * [`Engine`] — the trait both engines implement: prepare once, then
//!   `step`/`peek`/`poke` with deterministic resume (a run advanced in
//!   chunks is byte-identical to an uninterrupted one).
//! * [`EngineKind`] — `Interpret`, `Compile`, or `Auto`. The compiled
//!   engine lives in `llhd-blaze`, which cannot be a dependency of this
//!   crate (it already depends on us), so it plugs itself in through
//!   [`register_compile_backend`]; `llhd_blaze::register()` does exactly
//!   that.
//! * [`TraceSink`] — streaming trace consumers fed after every step:
//!   the in-memory [`Trace`], an incremental [`VcdSink`], a [`NullSink`],
//!   and a [`ChangeCounter`].
//! * [`DesignCache`] — memoizes elaborated and compiled designs keyed by
//!   module content hash, so repeat simulations of the same module skip
//!   elaboration and `compile_design` entirely.
//! * [`SimSession::run_batch`] — fans a slice of [`BatchJob`]s across std
//!   threads, one worker per core.

use crate::design::{elaborate, ElaborateError, ElaboratedDesign, SignalId, SignalInfo};
use crate::engine::{RunControl, SimConfig, SimError, SimResult, Simulator};
use crate::trace::{write_vcd_change, Trace, TraceEvent};
use llhd::ir::Module;
use llhd::value::{ConstValue, TimeValue};
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// The one error type of the session API. Crate-specific errors
/// ([`ElaborateError`], [`SimError`], blaze's `CompileError`) convert into
/// it, so callers match on variants instead of crate-specific strings.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Error {
    /// Elaboration of the design failed.
    Elaborate(ElaborateError),
    /// Ahead-of-time compilation failed (compiled engine only).
    Compile(String),
    /// The simulation hit an unsupported construct or ran away.
    Runtime(String),
    /// [`EngineKind::Compile`] was requested but no compile backend is
    /// registered (call `llhd_blaze::register()` first).
    BackendUnavailable(String),
    /// A `peek`/`poke` named a signal the design does not contain.
    UnknownSignal(String),
    /// The run used up its wall-clock budget
    /// ([`crate::RunControl::deadline`]). The field carries the
    /// simulation time (in femtoseconds) the run had reached when it was
    /// cut off, so callers can report partial progress.
    DeadlineExceeded {
        /// Simulation time reached before the abort, in femtoseconds.
        time_fs: u128,
    },
    /// The engine (or the code driving it) panicked. The payload is the
    /// panic message; the job that raised it is lost but the process —
    /// and, through [`catch_unwind`](std::panic::catch_unwind) isolation
    /// in [`SimSession::run_batch`], every sibling job — survives.
    Panic(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match self {
            Error::Elaborate(e) => write!(f, "elaboration error: {}", e),
            Error::Compile(msg) => write!(f, "compile error: {}", msg),
            Error::Runtime(msg) => write!(f, "runtime error: {}", msg),
            Error::BackendUnavailable(msg) => write!(f, "no compile backend: {}", msg),
            Error::UnknownSignal(name) => write!(f, "unknown signal '{}'", name),
            Error::DeadlineExceeded { time_fs } => write!(
                f,
                "deadline exceeded: wall-clock budget used up at simulation time {} fs",
                time_fs
            ),
            Error::Panic(msg) => write!(f, "simulation panicked: {}", msg),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Elaborate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ElaborateError> for Error {
    fn from(e: ElaborateError) -> Self {
        Error::Elaborate(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Elaborate(e) => Error::Elaborate(e),
            SimError::Runtime(msg) => Error::Runtime(msg),
            // The raw conversion does not know how far the engine got;
            // the session layer rebuilds the variant with the real time.
            SimError::DeadlineExceeded => Error::DeadlineExceeded { time_fs: 0 },
        }
    }
}

/// Render a panic payload (the `Box<dyn Any>` from
/// [`std::panic::catch_unwind`] or [`std::thread::JoinHandle::join`])
/// into the human-readable message it almost always carries.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&'static str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// The engine trait and backend registry
// ---------------------------------------------------------------------------

/// The common surface of both simulation engines.
///
/// An engine is *prepared once* (construction performs all elaboration- or
/// compile-time work) and then driven incrementally. `step` advances by
/// exactly one scheduler cycle and resuming is deterministic: any chunking
/// of steps produces the same trace, byte for byte, as a single
/// uninterrupted run — both engines share the scheduling core in
/// [`crate::sched`], which is what makes this guarantee cheap.
///
/// Most callers never touch this trait directly — [`SimSession`] wraps it
/// — but generic drivers can hold any engine behind `Box<dyn Engine>`:
///
/// ```
/// use llhd_sim::api::Engine;
/// use llhd_sim::{elaborate, SimConfig, Simulator};
/// use std::sync::Arc;
///
/// let module = llhd::assembly::parse_module(
///     "proc @pulse () -> (i1$ %q) {
///     entry:
///         %on = const i1 1
///         %t = const time 2ns
///         drv i1$ %q, %on after %t
///         halt
///     }",
/// )
/// .unwrap();
/// let design = Arc::new(elaborate(&module, "pulse").unwrap());
/// let mut engine: Box<dyn Engine> = Box::new(Simulator::new(
///     &module,
///     design,
///     SimConfig::until_nanos(10),
/// ));
/// engine.initialize().unwrap();
/// while engine.step().unwrap() {}
/// assert_eq!(engine.finish().signal_changes, 1);
/// ```
pub trait Engine {
    /// A short name for diagnostics ("interp", "blaze").
    fn engine_name(&self) -> &'static str;
    /// Run the initialization phase (idempotent; `step` calls it).
    fn initialize(&mut self) -> Result<(), SimError>;
    /// Advance one scheduler cycle; `false` once the run is exhausted.
    fn step(&mut self) -> Result<bool, SimError>;
    /// The current simulation time.
    fn time(&self) -> TimeValue;
    /// The current value of a signal.
    fn peek(&self, signal: SignalId) -> ConstValue;
    /// Schedule an external drive, taking effect at the next delta step.
    fn poke(&mut self, signal: SignalId, value: ConstValue);
    /// Drain trace events recorded since the last drain into `buf`.
    fn drain_trace_into(&mut self, buf: &mut Vec<TraceEvent>);
    /// Assemble the result of the run so far (stats plus remaining trace).
    fn finish(&mut self) -> SimResult;
    /// Serialize the engine's complete execution state — signal values,
    /// event queue, per-instance state, counters, and undrained trace
    /// events — into an [`EngineState`]. Continuing from a restored
    /// checkpoint produces the identical remaining trace, byte for byte,
    /// to never having checkpointed.
    ///
    /// # Errors
    ///
    /// Fails on a poisoned engine (a prior step failed; there is no
    /// consistent state to capture).
    fn checkpoint(&self) -> Result<EngineState, SimError>;
    /// Replace this engine's execution state with a checkpoint taken from
    /// an engine of the same kind over the same design. The receiving
    /// engine should be freshly constructed with the same config; static
    /// state (sensitivity, compiled code, trace filters) is rebuilt by
    /// construction and only dynamic state is restored.
    ///
    /// # Errors
    ///
    /// Fails when the checkpoint belongs to a different engine kind or a
    /// design of a different shape, or on corrupt bytes.
    fn restore(&mut self, state: &EngineState) -> Result<(), SimError>;
    /// Replace the cooperative [`RunControl`] (wall-clock deadline,
    /// instrumentation probe) consulted between scheduler cycles.
    /// Returns `false` for engines without run-control support; the
    /// default implementation ignores the control.
    fn set_control(&mut self, _control: RunControl) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Engine checkpoints
// ---------------------------------------------------------------------------

/// The magic bytes at the start of every serialized engine checkpoint.
pub const ENGINE_STATE_MAGIC: &[u8; 4] = b"LHCK";
/// The checkpoint format version produced by [`Engine::checkpoint`].
///
/// Version 2 extends the version-1 header with the design's island-plan
/// digest ([`IslandPlan::hash`](crate::islands::IslandPlan::hash)), so a
/// restore onto a differently-partitioned build fails cleanly instead of
/// replaying events under a different merge order. Version-1 checkpoints
/// (no digest) still load; the engines then force the serial instant
/// loop for the restored run, whose merge order is partition-independent.
pub const ENGINE_STATE_VERSION: u8 = 2;

/// A serialized engine execution state, produced by [`Engine::checkpoint`]
/// and consumed by [`Engine::restore`].
///
/// The payload is an opaque binary blob built on the bitcode primitives
/// (varints and the constant codec of [`llhd::bitcode`]): a common header
/// — magic, version, engine name, design shape — followed by the shared
/// scheduler-core section and an engine-specific section. It is
/// self-describing enough to be stored, sent over the wire (the server's
/// `session.checkpoint` hex-encodes it), and validated on restore, but it
/// is *not* a migration format: restore requires the same engine kind
/// over the same design.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EngineState(Vec<u8>);

impl EngineState {
    /// Assemble a checkpoint: the common header identifying `engine`, the
    /// design shape, and the island-plan digest, then whatever `body`
    /// appends.
    pub fn encode(
        engine: &str,
        num_signals: usize,
        num_instances: usize,
        island_plan_hash: u64,
        body: impl FnOnce(&mut Vec<u8>),
    ) -> EngineState {
        use llhd::bitcode::write_varint;
        let mut out = Vec::new();
        out.extend_from_slice(ENGINE_STATE_MAGIC);
        out.push(ENGINE_STATE_VERSION);
        write_varint(&mut out, engine.len() as u128);
        out.extend_from_slice(engine.as_bytes());
        write_varint(&mut out, num_signals as u128);
        write_varint(&mut out, num_instances as u128);
        write_varint(&mut out, island_plan_hash as u128);
        body(&mut out);
        EngineState(out)
    }

    /// Wrap raw checkpoint bytes (e.g. received over the wire), validating
    /// the header.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] when the bytes do not start with a
    /// valid checkpoint header.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<EngineState, SimError> {
        let state = EngineState(bytes);
        state.header()?;
        Ok(state)
    }

    /// The serialized bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// The name of the engine that produced this checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on a corrupt header.
    pub fn engine_name(&self) -> Result<&str, SimError> {
        Ok(self.header()?.0)
    }

    fn header(&self) -> Result<(&str, usize, usize, Option<u64>, usize), SimError> {
        use llhd::bitcode::read_varint;
        let bytes = &self.0;
        let corrupt = || SimError::Runtime("corrupt engine checkpoint header".to_string());
        if bytes.len() < 5 || &bytes[..4] != ENGINE_STATE_MAGIC {
            return Err(SimError::Runtime(
                "not an engine checkpoint (bad magic)".to_string(),
            ));
        }
        let version = bytes[4];
        if !(1..=ENGINE_STATE_VERSION).contains(&version) {
            return Err(SimError::Runtime(format!(
                "unsupported engine checkpoint version {}",
                version
            )));
        }
        let mut pos = 5;
        let name_len = read_varint(bytes, &mut pos).ok_or_else(corrupt)? as usize;
        let name_end = pos.checked_add(name_len).filter(|&e| e <= bytes.len()).ok_or_else(corrupt)?;
        let name = std::str::from_utf8(&bytes[pos..name_end]).map_err(|_| corrupt())?;
        pos = name_end;
        let num_signals = read_varint(bytes, &mut pos).ok_or_else(corrupt)? as usize;
        let num_instances = read_varint(bytes, &mut pos).ok_or_else(corrupt)? as usize;
        // The island-plan digest arrived with version 2; a version-1
        // checkpoint simply has none.
        let plan_hash = if version >= 2 {
            Some(read_varint(bytes, &mut pos).ok_or_else(corrupt)? as u64)
        } else {
            None
        };
        Ok((name, num_signals, num_instances, plan_hash, pos))
    }

    /// Validate the header against the restoring engine and design and
    /// return the offset of the body plus the recorded island-plan digest
    /// (`None` for version-1 checkpoints, which predate the digest — the
    /// engines then force serial execution for the restored run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] when the engine name or the design
    /// shape does not match.
    pub fn validate(
        &self,
        engine: &str,
        num_signals: usize,
        num_instances: usize,
    ) -> Result<(usize, Option<u64>), SimError> {
        let (name, signals, instances, plan_hash, body) = self.header()?;
        if name != engine {
            return Err(SimError::Runtime(format!(
                "checkpoint was taken by engine '{}', cannot restore into '{}'",
                name, engine
            )));
        }
        if signals != num_signals || instances != num_instances {
            return Err(SimError::Runtime(format!(
                "checkpoint is for a design with {} signals / {} instances, \
                 this design has {} / {}",
                signals, instances, num_signals, num_instances
            )));
        }
        Ok((body, plan_hash))
    }

    /// The island-plan digest recorded in the header, or `None` for a
    /// version-1 checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on a corrupt header.
    pub fn island_plan_hash(&self) -> Result<Option<u64>, SimError> {
        Ok(self.header()?.3)
    }
}

impl<'a> Engine for Simulator<'a> {
    fn engine_name(&self) -> &'static str {
        "interp"
    }
    fn initialize(&mut self) -> Result<(), SimError> {
        Simulator::initialize(self)
    }
    fn step(&mut self) -> Result<bool, SimError> {
        Simulator::step(self)
    }
    fn time(&self) -> TimeValue {
        Simulator::time(self)
    }
    fn peek(&self, signal: SignalId) -> ConstValue {
        self.signal_value(signal).clone()
    }
    fn poke(&mut self, signal: SignalId, value: ConstValue) {
        Simulator::poke(self, signal, value)
    }
    fn drain_trace_into(&mut self, buf: &mut Vec<TraceEvent>) {
        Simulator::drain_trace_into(self, buf)
    }
    fn finish(&mut self) -> SimResult {
        Simulator::finish(self)
    }
    fn checkpoint(&self) -> Result<EngineState, SimError> {
        Simulator::checkpoint(self)
    }
    fn restore(&mut self, state: &EngineState) -> Result<(), SimError> {
        Simulator::restore(self, state)
    }
    fn set_control(&mut self, control: RunControl) -> bool {
        self.config_mut().control = control;
        true
    }
}

/// An engine-specific compiled design, type-erased so this crate does not
/// have to know the backend's types. `Send + Sync` so a [`DesignCache`]
/// can serve it across the batch runner's threads.
pub type CompiledArtifact = Arc<dyn Any + Send + Sync>;

/// The `compile` hook of a [`CompileBackend`].
pub type CompileFn = fn(&Module, Arc<ElaboratedDesign>) -> Result<CompiledArtifact, Error>;

/// The `instantiate` hook of a [`CompileBackend`].
pub type InstantiateFn = fn(&CompiledArtifact, &SimConfig) -> Result<Box<dyn Engine>, Error>;

/// The `artifact_bytes` hook of a [`CompileBackend`]: a rough retained-size
/// estimate of a compiled artifact, feeding the [`DesignCache`]'s
/// bytes-ish observability counter. Exactness is not required — return 0
/// if the backend cannot estimate.
pub type ArtifactBytesFn = fn(&CompiledArtifact) -> usize;

/// Per-unit statistics of a compiled artifact, reported through the
/// backend's [`artifact_stats`](CompileBackend::artifact_stats) hook so
/// introspection surfaces (the server's `session.query` stats request)
/// can show what compilation actually did without depending on the
/// backend crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitArtifactStats {
    /// The unit name.
    pub name: String,
    /// `"process"`, `"entity"`, or `"function"`.
    pub kind: &'static str,
    /// Generic compiled operations (the base op stream).
    pub base_ops: usize,
    /// Superinstructions after lowering (0 when the unit is not lowered,
    /// e.g. functions).
    pub superops: usize,
    /// Instances of this unit in the elaborated design.
    pub instances: usize,
    /// Instances that received per-instance specialized code.
    pub specialized_instances: usize,
}

/// The `artifact_stats` hook of a [`CompileBackend`]: per-unit compilation
/// statistics of an artifact. Return an empty vector if the backend keeps
/// none.
pub type ArtifactStatsFn = fn(&CompiledArtifact) -> Vec<UnitArtifactStats>;

/// A pluggable ahead-of-time compilation backend. The compiled engine
/// lives in `llhd-blaze` (which depends on this crate), so the dependency
/// is inverted: blaze registers this vtable via
/// [`register_compile_backend`] and sessions resolve it at build time.
#[derive(Clone, Copy)]
pub struct CompileBackend {
    /// Backend name, for diagnostics.
    pub name: &'static str,
    /// Compile an elaborated design into a reusable, cacheable artifact.
    pub compile: CompileFn,
    /// Instantiate a fresh engine over a (possibly cached) artifact.
    pub instantiate: InstantiateFn,
    /// Estimate an artifact's retained size in bytes (for cache stats).
    pub artifact_bytes: ArtifactBytesFn,
    /// Report per-unit compilation statistics of an artifact.
    pub artifact_stats: ArtifactStatsFn,
}

static COMPILE_BACKEND: OnceLock<CompileBackend> = OnceLock::new();

/// Install the compile backend. Idempotent: the first registration wins,
/// later calls are no-ops (there is one compiled engine in this system).
pub fn register_compile_backend(backend: CompileBackend) {
    let _ = COMPILE_BACKEND.set(backend);
}

/// The registered compile backend, if any.
pub fn compile_backend() -> Option<&'static CompileBackend> {
    COMPILE_BACKEND.get()
}

/// Which engine a session runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineKind {
    /// Pick automatically: the compiled engine when a backend is
    /// registered and the module holds at least
    /// [`AUTO_COMPILE_MIN_INSTS`] instructions, the interpreter otherwise.
    /// The threshold reflects the measured break-even point: ahead-of-time
    /// compilation costs roughly a fixed amount per instruction, so on
    /// tiny modules the interpreter finishes before blaze finishes
    /// compiling, while on everything larger blaze's end-to-end time
    /// (compile included) is at or below the interpreter's.
    #[default]
    Auto,
    /// The reference interpreter (`llhd-sim`).
    Interpret,
    /// The ahead-of-time compiled engine (`llhd-blaze`).
    Compile,
}

/// Module size (total instruction count) from which [`EngineKind::Auto`]
/// prefers the compiled engine.
pub const AUTO_COMPILE_MIN_INSTS: usize = 120;

fn module_insts(module: &Module) -> usize {
    module
        .units()
        .into_iter()
        .map(|id| module.unit(id).num_total_insts())
        .sum()
}

// ---------------------------------------------------------------------------
// Trace sinks
// ---------------------------------------------------------------------------

/// A streaming consumer of trace events.
///
/// Sinks attached to a session receive every recorded change *during* the
/// run (after each step), not as a post-processing pass over an in-memory
/// trace — with [`SessionBuilder::keep_trace`]`(false)`, the events
/// themselves never accumulate in memory. What a sink retains is its own
/// business: [`ChangeCounter`] keeps counters only, [`VcdSink`] keeps the
/// *formatted text* (write it to a file yourself if the document outgrows
/// memory), and a custom sink can stream to any destination:
///
/// ```
/// use llhd_sim::api::{SimSession, TraceSink};
/// use llhd_sim::design::SignalId;
/// use llhd::value::{ConstValue, TimeValue};
///
/// /// Records only the time of the last change it sees.
/// #[derive(Default)]
/// struct LastChange(Option<u128>);
///
/// impl TraceSink for LastChange {
///     fn event(&mut self, time: &TimeValue, _: SignalId, _: &str, _: &ConstValue) {
///         self.0 = Some(time.as_femtos());
///     }
/// }
///
/// let module = llhd::assembly::parse_module(
///     "proc @pulse () -> (i1$ %q) {
///     entry:
///         %on = const i1 1
///         %t = const time 2ns
///         drv i1$ %q, %on after %t
///         halt
///     }",
/// )
/// .unwrap();
/// let mut last = LastChange::default();
/// SimSession::builder(&module, "pulse")
///     .until_nanos(10)
///     .sink(&mut last)
///     .build()
///     .unwrap()
///     .run()
///     .unwrap();
/// assert_eq!(last.0, Some(2_000_000)); // 2 ns, in femtoseconds
/// ```
pub trait TraceSink {
    /// Called once before any event, with the elaborated signal table
    /// (indexed by resolved [`SignalId`]).
    fn begin(&mut self, signals: &[SignalInfo]) {
        let _ = signals;
    }
    /// One recorded value change. `name` is the hierarchical signal name
    /// (the same string every time for a given `signal`).
    fn event(&mut self, time: &TimeValue, signal: SignalId, name: &str, value: &ConstValue);
    /// Called once after the last event.
    fn finish(&mut self) {}
}

/// The in-memory trace is itself a sink: streaming into it produces
/// exactly what the engine would have recorded internally.
impl TraceSink for Trace {
    fn begin(&mut self, signals: &[SignalInfo]) {
        // One trace per run: every session restarts simulation time at
        // zero, so appending a second run's events would produce a
        // time-disordered list (and an invalid VCD). Start fresh, seeded
        // with this design's name table (events arrive by resolved id).
        *self = Trace::with_names(signals.iter().map(|s| s.name.clone()).collect());
    }
    fn event(&mut self, time: &TimeValue, signal: SignalId, _name: &str, value: &ConstValue) {
        self.record_id(*time, signal.0 as u32, value.clone());
    }
}

/// A sink that discards every event. Useful to measure the streaming path
/// itself, or as a placeholder in generic drivers.
#[derive(Default, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _: &TimeValue, _: SignalId, _: &str, _: &ConstValue) {}
}

/// Counts value changes per signal without storing them.
#[derive(Default, Debug)]
pub struct ChangeCounter {
    total: usize,
    /// Per-signal counts, dense by resolved signal id (sized in `begin`,
    /// so the per-event path is an array increment, not a string hash).
    counts: Vec<usize>,
    /// Signal names, parallel to `counts` (resolved lazily by accessors).
    names: Vec<String>,
}

impl ChangeCounter {
    /// Create a counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of changes observed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Changes observed on one signal (by exact hierarchical name).
    pub fn count_of(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.counts[i])
            .unwrap_or(0)
    }

    /// All nonzero per-signal counts, by hierarchical name.
    pub fn counts(&self) -> HashMap<String, usize> {
        self.names
            .iter()
            .zip(&self.counts)
            .filter(|&(_, &count)| count > 0)
            .map(|(name, &count)| (name.clone(), count))
            .collect()
    }
}

impl TraceSink for ChangeCounter {
    fn begin(&mut self, signals: &[SignalInfo]) {
        // One run per counter, like the other sinks: reuse across
        // sessions starts over instead of silently merging counts.
        self.total = 0;
        self.names = signals.iter().map(|s| s.name.clone()).collect();
        self.counts = vec![0; signals.len()];
    }

    fn event(&mut self, _: &TimeValue, signal: SignalId, name: &str, _: &ConstValue) {
        self.total += 1;
        if signal.0 >= self.counts.len() {
            // Standalone use without a `begin` call.
            self.counts.resize(signal.0 + 1, 0);
            self.names.resize(signal.0 + 1, String::new());
        }
        if self.names[signal.0].is_empty() {
            self.names[signal.0] = name.to_string();
        }
        self.counts[signal.0] += 1;
    }
}

/// An incremental VCD writer: every event is formatted as it arrives, so
/// the change body never lives in memory as events — only as text. The
/// final document ([`VcdSink::into_string`]) is byte-identical to
/// [`Trace::to_vcd`] over the same events.
#[derive(Debug)]
pub struct VcdSink {
    timescale: String,
    /// Formatted value-change lines, appended as events arrive.
    body: String,
    /// Identifier code per resolved signal id (dense, no hashing on the
    /// per-event path), assigned on first appearance.
    code_of: Vec<Option<usize>>,
    /// `(name, width)` per code, in first-appearance order.
    defs: Vec<(String, usize)>,
    current_time: Option<u128>,
}

impl VcdSink {
    /// Create a sink emitting the given `$timescale`.
    pub fn new(timescale: &str) -> Self {
        VcdSink {
            timescale: timescale.to_string(),
            body: String::new(),
            code_of: Vec::new(),
            defs: Vec::new(),
            current_time: None,
        }
    }

    /// Render the full VCD document (header plus the body streamed so far).
    pub fn to_vcd(&self) -> String {
        let mut out = String::with_capacity(self.body.len() + 256);
        crate::trace::write_vcd_header(
            &mut out,
            &self.timescale,
            self.defs.iter().map(|(name, width)| (name.as_str(), *width)),
        );
        out.push_str(&self.body);
        out
    }

    /// Consume the sink, rendering the full VCD document.
    pub fn into_string(self) -> String {
        self.to_vcd()
    }
}

impl TraceSink for VcdSink {
    fn begin(&mut self, signals: &[SignalInfo]) {
        // A VCD document cannot coherently span designs (identifier codes
        // are per resolved signal id, timestamps restart): each session
        // starts a fresh document.
        self.body.clear();
        self.code_of.clear();
        self.code_of.resize(signals.len(), None);
        self.defs.clear();
        self.current_time = None;
    }

    fn event(&mut self, time: &TimeValue, signal: SignalId, name: &str, value: &ConstValue) {
        use std::fmt::Write;
        if signal.0 >= self.code_of.len() {
            // Standalone use without a `begin` call.
            self.code_of.resize(signal.0 + 1, None);
        }
        let code = match self.code_of[signal.0] {
            Some(code) => code,
            None => {
                let code = self.defs.len();
                self.code_of[signal.0] = Some(code);
                self.defs
                    .push((name.to_string(), value.ty().bit_size().max(1)));
                code
            }
        };
        let femtos = time.as_femtos();
        if self.current_time != Some(femtos) {
            writeln!(self.body, "#{}", femtos).unwrap();
            self.current_time = Some(femtos);
        }
        write_vcd_change(&mut self.body, value, code);
    }
}

// ---------------------------------------------------------------------------
// Design cache
// ---------------------------------------------------------------------------

/// 128-bit FNV-1a over the module's bitcode encoding: a stable content
/// hash that identifies a design regardless of which `Module` allocation
/// holds it. 128 bits make an *accidental* collision negligible (the
/// birthday bound sits near 2^64 distinct designs); FNV is not
/// collision-resistant against *crafted* input, so a service accepting
/// adversarial designs must swap in a cryptographic hash here.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut hash: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    hash
}

#[derive(Default)]
struct CacheEntry {
    elaborated: Option<Arc<ElaboratedDesign>>,
    compiled: Option<CompiledArtifact>,
}

/// One lockable cache slot per `(fingerprint, top)` key.
type SharedCacheEntry = Arc<Mutex<CacheEntry>>;

/// Lock a mutex, recovering from poison. Used for bookkeeping locks
/// (the cache map, batch slots) whose guarded state is updated in
/// single non-panicking assignments — a poisoned guard there means a
/// *sibling* operation panicked, not that the state is torn.
fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Map-level bookkeeping for one cached design. Lives *outside* the
/// per-entry lock so the eviction scan and [`DesignCache::stats`] never
/// have to take entry locks that may be held across an elaboration or
/// compilation.
struct CacheSlot {
    entry: SharedCacheEntry,
    /// Logical timestamp of the most recent lookup (LRU order).
    last_used: u64,
    /// Number of lookups that resolved to this design (each lookup is one
    /// prospective simulation run).
    runs: usize,
    /// Rough retained size, updated after each fill (see
    /// [`approx_elaborated_bytes`] for what "rough" means).
    approx_bytes: usize,
    /// Whether a compiled artifact has been stored.
    compiled: bool,
}

/// The map behind the cache: slots plus the logical clock that orders
/// them for eviction.
#[derive(Default)]
struct CacheMap {
    slots: HashMap<(u128, String), CacheSlot>,
    tick: u64,
}

/// A rough retained-size estimate for an elaborated design: struct sizes
/// plus string/value payloads, intentionally cheap rather than exact (no
/// deep traversal of types). Good enough to spot a cache holding tens of
/// megabytes; not an allocator-grade measurement.
fn approx_elaborated_bytes(design: &ElaboratedDesign) -> usize {
    let signals: usize = design
        .signals
        .iter()
        .map(|s| {
            std::mem::size_of::<SignalInfo>() + s.name.len() + s.init.ty().bit_size().div_ceil(8)
        })
        .sum();
    let instances: usize = design
        .instances
        .iter()
        .map(|i| {
            std::mem::size_of_val(i) + i.name.len() + i.signal_map.len() * 4 * std::mem::size_of::<usize>()
        })
        .sum();
    // The alias table is one usize per signal.
    signals + instances + design.signals.len() * std::mem::size_of::<usize>()
}

/// Per-design cache statistics, part of [`CacheStats`].
#[derive(Clone, Debug)]
pub struct DesignStats {
    /// The design's content hash ([`DesignCache::fingerprint`]).
    pub fingerprint: u128,
    /// The top-level unit the design was elaborated for.
    pub top: String,
    /// Number of lookups served for this design (hits + the filling miss).
    pub runs: usize,
    /// Rough retained bytes for this design's artifacts.
    pub approx_bytes: usize,
    /// Whether a compiled artifact is cached alongside the elaboration.
    pub compiled: bool,
}

/// A point-in-time snapshot of a [`DesignCache`]'s observability surface:
/// hit/miss/eviction counters, live-entry count, a bytes-ish retained-size
/// estimate, and per-design run counts (sorted most-used first). This is
/// what a long-running server logs periodically and serves from its
/// `stats` endpoint.
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    /// Lookups that reused a cached elaboration.
    pub elaborate_hits: usize,
    /// Lookups that had to elaborate.
    pub elaborate_misses: usize,
    /// Lookups that reused a compiled artifact.
    pub compile_hits: usize,
    /// Lookups that had to compile.
    pub compile_misses: usize,
    /// Designs evicted to keep the cache within its capacity.
    pub evictions: usize,
    /// Designs currently cached.
    pub entries: usize,
    /// Maximum number of cached designs (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Rough retained bytes across all live entries.
    pub approx_bytes: usize,
    /// Per-design statistics, sorted by `runs` descending.
    pub designs: Vec<DesignStats>,
}

/// Memoizes elaborated and ahead-of-time-compiled designs, keyed by
/// `(module content hash, top unit)`.
///
/// A session built with [`SessionBuilder::cache`] looks its design up
/// here first: on a hit, elaboration (and for the compiled engine, the
/// whole `compile_design` step) is skipped and the shared artifact is
/// reused. The cache is `Sync` — one instance can serve
/// [`SimSession::run_batch`] workers concurrently and is the seed of the
/// ROADMAP's long-running server mode. Each key has its own lock, held
/// across the fill: concurrent lookups of the *same* design elaborate
/// and compile exactly once (the second caller blocks briefly, then
/// hits), while different designs proceed in parallel.
#[derive(Default)]
pub struct DesignCache {
    entries: Mutex<CacheMap>,
    /// Maximum number of live designs; 0 = unbounded.
    capacity: AtomicUsize,
    elaborate_hits: AtomicUsize,
    elaborate_misses: AtomicUsize,
    compile_hits: AtomicUsize,
    compile_misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl DesignCache {
    /// Create an unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a cache that holds at most `capacity` designs, evicting the
    /// least recently used one beyond that.
    ///
    /// Eviction only drops the cache's *reference* to a design's artifacts:
    /// sessions already running on an evicted design keep their own
    /// [`Arc`]s and are unaffected. A design some lookup currently holds —
    /// from the moment `entry()` hands out its slot until the fill
    /// completes — is never evicted, so the live count can transiently
    /// exceed the capacity by the number of concurrent lookups.
    ///
    /// ```
    /// use llhd_sim::api::DesignCache;
    /// let cache = DesignCache::with_capacity(8);
    /// assert_eq!(cache.capacity(), Some(8));
    /// ```
    pub fn with_capacity(capacity: usize) -> Self {
        let cache = Self::default();
        cache.set_capacity(Some(capacity));
        cache
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        match self.capacity.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// Change the capacity. Shrinking evicts least-recently-used designs
    /// immediately; `None` (or `Some(0)`, which means "unbounded" too)
    /// lifts the bound without dropping anything.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        self.capacity
            .store(capacity.unwrap_or(0), Ordering::Relaxed);
        if capacity.unwrap_or(0) > 0 {
            self.evict_over_capacity(&mut lock_recover(&self.entries), None);
        }
    }

    /// Evict least-recently-used designs until the map is within capacity,
    /// skipping `keep` (the key being served right now) and any slot a
    /// lookup currently holds. "Held" is judged by the slot's `Arc` count,
    /// not its lock: `entry()` hands the `Arc` out under the map lock, so
    /// a count above one means some thread is between receiving the slot
    /// and finishing its fill — evicting it then would orphan the fill
    /// (the artifacts and stats would land in a detached entry and the
    /// next lookup would redo the work). Called with the map lock held.
    fn evict_over_capacity(&self, map: &mut CacheMap, keep: Option<&(u128, String)>) {
        let capacity = self.capacity.load(Ordering::Relaxed);
        if capacity == 0 {
            return;
        }
        while map.slots.len() > capacity {
            let victim = map
                .slots
                .iter()
                .filter(|&(key, slot)| {
                    keep != Some(key) && Arc::strong_count(&slot.entry) == 1
                })
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(key, _)| key.clone());
            match victim {
                Some(key) => {
                    map.slots.remove(&key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Everything else is mid-fill: leave the overshoot in
                // place rather than spin; the next lookup retries.
                None => break,
            }
        }
    }

    /// Lock a cache entry, recovering from poison by evicting its
    /// contents: a poisoned entry means a fill (or a panic injected by
    /// the fault harness) unwound while holding the lock, so the
    /// possibly half-built artifacts are discarded and the caller
    /// refills from scratch instead of wedging every future lookup of
    /// this design behind a `PoisonError`.
    fn lock_entry<'a>(&self, slot: &'a SharedCacheEntry) -> std::sync::MutexGuard<'a, CacheEntry> {
        match slot.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = CacheEntry::default();
                slot.clear_poison();
                self.evictions.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Evict every design whose entry lock is poisoned (a fill panicked
    /// while holding it and nobody has re-requested the design since).
    /// The batch runner and the server call this after catching a
    /// panic; a no-op when nothing is poisoned.
    pub fn sweep_poisoned(&self) {
        let mut map = lock_recover(&self.entries);
        let poisoned: Vec<_> = map
            .slots
            .iter()
            .filter(|(_, slot)| slot.entry.is_poisoned())
            .map(|(key, _)| key.clone())
            .collect();
        for key in poisoned {
            map.slots.remove(&key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The content hash used as the cache key for `module`. This encodes
    /// the module to bitcode (O(module size)); callers that look the same
    /// module up repeatedly should compute it once and use the `_keyed`
    /// entry points (or [`SessionBuilder::cache_key`]).
    pub fn fingerprint(module: &Module) -> u128 {
        fnv1a_128(&llhd::bitcode::encode_module(module))
    }

    /// The per-key entry, creating it if needed, bumping its LRU stamp and
    /// run count, and evicting over-capacity cold designs. The outer map
    /// lock is held only for this probe; the returned entry carries its
    /// own lock.
    fn entry(&self, fingerprint: u128, top: &str) -> SharedCacheEntry {
        let mut map = lock_recover(&self.entries);
        map.tick += 1;
        let tick = map.tick;
        let key = (fingerprint, top.to_string());
        let slot = map.slots.entry(key.clone()).or_insert_with(|| CacheSlot {
            entry: SharedCacheEntry::default(),
            last_used: 0,
            runs: 0,
            approx_bytes: 0,
            compiled: false,
        });
        slot.last_used = tick;
        slot.runs += 1;
        let entry = Arc::clone(&slot.entry);
        self.evict_over_capacity(&mut map, Some(&key));
        entry
    }

    /// Record a completed fill's size estimate at the map level (no entry
    /// lock needed for stats or eviction decisions afterwards). The slot
    /// may have been evicted while the fill ran; that is fine — the caller
    /// still holds its own `Arc` and the estimate dies with the slot.
    fn note_fill(&self, fingerprint: u128, top: &str, approx_bytes: usize, compiled: bool) {
        let mut map = lock_recover(&self.entries);
        if let Some(slot) = map.slots.get_mut(&(fingerprint, top.to_string())) {
            slot.approx_bytes = slot.approx_bytes.max(approx_bytes);
            slot.compiled |= compiled;
        }
    }

    /// The elaborated design for `(module, top)`, elaborating on a miss.
    ///
    /// # Errors
    ///
    /// Propagates elaboration failures (which are not cached).
    pub fn elaborated(&self, module: &Module, top: &str) -> Result<Arc<ElaboratedDesign>, Error> {
        self.elaborated_keyed(Self::fingerprint(module), module, top)
    }

    /// [`DesignCache::elaborated`] with a precomputed [`DesignCache::fingerprint`].
    ///
    /// # Errors
    ///
    /// Propagates elaboration failures (which are not cached).
    pub fn elaborated_keyed(
        &self,
        fingerprint: u128,
        module: &Module,
        top: &str,
    ) -> Result<Arc<ElaboratedDesign>, Error> {
        let slot = self.entry(fingerprint, top);
        let mut entry = self.lock_entry(&slot);
        if let Some(found) = &entry.elaborated {
            self.elaborate_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        self.elaborate_misses.fetch_add(1, Ordering::Relaxed);
        let design = match elaborate(module, top) {
            Ok(d) => Arc::new(d),
            Err(e) => {
                drop(entry);
                self.discard_if_empty(fingerprint, top);
                return Err(e.into());
            }
        };
        entry.elaborated = Some(Arc::clone(&design));
        drop(entry);
        self.note_fill(fingerprint, top, approx_elaborated_bytes(&design), false);
        Ok(design)
    }

    /// Drop the `(fingerprint, top)` entry if it holds nothing — failed
    /// elaborations/compilations must not leak placeholder entries into
    /// `len()` or grow the map in a long-running server.
    fn discard_if_empty(&self, fingerprint: u128, top: &str) {
        let mut map = lock_recover(&self.entries);
        let key = (fingerprint, top.to_string());
        let empty = map.slots.get(&key).is_some_and(|slot| {
            slot.entry
                .try_lock()
                .map(|entry| entry.elaborated.is_none() && entry.compiled.is_none())
                .unwrap_or(false)
        });
        if empty {
            map.slots.remove(&key);
        }
    }

    /// The compiled artifact for `(module, top)` under `backend`,
    /// elaborating and compiling on a miss. On a hit the backend's
    /// `compile` hook is **not** invoked — asserted by the
    /// [`DesignCache::compile_hits`] counter in the test suite.
    ///
    /// # Errors
    ///
    /// Propagates elaboration and compilation failures (not cached).
    pub fn compiled(
        &self,
        module: &Module,
        top: &str,
        backend: &CompileBackend,
    ) -> Result<(Arc<ElaboratedDesign>, CompiledArtifact), Error> {
        self.compiled_keyed(Self::fingerprint(module), module, top, backend)
    }

    /// [`DesignCache::compiled`] with a precomputed [`DesignCache::fingerprint`].
    ///
    /// # Errors
    ///
    /// Propagates elaboration and compilation failures (not cached).
    pub fn compiled_keyed(
        &self,
        fingerprint: u128,
        module: &Module,
        top: &str,
        backend: &CompileBackend,
    ) -> Result<(Arc<ElaboratedDesign>, CompiledArtifact), Error> {
        let slot = self.entry(fingerprint, top);
        let mut entry = self.lock_entry(&slot);
        if let (Some(design), Some(artifact)) = (&entry.elaborated, &entry.compiled) {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(design), Arc::clone(artifact)));
        }
        // Reuse a cached elaboration even when the compiled artifact is
        // missing (e.g. the design ran on the interpreter first). The
        // elaboration counters track this table too, so compile-only
        // workloads still report elaboration-cache effectiveness.
        let design = match &entry.elaborated {
            Some(d) => {
                self.elaborate_hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(d)
            }
            None => {
                self.elaborate_misses.fetch_add(1, Ordering::Relaxed);
                match elaborate(module, top) {
                    Ok(d) => Arc::new(d),
                    Err(e) => {
                        drop(entry);
                        self.discard_if_empty(fingerprint, top);
                        return Err(e.into());
                    }
                }
            }
        };
        // Store the elaboration before compiling: if the backend rejects
        // the design, the (valid) elaboration stays cached for retries
        // and interpreter sessions.
        entry.elaborated = Some(Arc::clone(&design));
        self.compile_misses.fetch_add(1, Ordering::Relaxed);
        let artifact = match (backend.compile)(module, Arc::clone(&design)) {
            Ok(artifact) => artifact,
            Err(e) => {
                drop(entry);
                self.note_fill(fingerprint, top, approx_elaborated_bytes(&design), false);
                return Err(e);
            }
        };
        entry.compiled = Some(Arc::clone(&artifact));
        drop(entry);
        let bytes = approx_elaborated_bytes(&design) + (backend.artifact_bytes)(&artifact);
        self.note_fill(fingerprint, top, bytes, true);
        Ok((design, artifact))
    }

    /// Cache hits on the elaboration table.
    pub fn elaborate_hits(&self) -> usize {
        self.elaborate_hits.load(Ordering::Relaxed)
    }

    /// Cache misses on the elaboration table.
    pub fn elaborate_misses(&self) -> usize {
        self.elaborate_misses.load(Ordering::Relaxed)
    }

    /// Lookups that reused a compiled artifact (no `compile_design` run).
    pub fn compile_hits(&self) -> usize {
        self.compile_hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compile.
    pub fn compile_misses(&self) -> usize {
        self.compile_misses.load(Ordering::Relaxed)
    }

    /// Designs evicted so far to keep the cache within its capacity.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The number of cached designs.
    pub fn len(&self) -> usize {
        lock_recover(&self.entries).slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached designs (counters are kept; in-flight sessions keep
    /// their own `Arc`s and are unaffected, like eviction).
    pub fn clear(&self) {
        lock_recover(&self.entries).slots.clear();
    }

    /// Snapshot the observability surface: counters, live entries, the
    /// bytes-ish retained-size estimate, and per-design run counts (sorted
    /// most-used first).
    ///
    /// ```
    /// use llhd::assembly::parse_module;
    /// use llhd_sim::api::{DesignCache, SimSession};
    ///
    /// let module = parse_module(
    ///     "proc @p () -> (i1$ %q) {
    ///     entry:
    ///         %v = const i1 1
    ///         %t = const time 1ns
    ///         drv i1$ %q, %v after %t
    ///         halt
    ///     }",
    /// )
    /// .unwrap();
    /// let cache = DesignCache::with_capacity(4);
    /// for _ in 0..3 {
    ///     SimSession::builder(&module, "p").cache(&cache).build().unwrap();
    /// }
    /// let stats = cache.stats();
    /// assert_eq!((stats.elaborate_misses, stats.elaborate_hits), (1, 2));
    /// assert_eq!(stats.designs[0].runs, 3);
    /// assert!(stats.approx_bytes > 0);
    /// ```
    pub fn stats(&self) -> CacheStats {
        let map = lock_recover(&self.entries);
        let mut designs: Vec<DesignStats> = map
            .slots
            .iter()
            .map(|((fingerprint, top), slot)| DesignStats {
                fingerprint: *fingerprint,
                top: top.clone(),
                runs: slot.runs,
                approx_bytes: slot.approx_bytes,
                compiled: slot.compiled,
            })
            .collect();
        designs.sort_by(|a, b| {
            b.runs
                .cmp(&a.runs)
                .then_with(|| a.top.cmp(&b.top))
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        });
        CacheStats {
            elaborate_hits: self.elaborate_hits(),
            elaborate_misses: self.elaborate_misses(),
            compile_hits: self.compile_hits(),
            compile_misses: self.compile_misses(),
            evictions: self.evictions(),
            entries: map.slots.len(),
            capacity: self.capacity(),
            approx_bytes: designs.iter().map(|d| d.approx_bytes).sum(),
            designs,
        }
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// Configures and builds a [`SimSession`]. Created by
/// [`SimSession::builder`].
///
/// The builder owns every pre-run decision: engine selection, run
/// limits, trace configuration, caching. Methods chain:
///
/// ```
/// use llhd_sim::api::{ChangeCounter, DesignCache, EngineKind, SimSession};
///
/// let module = llhd::assembly::parse_module(
///     "proc @blink () -> (i1$ %led) {
///     entry:
///         %on = const i1 1
///         %off = const i1 0
///         %delay = const time 5ns
///         drv i1$ %led, %on after %delay
///         wait %next for %delay
///     next:
///         drv i1$ %led, %off after %delay
///         wait %entry for %delay
///     }",
/// )
/// .unwrap();
/// let cache = DesignCache::new();
/// let mut changes = ChangeCounter::new();
/// let result = SimSession::builder(&module, "blink")
///     .engine(EngineKind::Interpret)   // default: EngineKind::Auto
///     .until_nanos(50)                 // run limit
///     .trace_filter(&["led"])          // record only matching signals
///     .cache(&cache)                   // reuse elaboration across runs
///     .sink(&mut changes)              // stream events during the run
///     .build()
///     .unwrap()
///     .run()
///     .unwrap();
/// assert_eq!(changes.total(), result.trace.len());
/// assert_eq!(cache.elaborate_misses(), 1);
/// ```
pub struct SessionBuilder<'m> {
    module: &'m Module,
    top: &'m str,
    kind: EngineKind,
    config: SimConfig,
    cache: Option<&'m DesignCache>,
    cache_key: Option<u128>,
    sinks: Vec<&'m mut dyn TraceSink>,
    keep_trace: bool,
}

impl<'m> SessionBuilder<'m> {
    /// Select the engine (default: [`EngineKind::Auto`]).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.kind = kind;
        self
    }

    /// Replace the whole run configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Stop the simulation at the given physical time (nanoseconds).
    pub fn until_nanos(mut self, nanos: u128) -> Self {
        self.config.max_time = TimeValue::from_nanos(nanos);
        self
    }

    /// Stop the simulation at the given time.
    pub fn until(mut self, time: TimeValue) -> Self {
        self.config.max_time = time;
        self
    }

    /// Disable trace recording entirely (benchmarking).
    pub fn without_trace(mut self) -> Self {
        self.config.trace = false;
        self
    }

    /// Only trace signals whose hierarchical name ends with one of the
    /// given suffixes.
    pub fn trace_filter(mut self, names: &[&str]) -> Self {
        self.config.trace_filter = Some(names.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Activate independent sensitivity islands on up to `n` threads
    /// within each instant (default 1: serial). Purely a speed knob —
    /// traces are byte-identical at any thread count — and inert on
    /// designs that do not partition into enough substantial islands
    /// (see [`crate::IslandPlan`]).
    pub fn threads(mut self, n: usize) -> Self {
        self.config.threads = n.max(1);
        self
    }

    /// Guard against unbounded delta cycles within one instant.
    pub fn max_deltas_per_instant(mut self, n: u32) -> Self {
        self.config.max_deltas_per_instant = n;
        self
    }

    /// Guard against processes looping without suspending.
    pub fn max_steps_per_activation(mut self, n: usize) -> Self {
        self.config.max_steps_per_activation = n;
        self
    }

    /// Serve elaboration/compilation from (and populate) `cache`.
    pub fn cache(mut self, cache: &'m DesignCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Supply a precomputed [`DesignCache::fingerprint`] for the module,
    /// so a cached build skips re-encoding the module to compute its key.
    /// The key must come from `DesignCache::fingerprint` on this module;
    /// a stale key silently maps to a different cache entry.
    pub fn cache_key(mut self, fingerprint: u128) -> Self {
        self.cache_key = Some(fingerprint);
        self
    }

    /// Attach a streaming trace sink; may be called repeatedly. Sinks
    /// receive every recorded change after each step, in order, and
    /// imply trace recording even if the run config disabled it (the
    /// trace filter still applies).
    pub fn sink(mut self, sink: &'m mut dyn TraceSink) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Whether the session keeps the events in memory for
    /// [`SimResult::trace`] (default `true`). With `false`, events are
    /// handed to the attached sinks and dropped — memory stays bounded on
    /// arbitrarily long runs and the returned result carries an empty
    /// trace; with `false` and no sinks, trace recording is disabled
    /// entirely (only the run statistics survive).
    pub fn keep_trace(mut self, keep: bool) -> Self {
        self.keep_trace = keep;
        self
    }

    /// Resolve the engine kind, elaborate (through the cache when one is
    /// attached), construct the engine, and wire up the sinks.
    ///
    /// # Errors
    ///
    /// Fails on elaboration or compilation errors, and with
    /// [`Error::BackendUnavailable`] when [`EngineKind::Compile`] is
    /// requested without a registered backend.
    pub fn build(mut self) -> Result<SimSession<'m>, Error> {
        if self.sinks.is_empty() {
            if !self.keep_trace {
                // No sink wants the events and the caller doesn't want
                // them in memory either: don't record them at all.
                self.config.trace = false;
            }
        } else {
            // Attached sinks are an explicit request for the event
            // stream; they override a `without_trace()` run config (the
            // trace *filter* still applies).
            self.config.trace = true;
        }
        let auto = self.kind == EngineKind::Auto;
        let mut kind = match self.kind {
            EngineKind::Auto => match compile_backend() {
                Some(_) if module_insts(self.module) >= AUTO_COMPILE_MIN_INSTS => {
                    EngineKind::Compile
                }
                _ => EngineKind::Interpret,
            },
            k => k,
        };
        let key = match self.cache {
            Some(_) => Some(
                self.cache_key
                    .unwrap_or_else(|| DesignCache::fingerprint(self.module)),
            ),
            None => None,
        };
        // A supplied key must be this module's fingerprint; a stale one
        // would silently serve a *different* cached design. Caught in
        // debug builds (release keeps the skip-the-encode fast path).
        debug_assert!(
            self.cache_key.is_none() || key == Some(DesignCache::fingerprint(self.module)),
            "SessionBuilder::cache_key does not match the module's fingerprint"
        );
        let mut compiled = None;
        let mut unit_stats = Vec::new();
        // Elaboration computed for a failed compile attempt, reused by
        // the interpreter fallback instead of elaborating twice.
        let mut elaborated = None;
        if kind == EngineKind::Compile {
            let backend = compile_backend().ok_or_else(|| {
                Error::BackendUnavailable(
                    "EngineKind::Compile requires llhd_blaze::register()".to_string(),
                )
            })?;
            let attempt = match (self.cache, key) {
                (Some(cache), Some(key)) => {
                    cache.compiled_keyed(key, self.module, self.top, backend)
                }
                _ => {
                    let design = Arc::new(elaborate(self.module, self.top)?);
                    elaborated = Some(Arc::clone(&design));
                    (backend.compile)(self.module, Arc::clone(&design))
                        .map(|artifact| (design, artifact))
                }
            };
            match attempt {
                Ok((design, artifact)) => {
                    let engine = (backend.instantiate)(&artifact, &self.config)?;
                    unit_stats = (backend.artifact_stats)(&artifact);
                    compiled = Some((design, engine));
                }
                // `Auto` promises a *working* selection, not a bet on the
                // compiled subset: designs the backend rejects degrade to
                // the interpreter. An explicit `Compile` still fails.
                Err(Error::Compile(_)) if auto => kind = EngineKind::Interpret,
                Err(e) => return Err(e),
            }
        }
        let (design, engine): (Arc<ElaboratedDesign>, Box<dyn Engine + 'm>) = match compiled {
            Some(built) => built,
            None => {
                let design = match (self.cache, key, elaborated) {
                    (_, _, Some(design)) => design,
                    (Some(cache), Some(key), None) => {
                        cache.elaborated_keyed(key, self.module, self.top)?
                    }
                    _ => Arc::new(elaborate(self.module, self.top)?),
                };
                let engine = Box::new(Simulator::new(
                    self.module,
                    Arc::clone(&design),
                    self.config.clone(),
                ));
                (design, engine)
            }
        };
        let mut sinks = self.sinks;
        for sink in sinks.iter_mut() {
            sink.begin(&design.signals);
        }
        let session_trace = if !sinks.is_empty() && self.keep_trace {
            Some(Trace::with_names(
                design.signals.iter().map(|s| s.name.clone()).collect(),
            ))
        } else {
            None
        };
        Ok(SimSession {
            engine,
            design,
            kind,
            sinks,
            session_trace,
            drain_buf: Vec::new(),
            failed: None,
            unit_stats,
        })
    }
}

/// One prepared simulation: an engine plus its elaborated design, run
/// limits, and trace plumbing, behind a single engine-agnostic surface.
///
/// Use [`SimSession::run`] for a complete run, or drive it incrementally
/// with [`SimSession::step`]/[`SimSession::peek`]/[`SimSession::poke`] and
/// collect the result with [`SimSession::finish`]. Stepping is
/// deterministic: any chunking reproduces the uninterrupted trace byte
/// for byte.
///
/// ```
/// use llhd_sim::api::{EngineKind, SimSession};
/// use llhd::value::ConstValue;
///
/// let module = llhd::assembly::parse_module(
///     "entity @follower (i8$ %a) -> (i8$ %q) {
///         %ap = prb i8$ %a
///         %delay = const time 1ns
///         drv i8$ %q, %ap after %delay
///     }
///     entity @top () -> () {
///         %zero = const i8 0
///         %a = sig i8 %zero
///         %q = sig i8 %zero
///         inst @follower (%a) -> (%q)
///     }",
/// )
/// .unwrap();
/// let mut session = SimSession::builder(&module, "top")
///     .engine(EngineKind::Interpret)
///     .until_nanos(10)
///     .build()
///     .unwrap();
/// session.initialize().unwrap();
/// session.poke("a", ConstValue::int(8, 42)).unwrap();   // external drive
/// while session.step().unwrap() {}                      // one cycle at a time
/// assert_eq!(session.peek("q").unwrap(), ConstValue::int(8, 42));
/// ```
pub struct SimSession<'m> {
    engine: Box<dyn Engine + 'm>,
    design: Arc<ElaboratedDesign>,
    kind: EngineKind,
    sinks: Vec<&'m mut dyn TraceSink>,
    /// In-memory copy of streamed events (sinks attached + keep_trace).
    session_trace: Option<Trace>,
    drain_buf: Vec<TraceEvent>,
    /// The first `initialize`/`step` failure; `finish` replays it rather
    /// than assembling a half-applied result.
    failed: Option<Error>,
    /// Per-unit compilation statistics from the backend's
    /// `artifact_stats` hook (empty for interpreted sessions).
    unit_stats: Vec<UnitArtifactStats>,
}

impl<'m> SimSession<'m> {
    /// Start configuring a session for `top` in `module`.
    pub fn builder(module: &'m Module, top: &'m str) -> SessionBuilder<'m> {
        SessionBuilder {
            module,
            top,
            kind: EngineKind::Auto,
            config: SimConfig::default(),
            cache: None,
            cache_key: None,
            sinks: Vec::new(),
            keep_trace: true,
        }
    }

    /// The engine the session resolved to (never [`EngineKind::Auto`]).
    pub fn engine_kind(&self) -> EngineKind {
        self.kind
    }

    /// The engine's diagnostic name ("interp", "blaze").
    pub fn engine_name(&self) -> &'static str {
        self.engine.engine_name()
    }

    /// The elaborated design the session simulates.
    pub fn design(&self) -> &ElaboratedDesign {
        &self.design
    }

    /// Per-unit compilation statistics (base ops, fused superops,
    /// specialized instance counts) reported by the compile backend.
    /// Empty for interpreted sessions or backends without the hook.
    pub fn unit_stats(&self) -> &[UnitArtifactStats] {
        &self.unit_stats
    }

    /// The current simulation time.
    pub fn time(&self) -> TimeValue {
        self.engine.time()
    }

    /// Arm (or disarm, with `RunControl::default()`) the engine's
    /// cooperative run control: a wall-clock deadline and an
    /// instrumentation probe, checked between scheduler cycles. This is
    /// how a server grants a fresh budget per command on a long-lived
    /// session — a deadline abort does not poison the session (see
    /// [`SimSession::step`]). Returns `false` when the underlying engine
    /// does not support run control; the driver then has to enforce
    /// budgets between its own `step` calls.
    pub fn set_control(&mut self, control: RunControl) -> bool {
        self.engine.set_control(control)
    }

    /// Run the initialization phase without advancing time (idempotent;
    /// [`SimSession::step`] calls it automatically).
    ///
    /// # Errors
    ///
    /// Propagates engine runtime errors.
    pub fn initialize(&mut self) -> Result<(), Error> {
        if let Err(e) = self.engine.initialize() {
            let e: Error = e.into();
            self.failed = Some(e.clone());
            return Err(e);
        }
        Ok(())
    }

    /// Advance by one scheduler cycle, feeding any attached sinks.
    /// Returns `false` once the run is exhausted (queue empty or end time
    /// reached).
    ///
    /// # Errors
    ///
    /// Propagates engine runtime errors.
    pub fn step(&mut self) -> Result<bool, Error> {
        match self.engine.step() {
            Ok(more) => {
                self.pump_sinks();
                Ok(more)
            }
            Err(SimError::DeadlineExceeded) => {
                // A deadline abort happens between cycles, with the
                // engine state fully consistent: the session stays
                // usable and can resume under a fresh budget, so it is
                // deliberately NOT recorded as a permanent failure.
                self.pump_sinks();
                Err(Error::DeadlineExceeded {
                    time_fs: self.engine.time().as_femtos(),
                })
            }
            Err(e) => {
                let e: Error = e.into();
                self.failed = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Resolve a signal by hierarchical name (suffix matching, like
    /// [`ElaboratedDesign::signal_by_name`]).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSignal`] when nothing matches.
    pub fn signal(&self, name: &str) -> Result<SignalId, Error> {
        self.design
            .signal_by_name(name)
            .ok_or_else(|| Error::UnknownSignal(name.to_string()))
    }

    /// The current value of a signal, by name.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSignal`] when nothing matches.
    pub fn peek(&self, name: &str) -> Result<ConstValue, Error> {
        Ok(self.engine.peek(self.signal(name)?))
    }

    /// The current value of a signal, by id.
    pub fn peek_id(&self, signal: SignalId) -> ConstValue {
        self.engine.peek(signal)
    }

    /// Schedule an external drive of a signal (by name), taking effect at
    /// the next delta step.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownSignal`] when nothing matches, and
    /// [`Error::Runtime`] when the value's type does not fit the signal
    /// (a mismatched width would otherwise abort deep inside the engine
    /// on a later step).
    pub fn poke(&mut self, name: &str, value: ConstValue) -> Result<(), Error> {
        let signal = self.signal(name)?;
        self.poke_id(signal, value)
    }

    /// Schedule an external drive of a signal (by id), taking effect at
    /// the next delta step.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when the value's type does not fit the signal.
    pub fn poke_id(&mut self, signal: SignalId, value: ConstValue) -> Result<(), Error> {
        let expected = &self.design.signals[signal.0].ty;
        if &value.ty() != expected {
            return Err(Error::Runtime(format!(
                "poke of {} with a {} value (signal '{}' expects {})",
                value.ty(),
                value,
                self.design.signals[signal.0].name,
                expected
            )));
        }
        self.engine.poke(signal, value);
        Ok(())
    }

    /// Serialize the engine's complete execution state. Continuing a
    /// restored session produces the identical remaining trace to never
    /// having checkpointed. The checkpoint covers the *engine-internal*
    /// trace only: with sinks attached, events already streamed out are
    /// the sinks' business and are not replayed on restore.
    ///
    /// # Errors
    ///
    /// Replays the session's recorded failure, or propagates the
    /// engine's.
    pub fn checkpoint(&self) -> Result<EngineState, Error> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        Ok(self.engine.checkpoint()?)
    }

    /// Restore a checkpoint taken by a session of the same engine kind
    /// over the same design; this session should be freshly built with
    /// the same config.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] on an engine/design mismatch or corrupt bytes.
    pub fn restore(&mut self, state: &EngineState) -> Result<(), Error> {
        self.engine.restore(state)?;
        self.failed = None;
        Ok(())
    }

    /// Run to completion and return the result (equivalent to stepping
    /// until exhaustion, then [`SimSession::finish`]).
    ///
    /// # Errors
    ///
    /// Propagates engine runtime errors.
    pub fn run(mut self) -> Result<SimResult, Error> {
        while self.step()? {}
        self.finish()
    }

    /// Flush the sinks and assemble the final [`SimResult`].
    ///
    /// # Errors
    ///
    /// Replays the failure if any earlier `initialize`/`step` errored:
    /// the run's state is half-applied at that point (the failing cycle
    /// never completed), so there is no coherent result to assemble —
    /// returning one would silently hand out a wrong trace.
    pub fn finish(mut self) -> Result<SimResult, Error> {
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        self.pump_sinks();
        for sink in self.sinks.iter_mut() {
            sink.finish();
        }
        let mut result = self.engine.finish();
        if let Some(trace) = self.session_trace.take() {
            result.trace = trace;
        }
        Ok(result)
    }

    /// Forward freshly recorded events to the sinks (and the in-memory
    /// session trace, when kept).
    fn pump_sinks(&mut self) {
        if self.sinks.is_empty() {
            return;
        }
        self.drain_buf.clear();
        self.engine.drain_trace_into(&mut self.drain_buf);
        for event in &self.drain_buf {
            let id = SignalId(event.signal as usize);
            let name = &self.design.signals[id.0].name;
            for sink in self.sinks.iter_mut() {
                sink.event(&event.time, id, name, &event.value);
            }
        }
        if let Some(trace) = &mut self.session_trace {
            trace.extend_events(self.drain_buf.drain(..));
        }
    }

    /// Run a batch of simulation jobs across std threads, one worker per
    /// core (bounded by the job count), returning the per-job results in
    /// order. Jobs are independent sessions; pass a shared [`DesignCache`]
    /// to elaborate/compile each distinct design once for the whole batch.
    ///
    /// ```
    /// use llhd_sim::api::{BatchJob, DesignCache, SimSession};
    /// use llhd_sim::SimConfig;
    ///
    /// let module = llhd::assembly::parse_module(
    ///     "proc @pulse () -> (i1$ %q) {
    ///     entry:
    ///         %on = const i1 1
    ///         %t = const time 2ns
    ///         drv i1$ %q, %on after %t
    ///         halt
    ///     }",
    /// )
    /// .unwrap();
    /// // Four runs of one design, different end times, one elaboration.
    /// let jobs: Vec<BatchJob> = (1..=4)
    ///     .map(|i| BatchJob::new(&module, "pulse", SimConfig::until_nanos(10 * i)))
    ///     .collect();
    /// let cache = DesignCache::new();
    /// let results = SimSession::run_batch(&jobs, Some(&cache));
    /// assert!(results.iter().all(|r| r.is_ok()));
    /// assert_eq!(cache.elaborate_misses(), 1);
    /// assert_eq!(cache.elaborate_hits(), 3);
    /// ```
    pub fn run_batch(
        jobs: &[BatchJob<'_>],
        cache: Option<&DesignCache>,
    ) -> Vec<Result<SimResult, Error>> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(jobs.len())
            .max(1);
        // Fingerprint each distinct module once for the whole batch (jobs
        // routinely share one module), so cached workers don't re-encode
        // it per job. Jobs carrying a precomputed [`BatchJob::cache_key`]
        // skip even that one encode — the steady state of the server's
        // dispatcher, which knows every resident design's key already.
        let keys: Vec<Option<u128>> = if cache.is_some() {
            let mut memo: HashMap<*const Module, u128> = HashMap::new();
            jobs.iter()
                .map(|job| {
                    Some(job.cache_key.unwrap_or_else(|| {
                        *memo
                            .entry(std::ptr::from_ref(job.module))
                            .or_insert_with(|| DesignCache::fingerprint(job.module))
                    }))
                })
                .collect()
        } else {
            vec![None; jobs.len()]
        };
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<SimResult, Error>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let job = &jobs[i];
                    let mut builder = SimSession::builder(job.module, job.top)
                        .engine(job.engine)
                        .config(job.config.clone());
                    if let (Some(cache), Some(key)) = (cache, keys[i]) {
                        builder = builder.cache(cache).cache_key(key);
                    }
                    // Panic isolation: a panicking engine must cost its
                    // own job an `Error::Panic`, not unwind through the
                    // scope and take the sibling jobs (and the caller)
                    // down with it.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || builder.build().and_then(|session| session.run()),
                    ))
                    .unwrap_or_else(|payload| {
                        // A panic mid-build may have poisoned the job's
                        // cache slot; evict poisoned entries so the next
                        // request for the same design recompiles instead
                        // of wedging on the poison forever.
                        if let Some(cache) = cache {
                            cache.sweep_poisoned();
                        }
                        Err(Error::Panic(panic_message(&*payload)))
                    });
                    *lock_recover(&slots[i]) = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every batch slot is filled by a worker")
            })
            .collect()
    }
}

/// One entry of a [`SimSession::run_batch`] workload.
#[derive(Clone)]
pub struct BatchJob<'a> {
    /// The module holding the design.
    pub module: &'a Module,
    /// The top-level unit to elaborate.
    pub top: &'a str,
    /// Engine selection for this job.
    pub engine: EngineKind,
    /// Run configuration for this job.
    pub config: SimConfig,
    /// A precomputed [`DesignCache::fingerprint`] of `module`, if the
    /// caller already knows it: the batch then skips re-encoding the
    /// module for its cache key. Same contract as
    /// [`SessionBuilder::cache_key`] — a stale key silently maps to a
    /// different cache entry. Ignored when the batch runs uncached.
    pub cache_key: Option<u128>,
}

impl<'a> BatchJob<'a> {
    /// A job with the default ([`EngineKind::Auto`]) engine.
    pub fn new(module: &'a Module, top: &'a str, config: SimConfig) -> Self {
        BatchJob {
            module,
            top,
            engine: EngineKind::Auto,
            config,
            cache_key: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;

    const BLINK: &str = r#"
        proc @blink () -> (i1$ %led) {
        entry:
            %on = const i1 1
            %off = const i1 0
            %delay = const time 5ns
            drv i1$ %led, %on after %delay
            wait %next for %delay
        next:
            drv i1$ %led, %off after %delay
            wait %entry for %delay
        }
    "#;

    #[test]
    fn session_runs_on_the_interpreter() {
        let module = parse_module(BLINK).unwrap();
        let session = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap();
        assert_eq!(session.engine_name(), "interp");
        let result = session.run().unwrap();
        assert!(result.trace.changes_of("led").count() >= 18);
    }

    #[test]
    fn stepped_session_matches_uninterrupted_run() {
        let module = parse_module(BLINK).unwrap();
        let full = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let mut chunked = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap();
        // Advance in odd chunks: 1 step, then 3, then the rest.
        for chunk in [1usize, 3] {
            for _ in 0..chunk {
                chunked.step().unwrap();
            }
        }
        while chunked.step().unwrap() {}
        let stepped = chunked.finish().unwrap();
        assert_eq!(full.trace.events(), stepped.trace.events());
        assert_eq!(full.end_time, stepped.end_time);
        assert_eq!(full.signal_changes, stepped.signal_changes);
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let module = parse_module(BLINK).unwrap();
        let full = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap()
            .run()
            .unwrap();
        // Run a few cycles, checkpoint, drop the session entirely.
        let mut first = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap();
        for _ in 0..5 {
            first.step().unwrap();
        }
        let state = first.checkpoint().unwrap();
        assert_eq!(state.engine_name().unwrap(), "interp");
        drop(first);
        // Restore into a fresh session and continue to completion.
        let mut resumed = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap();
        resumed.restore(&state).unwrap();
        while resumed.step().unwrap() {}
        let result = resumed.finish().unwrap();
        assert_eq!(full.trace.events(), result.trace.events());
        assert_eq!(full.end_time, result.end_time);
        assert_eq!(full.signal_changes, result.signal_changes);
        assert_eq!(full.activations, result.activations);
    }

    #[test]
    fn checkpoint_roundtrips_through_raw_bytes() {
        let module = parse_module(BLINK).unwrap();
        let mut session = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap();
        session.step().unwrap();
        let state = session.checkpoint().unwrap();
        // The wire round-trip: raw bytes out, validated state back in.
        let revived = EngineState::from_bytes(state.as_bytes().to_vec()).unwrap();
        assert_eq!(state, revived);
        assert!(EngineState::from_bytes(b"not a checkpoint".to_vec()).is_err());
        let mut truncated = state.as_bytes().to_vec();
        truncated.truncate(truncated.len() / 2);
        // A truncated body parses its header but must fail to restore.
        if let Ok(bad) = EngineState::from_bytes(truncated) {
            let mut target = SimSession::builder(&module, "blink")
                .engine(EngineKind::Interpret)
                .until_nanos(100)
                .build()
                .unwrap();
            assert!(target.restore(&bad).is_err());
        }
    }

    #[test]
    fn restore_rejects_mismatched_designs() {
        let module = parse_module(BLINK).unwrap();
        let other = parse_module(
            r#"
            entity @top () -> () {
                %zero = const i8 0
                %a = sig i8 %zero
                %b = sig i8 %zero
            }
            "#,
        )
        .unwrap();
        let mut session = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap();
        session.step().unwrap();
        let state = session.checkpoint().unwrap();
        let mut target = SimSession::builder(&other, "top")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap();
        let err = target.restore(&state).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)), "{}", err);
    }

    #[test]
    fn peek_and_poke_interact_with_the_run() {
        let module = parse_module(
            r#"
            entity @follower (i8$ %a) -> (i8$ %q) {
                %ap = prb i8$ %a
                %delay = const time 1ns
                drv i8$ %q, %ap after %delay
            }
            entity @top () -> () {
                %zero = const i8 0
                %a = sig i8 %zero
                %q = sig i8 %zero
                inst @follower (%a) -> (%q)
            }
            "#,
        )
        .unwrap();
        let mut session = SimSession::builder(&module, "top")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap();
        session.initialize().unwrap();
        assert_eq!(session.peek("a").unwrap(), ConstValue::int(8, 0));
        session.poke("a", ConstValue::int(8, 42)).unwrap();
        while session.step().unwrap() {}
        assert_eq!(session.peek("q").unwrap(), ConstValue::int(8, 42));
        assert!(matches!(
            session.peek("nonexistent"),
            Err(Error::UnknownSignal(_))
        ));
        // A value that does not fit the signal is rejected up front, not
        // deep inside the engine on the next step.
        assert!(matches!(
            session.poke("a", ConstValue::int(16, 300)),
            Err(Error::Runtime(_))
        ));
    }

    #[test]
    fn compile_without_backend_is_a_clean_error() {
        // The backend registry is process-global and another test (or the
        // blaze crate) may have registered one; only assert the negative
        // when none is present.
        if compile_backend().is_some() {
            return;
        }
        let module = parse_module(BLINK).unwrap();
        let err = SimSession::builder(&module, "blink")
            .engine(EngineKind::Compile)
            .build()
            .err()
            .expect("no backend registered in llhd-sim's own tests");
        assert!(matches!(err, Error::BackendUnavailable(_)));
        // Auto degrades to the interpreter instead of failing.
        let session = SimSession::builder(&module, "blink").build().unwrap();
        assert_eq!(session.engine_kind(), EngineKind::Interpret);
    }

    #[test]
    fn unknown_top_surfaces_as_elaborate_error() {
        let module = parse_module(BLINK).unwrap();
        let err = SimSession::builder(&module, "missing")
            .build()
            .err()
            .unwrap();
        assert!(matches!(err, Error::Elaborate(ElaborateError::UnknownTop(_))));
        assert!(err.to_string().contains("missing"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn memory_sink_and_change_counter_observe_the_run() {
        let module = parse_module(BLINK).unwrap();
        let mut copy = Trace::new();
        let mut counter = ChangeCounter::new();
        let result = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(50)
            .sink(&mut copy)
            .sink(&mut counter)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.trace, copy);
        assert_eq!(counter.total(), result.trace.len());
        assert_eq!(counter.count_of("blink.led"), result.trace.len());
    }

    #[test]
    fn keep_trace_false_streams_without_accumulating() {
        let module = parse_module(BLINK).unwrap();
        let mut counter = ChangeCounter::new();
        // `without_trace()` in the config is overridden by the attached
        // sink: sinks imply event recording.
        let result = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .config(SimConfig::until_nanos(50).without_trace())
            .sink(&mut counter)
            .keep_trace(false)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(result.trace.is_empty());
        assert!(counter.total() >= 9);
        // The statistics still reflect the full run.
        assert_eq!(result.signal_changes, counter.total());
        // With no sinks either, recording is disabled outright: the run
        // statistics survive, the trace stays empty.
        let stats_only = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(50)
            .keep_trace(false)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(stats_only.trace.is_empty());
        assert_eq!(stats_only.signal_changes, counter.total());
    }

    #[test]
    fn vcd_sink_matches_in_memory_vcd() {
        let module = parse_module(BLINK).unwrap();
        let mut vcd = VcdSink::new("1fs");
        let result = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(60)
            .sink(&mut vcd)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.trace.is_empty());
        assert_eq!(vcd.into_string(), result.trace.to_vcd("1fs"));
    }

    #[test]
    fn design_cache_hits_and_misses() {
        let module = parse_module(BLINK).unwrap();
        let cache = DesignCache::new();
        let first = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(20)
            .cache(&cache)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(cache.elaborate_misses(), 1);
        assert_eq!(cache.elaborate_hits(), 0);
        let second = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(20)
            .cache(&cache)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(cache.elaborate_hits(), 1);
        assert_eq!(cache.elaborate_misses(), 1);
        assert_eq!(first.trace.events(), second.trace.events());
        // A different module is a different key.
        let other = parse_module(BLINK.replace("5ns", "7ns").as_str()).unwrap();
        SimSession::builder(&other, "blink")
            .engine(EngineKind::Interpret)
            .cache(&cache)
            .build()
            .unwrap();
        assert_eq!(cache.elaborate_misses(), 2);
        assert_eq!(cache.len(), 2);
        // A failed elaboration must not leak a placeholder entry.
        assert!(SimSession::builder(&module, "missing_top")
            .cache(&cache)
            .build()
            .is_err());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    /// A module per distinct delay value, so each is a distinct cache key.
    fn blink_with_delay(ns: usize) -> Module {
        parse_module(BLINK.replace("5ns", &format!("{}ns", ns)).as_str()).unwrap()
    }

    #[test]
    fn bounded_cache_stays_within_capacity_and_evicts_lru() {
        let cache = DesignCache::with_capacity(3);
        assert_eq!(cache.capacity(), Some(3));
        // Many distinct designs through a small cache: the live set stays
        // bounded no matter how many designs flow through (the regression
        // this guards: the cache used to only grow).
        for i in 1..=10 {
            let module = blink_with_delay(i);
            SimSession::builder(&module, "blink")
                .engine(EngineKind::Interpret)
                .cache(&cache)
                .build()
                .unwrap();
            assert!(cache.len() <= 3, "cache grew past its capacity");
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 7);
        assert_eq!(cache.elaborate_misses(), 10);
        // The most recently used designs survived: looking them up again
        // hits; the coldest design was evicted and must re-elaborate.
        let hot = blink_with_delay(10);
        SimSession::builder(&hot, "blink").cache(&cache).build().unwrap();
        assert_eq!(cache.elaborate_hits(), 1);
        let cold = blink_with_delay(1);
        SimSession::builder(&cold, "blink").cache(&cache).build().unwrap();
        assert_eq!(cache.elaborate_misses(), 11, "evicted design must miss");
        // Recency, not insertion order, decides the victim: keep touching
        // one design while inserting others and it must survive.
        let pinned = blink_with_delay(100);
        SimSession::builder(&pinned, "blink").cache(&cache).build().unwrap();
        for i in 20..=25 {
            let module = blink_with_delay(i);
            SimSession::builder(&module, "blink")
                .engine(EngineKind::Interpret)
                .cache(&cache)
                .build()
                .unwrap();
            SimSession::builder(&pinned, "blink").cache(&cache).build().unwrap();
        }
        let hits_before = cache.elaborate_hits();
        SimSession::builder(&pinned, "blink").cache(&cache).build().unwrap();
        assert_eq!(cache.elaborate_hits(), hits_before + 1, "pinned design was evicted");
    }

    #[test]
    fn eviction_does_not_disturb_in_flight_sessions() {
        let module = parse_module(BLINK).unwrap();
        let uncached = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let cache = DesignCache::with_capacity(1);
        let mut session = SimSession::builder(&module, "blink")
            .engine(EngineKind::Interpret)
            .until_nanos(100)
            .cache(&cache)
            .build()
            .unwrap();
        // Step partway, then evict the design out from under the session
        // (both by capacity pressure and by an outright clear): the session
        // holds its own `Arc` and must finish identically.
        for _ in 0..5 {
            session.step().unwrap();
        }
        let other = blink_with_delay(9);
        SimSession::builder(&other, "blink").cache(&cache).build().unwrap();
        assert_eq!(cache.evictions(), 1);
        cache.clear();
        while session.step().unwrap() {}
        let evicted = session.finish().unwrap();
        assert_eq!(uncached.trace.events(), evicted.trace.events());
        assert_eq!(uncached.end_time, evicted.end_time);
    }

    #[test]
    fn cache_stats_snapshot_reports_the_surface() {
        let cache = DesignCache::with_capacity(8);
        let a = blink_with_delay(3);
        let b = blink_with_delay(4);
        for _ in 0..3 {
            SimSession::builder(&a, "blink").cache(&cache).build().unwrap();
        }
        SimSession::builder(&b, "blink").cache(&cache).build().unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, Some(8));
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.elaborate_misses, 2);
        assert_eq!(stats.elaborate_hits, 2);
        assert!(stats.approx_bytes > 0, "filled entries must report bytes");
        // Per-design runs, most-used first.
        assert_eq!(stats.designs.len(), 2);
        assert_eq!(stats.designs[0].runs, 3);
        assert_eq!(stats.designs[1].runs, 1);
        assert!(!stats.designs[0].compiled);
        // Shrinking the capacity evicts immediately, least recently used
        // first (touch the hot design so recency and run count agree).
        SimSession::builder(&a, "blink").cache(&cache).build().unwrap();
        cache.set_capacity(Some(1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        let survivor = cache.stats();
        assert_eq!(survivor.designs[0].runs, 4, "LRU kept the hot design");
    }

    #[test]
    fn batch_runner_matches_individual_runs() {
        let module = parse_module(BLINK).unwrap();
        let jobs: Vec<BatchJob> = (1..=4)
            .map(|i| {
                BatchJob {
                    module: &module,
                    top: "blink",
                    engine: EngineKind::Interpret,
                    config: SimConfig::until_nanos(10 * i),
                    cache_key: None,
                }
            })
            .collect();
        let cache = DesignCache::new();
        let results = SimSession::run_batch(&jobs, Some(&cache));
        assert_eq!(results.len(), 4);
        for (job, result) in jobs.iter().zip(&results) {
            let result = result.as_ref().unwrap();
            let solo = SimSession::builder(job.module, job.top)
                .engine(job.engine)
                .config(job.config.clone())
                .build()
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(solo.trace.events(), result.trace.events());
        }
        // All four jobs share one design: one miss, three hits.
        assert_eq!(cache.elaborate_misses(), 1);
        assert_eq!(cache.elaborate_hits(), 3);
    }

    #[test]
    fn failed_initialization_poisons_the_session() {
        // `ret` is illegal in a process, so the initial activation fails.
        let module = parse_module(
            r#"
            proc @bad () -> () {
            entry:
                ret
            }
            "#,
        )
        .unwrap();
        let mut session = SimSession::builder(&module, "bad")
            .engine(EngineKind::Interpret)
            .build()
            .unwrap();
        let first = session.initialize().unwrap_err();
        assert!(matches!(first, Error::Runtime(_)));
        // Later attempts replay the failure instead of silently running a
        // half-initialized design.
        assert_eq!(session.initialize().unwrap_err(), first);
        assert_eq!(session.step().unwrap_err(), first);
        // And no half-applied result can be assembled.
        assert_eq!(session.finish().unwrap_err(), first);
    }

    #[test]
    fn failed_step_poisons_the_session() {
        // A zero-delay inverter loop oscillates forever within one
        // instant; the delta-cycle guard fails the step mid-run.
        let module = parse_module(
            r#"
            entity @inv (i1$ %a) -> (i1$ %q) {
                %ap = prb i1$ %a
                %n = not i1 %ap
                %delay = const time 0s
                drv i1$ %q, %n after %delay
            }
            entity @top () -> () {
                %zero = const i1 0
                %x = sig i1 %zero
                %y = sig i1 %zero
                inst @inv (%x) -> (%y)
                inst @inv (%y) -> (%x)
            }
            "#,
        )
        .unwrap();
        let mut session = SimSession::builder(&module, "top")
            .engine(EngineKind::Interpret)
            .until_nanos(10)
            .build()
            .unwrap();
        let first = loop {
            match session.step() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(first, Error::Runtime(_)));
        // A half-applied cycle must not be resumable: the error replays,
        // and no result can be assembled from it.
        assert_eq!(session.step().unwrap_err(), first);
        assert_eq!(session.finish().unwrap_err(), first);
    }

    #[test]
    fn error_display_is_descriptive() {
        let e = Error::Compile("bad phi".to_string());
        assert_eq!(e.to_string(), "compile error: bad phi");
        let e = Error::UnknownSignal("clk".to_string());
        assert_eq!(e.to_string(), "unknown signal 'clk'");
        let e: Error = SimError::Runtime("boom".to_string()).into();
        assert_eq!(e.to_string(), "runtime error: boom");
    }
}
