//! Sensitivity-island partitioning.
//!
//! An **island** is a connected component of the signal ↔ instance graph:
//! two instances land in the same island when one can *schedule* work the
//! other observes — it drives a signal the other is sensitive to (entity
//! sensitivity or a process `wait`), or they drive the same signal (their
//! drives must merge last-writer-wins in one queue bucket). Instances in
//! different islands never wake each other within an instant, which is
//! what makes islands the unit of intra-simulation parallelism: the
//! engines activate each island's share of an instant on its own worker
//! thread (see [`run_instant_parallel`](crate::sched::run_instant_parallel)).
//!
//! The edges are exactly the scan [`DesignQuery`](crate::query::DesignQuery)
//! performs, with one deliberate exception: a **process probe** (`prb`
//! outside the wait sensitivity list) is a plain value *read* and does not
//! merge islands. Reads are safe across islands because signal values are
//! frozen during an instant's activation phase — drives apply only at the
//! next `next_cycle` — so a cross-island read observes the same value
//! serially and in parallel. Signals read across island lines this way
//! are reported as [`IslandPlan::boundary_signals`], the seams a client
//! inspecting the partition cares about. (Entity probes *do* merge: an
//! entity re-runs whenever a probed signal changes, so its probes are
//! sensitivity, not just reads.)
//!
//! The plan is deterministic for a given module + top: islands are
//! numbered by first appearance in instance order, and the whole
//! assignment is digested into [`IslandPlan::hash`], which checkpoints
//! embed so a restore onto a differently-partitioned build fails cleanly
//! instead of replaying under a different merge order.

use crate::design::{ElaboratedDesign, InstanceId, InstanceKind, SignalId};
use llhd::ir::{Module, Opcode, Value};

/// One island of the partition.
#[derive(Clone, Debug, Default)]
pub struct IslandInfo {
    /// The instances in this island, in instance order.
    pub instances: Vec<InstanceId>,
    /// The canonical signals attached to this island, in signal order.
    pub signals: Vec<SignalId>,
    /// Static weight: total IR instruction count of the member instances'
    /// unit bodies — the heuristic proxy for how much work an activation
    /// of this island costs.
    pub ops: usize,
}

/// The island assignment of one elaborated design.
///
/// Built by [`IslandPlan::build`] as a union-find over the same static
/// scan that powers [`DesignQuery`](crate::query::DesignQuery); exposed
/// through that query type and consumed by both engines' parallel
/// instant loops.
#[derive(Clone, Debug, Default)]
pub struct IslandPlan {
    /// Island id per instance, by `InstanceId.0`.
    island_of_instance: Vec<u32>,
    /// Island id per signal, by `SignalId.0` (aliases carry their
    /// canonical signal's island).
    island_of_signal: Vec<u32>,
    /// Per-island membership and weight, by island id.
    islands: Vec<IslandInfo>,
    /// Canonical signals probed by a process outside its own island,
    /// sorted. Safe to read across the line (values are frozen during
    /// activation), but the seam a partition inspector wants to see.
    boundary_signals: Vec<SignalId>,
    /// FNV-1a digest of the complete assignment.
    hash: u64,
}

/// Union-find with path halving.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: the smaller root wins, no rank heuristics.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

impl IslandPlan {
    /// Compute the island partition of `design` by a static scan of every
    /// instance's unit body (a linear pass; both engines run it at
    /// construction time).
    pub fn build(module: &Module, design: &ElaboratedDesign) -> Self {
        let num_instances = design.num_instances();
        let num_signals = design.num_signals();
        let canon: Vec<usize> = (0..num_signals)
            .map(|i| design.resolve(SignalId(i)).0)
            .collect();
        // Union-find nodes: instances first, then canonical signals.
        let mut uf = UnionFind::new(num_instances + num_signals);
        let sig_node = |s: usize| (num_instances + s) as u32;
        let mut ops_of: Vec<usize> = vec![0; num_instances];
        // (instance, canonical signal) probe reads by processes — boundary
        // candidates, resolved against the final assignment below.
        let mut process_reads: Vec<(u32, usize)> = Vec::new();

        for (idx, instance) in design.instances.iter().enumerate() {
            let unit = module.unit(instance.unit);
            let sig_of = |value: Value| -> Option<usize> {
                instance
                    .signal_map
                    .get(&value)
                    .map(|&sig| design.resolve(sig).0)
            };
            let is_entity = instance.kind == InstanceKind::Entity;
            for block in unit.blocks() {
                for inst in unit.insts(block) {
                    ops_of[idx] += 1;
                    let data = unit.inst_data(inst);
                    match data.opcode {
                        // Drives merge: concurrent drivers of one signal
                        // must serialize into one last-writer-wins bucket.
                        Opcode::Drv | Opcode::DrvCond | Opcode::Reg => {
                            if let Some(sig) = sig_of(data.args[0]) {
                                uf.union(idx as u32, sig_node(sig));
                            }
                        }
                        // A delay line drives its result and is (in an
                        // entity body) sensitive to its source.
                        Opcode::Del => {
                            if let Some(src) = sig_of(data.args[0]) {
                                uf.union(idx as u32, sig_node(src));
                            }
                            if let Some(result) = unit.get_inst_result(inst) {
                                if let Some(dst) = sig_of(result) {
                                    uf.union(idx as u32, sig_node(dst));
                                }
                            }
                        }
                        // Entity probes are sensitivity (the entity
                        // re-runs on change); process probes are reads.
                        Opcode::Prb => {
                            if let Some(sig) = sig_of(data.args[0]) {
                                if is_entity {
                                    uf.union(idx as u32, sig_node(sig));
                                } else {
                                    process_reads.push((idx as u32, sig));
                                }
                            }
                        }
                        // Wait sensitivity wakes the process on change.
                        Opcode::Wait | Opcode::WaitTime => {
                            let signal_args = if data.opcode == Opcode::WaitTime {
                                &data.args[1..]
                            } else {
                                &data.args[..]
                            };
                            for &arg in signal_args {
                                if let Some(sig) = sig_of(arg) {
                                    uf.union(idx as u32, sig_node(sig));
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }

        // Number islands by first appearance: instance-bearing components
        // in instance order, then any signal-only components in signal
        // order (unconnected nets still get a stable id).
        let mut island_of_root: Vec<u32> = vec![u32::MAX; num_instances + num_signals];
        let mut islands: Vec<IslandInfo> = Vec::new();
        let mut island_of_instance = vec![0u32; num_instances];
        for idx in 0..num_instances {
            let root = uf.find(idx as u32) as usize;
            let island = if island_of_root[root] == u32::MAX {
                let id = islands.len() as u32;
                island_of_root[root] = id;
                islands.push(IslandInfo::default());
                id
            } else {
                island_of_root[root]
            };
            island_of_instance[idx] = island;
            let info = &mut islands[island as usize];
            info.instances.push(InstanceId(idx));
            info.ops += ops_of[idx];
        }
        let mut island_of_signal = vec![0u32; num_signals];
        for s in 0..num_signals {
            let c = canon[s];
            let root = uf.find(sig_node(c)) as usize;
            let island = if island_of_root[root] == u32::MAX {
                let id = islands.len() as u32;
                island_of_root[root] = id;
                islands.push(IslandInfo::default());
                id
            } else {
                island_of_root[root]
            };
            island_of_signal[s] = island;
            if s == c {
                islands[island as usize].signals.push(SignalId(s));
            }
        }

        let mut boundary_signals: Vec<SignalId> = process_reads
            .into_iter()
            .filter(|&(inst, sig)| {
                island_of_instance[inst as usize] != island_of_signal[sig]
            })
            .map(|(_, sig)| SignalId(sig))
            .collect();
        boundary_signals.sort_unstable();
        boundary_signals.dedup();

        // FNV-1a over the shape and the assignment. Checkpoints embed
        // this digest; see `api::EngineState`.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(num_instances as u64);
        mix(num_signals as u64);
        for &i in &island_of_instance {
            mix(i as u64);
        }
        for &s in &island_of_signal {
            mix(s as u64);
        }

        IslandPlan {
            island_of_instance,
            island_of_signal,
            islands,
            boundary_signals,
            hash,
        }
    }

    /// The number of islands (including signal-only ones).
    pub fn num_islands(&self) -> usize {
        self.islands.len()
    }

    /// Per-island membership and weight, by island id.
    pub fn islands(&self) -> &[IslandInfo] {
        &self.islands
    }

    /// The island id of every instance, by `InstanceId.0` — the worker
    /// assignment the engines feed to
    /// [`run_instant_parallel`](crate::sched::run_instant_parallel).
    pub fn island_of_instances(&self) -> &[u32] {
        &self.island_of_instance
    }

    /// The island id of `instance`.
    pub fn instance_island(&self, instance: InstanceId) -> u32 {
        self.island_of_instance[instance.0]
    }

    /// The island id of `signal` (aliases report their canonical
    /// signal's island).
    pub fn signal_island(&self, signal: SignalId) -> u32 {
        self.island_of_signal[signal.0]
    }

    /// The canonical signals probed by a process outside its own island,
    /// sorted. These cross-island reads are safe — signal values are
    /// frozen during an instant's activation phase — but they are the
    /// places where the partition's independence is *read-only* rather
    /// than total.
    pub fn boundary_signals(&self) -> &[SignalId] {
        &self.boundary_signals
    }

    /// FNV-1a digest of the complete assignment, embedded in checkpoint
    /// headers so a restore onto a differently-partitioned build is
    /// rejected instead of replaying under a different merge order.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Whether the partition justifies parallel instants: at least two
    /// islands each carry `min_ops` worth of unit body. Below that, the
    /// per-instant worker handoff costs more than it buys and the
    /// engines stay on their serial loop.
    pub fn parallel_worthy(&self, min_ops: usize) -> bool {
        self.islands.iter().filter(|i| i.ops >= min_ops).count() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::elaborate;
    use llhd::assembly::parse_module;

    /// Two disconnected blink processes plus a third watching the first's
    /// output: blink0+watcher share an island, blink1 is alone.
    const TWO_ISLANDS: &str = r#"
        proc @blink () -> (i1$ %led) {
        entry:
            %on = const i1 1
            %t = const time 5ns
            drv i1$ %led, %on after %t
            wait %entry for %t
        }
        proc @watcher (i1$ %led) -> (i8$ %count) {
        entry:
            %one = const i8 1
            %t = const time 1ns
            drv i8$ %count, %one after %t
            wait %entry, %led
        }
        entity @top () -> () {
            %z1 = const i1 0
            %z8 = const i8 0
            %led0 = sig i1 %z1
            %led1 = sig i1 %z1
            %count = sig i8 %z8
            inst @blink () -> (%led0)
            inst @blink () -> (%led1)
            inst @watcher (%led0) -> (%count)
        }
    "#;

    #[test]
    fn disconnected_components_get_distinct_islands() {
        let module = parse_module(TWO_ISLANDS).unwrap();
        let design = elaborate(&module, "top").unwrap();
        let plan = IslandPlan::build(&module, &design);
        // Both blink instances share the path "top.blink"; tell them
        // apart through the signals they drive.
        let blinks: Vec<usize> = design
            .instances
            .iter()
            .enumerate()
            .filter(|(_, i)| i.name == "top.blink")
            .map(|(idx, _)| idx)
            .collect();
        assert_eq!(blinks.len(), 2);
        let (blink0, blink1) = (
            plan.instance_island(InstanceId(blinks[0])),
            plan.instance_island(InstanceId(blinks[1])),
        );
        let watcher = design
            .instances
            .iter()
            .position(|i| i.name == "top.watcher")
            .unwrap();
        let watcher = plan.instance_island(InstanceId(watcher));
        assert_eq!(blink0, watcher, "watcher waits on blink0's led");
        assert_ne!(blink0, blink1, "the two blinkers are independent");
        let led0 = design.signal_by_name("top.led0").unwrap();
        let led1 = design.signal_by_name("top.led1").unwrap();
        assert_eq!(plan.signal_island(led0), blink0);
        assert_eq!(plan.signal_island(led1), blink1);
        // Deterministic numbering by first appearance.
        let plan2 = IslandPlan::build(&module, &design);
        assert_eq!(plan.island_of_instances(), plan2.island_of_instances());
        assert_eq!(plan.hash(), plan2.hash());
    }

    #[test]
    fn process_probe_is_a_boundary_not_a_merge() {
        let module = parse_module(
            r#"
            proc @blink () -> (i1$ %led) {
            entry:
                %on = const i1 1
                %t = const time 5ns
                drv i1$ %led, %on after %t
                wait %entry for %t
            }
            proc @sampler (i1$ %led) -> (i1$ %copy) {
            entry:
                %t = const time 7ns
                %cur = prb i1$ %led
                drv i1$ %copy, %cur after %t
                wait %entry for %t
            }
            entity @top () -> () {
                %z = const i1 0
                %led = sig i1 %z
                %copy = sig i1 %z
                inst @blink () -> (%led)
                inst @sampler (%led) -> (%copy)
            }
            "#,
        )
        .unwrap();
        let design = elaborate(&module, "top").unwrap();
        let plan = IslandPlan::build(&module, &design);
        let blink = design
            .instances
            .iter()
            .position(|i| i.name == "top.blink")
            .unwrap();
        let sampler = design
            .instances
            .iter()
            .position(|i| i.name == "top.sampler")
            .unwrap();
        // The sampler only *reads* led (probe outside its wait list), so
        // it stays in its own island and led is a boundary signal.
        assert_ne!(
            plan.instance_island(InstanceId(blink)),
            plan.instance_island(InstanceId(sampler))
        );
        let led = design.signal_by_name("top.led").unwrap();
        assert_eq!(plan.boundary_signals(), &[design.resolve(led)]);
    }

    #[test]
    fn entity_probe_merges_islands() {
        let module = parse_module(
            r#"
            proc @blink () -> (i1$ %led) {
            entry:
                %on = const i1 1
                %t = const time 5ns
                drv i1$ %led, %on after %t
                wait %entry for %t
            }
            entity @mirror (i1$ %led) -> (i1$ %out) {
                %cur = prb i1$ %led
                %t = const time 0s
                drv i1$ %out, %cur after %t
            }
            entity @top () -> () {
                %z = const i1 0
                %led = sig i1 %z
                %out = sig i1 %z
                inst @blink () -> (%led)
                inst @mirror (%led) -> (%out)
            }
            "#,
        )
        .unwrap();
        let design = elaborate(&module, "top").unwrap();
        let plan = IslandPlan::build(&module, &design);
        let blink = design
            .instances
            .iter()
            .position(|i| i.name == "top.blink")
            .unwrap();
        let mirror = design
            .instances
            .iter()
            .position(|i| i.name == "top.mirror")
            .unwrap();
        // The mirror entity re-runs whenever led changes: sensitivity,
        // same island, no boundary.
        assert_eq!(
            plan.instance_island(InstanceId(blink)),
            plan.instance_island(InstanceId(mirror))
        );
        assert!(plan.boundary_signals().is_empty());
    }

    #[test]
    fn weights_and_worthiness() {
        let module = parse_module(TWO_ISLANDS).unwrap();
        let design = elaborate(&module, "top").unwrap();
        let plan = IslandPlan::build(&module, &design);
        // Each blink body has 5 instructions; the watcher 4.
        assert!(plan.parallel_worthy(4));
        assert!(!plan.parallel_worthy(1_000));
        let total_ops: usize = plan.islands().iter().map(|i| i.ops).sum();
        assert!(total_ops > 0);
        // Every instance and canonical signal is accounted for exactly once.
        let inst_total: usize = plan.islands().iter().map(|i| i.instances.len()).sum();
        assert_eq!(inst_total, design.num_instances());
    }
}
