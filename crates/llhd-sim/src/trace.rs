//! Simulation traces and VCD output.
//!
//! The paper validates the simulators by checking that the produced traces
//! are identical to those of a commercial simulator. [`Trace`] records every
//! value change of every traced signal, can be diffed against another trace,
//! and can be emitted in the standard Value Change Dump (VCD) format.

use llhd::value::{ConstValue, TimeValue};
use std::fmt::Write;

/// A single recorded value change.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// The simulation time of the change.
    pub time: TimeValue,
    /// The hierarchical name of the signal.
    pub signal: String,
    /// The new value.
    pub value: ConstValue,
}

/// The ordered list of value changes produced by a simulation run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Record a change.
    pub fn record(&mut self, time: TimeValue, signal: impl Into<String>, value: ConstValue) {
        self.events.push(TraceEvent {
            time,
            signal: signal.into(),
            value,
        });
    }

    /// All events in order of occurrence.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The number of recorded changes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The changes of one signal (matched by suffix so hierarchical prefixes
    /// can be ignored).
    pub fn changes_of<'a>(&'a self, signal: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.signal == signal || e.signal.ends_with(&format!(".{}", signal)))
    }

    /// Compare against another trace, ignoring delta/epsilon ordering within
    /// the same femtosecond: both traces are reduced to the final value each
    /// signal holds at each physical timestamp, which is the observable
    /// behaviour a waveform viewer would show.
    pub fn equivalent(&self, other: &Trace) -> bool {
        self.canonical() == other.canonical()
    }

    /// The canonical (physical-time, signal, final value) sequence used for
    /// trace comparison.
    pub fn canonical(&self) -> Vec<(u128, String, ConstValue)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<(u128, String), ConstValue> = BTreeMap::new();
        for event in &self.events {
            map.insert(
                (event.time.as_femtos(), event.signal.clone()),
                event.value.clone(),
            );
        }
        // Remove entries that do not change the value relative to the
        // previous entry of the same signal.
        let mut last: std::collections::HashMap<String, ConstValue> = Default::default();
        let mut out = vec![];
        for ((time, signal), value) in map {
            if last.get(&signal) == Some(&value) {
                continue;
            }
            last.insert(signal.clone(), value.clone());
            out.push((time, signal, value));
        }
        out
    }

    /// Emit the trace in Value Change Dump (VCD) format.
    pub fn to_vcd(&self, timescale: &str) -> String {
        let mut out = String::new();
        writeln!(out, "$timescale {} $end", timescale).unwrap();
        // Collect signals and assign identifier codes.
        let mut signals: Vec<String> = vec![];
        for event in &self.events {
            if !signals.contains(&event.signal) {
                signals.push(event.signal.clone());
            }
        }
        writeln!(out, "$scope module top $end").unwrap();
        for (i, signal) in signals.iter().enumerate() {
            let width = self
                .events
                .iter()
                .find(|e| &e.signal == signal)
                .map(|e| e.value.ty().bit_size().max(1))
                .unwrap_or(1);
            writeln!(out, "$var wire {} s{} {} $end", width, i, signal).unwrap();
        }
        writeln!(out, "$upscope $end").unwrap();
        writeln!(out, "$enddefinitions $end").unwrap();
        let mut current_time = None;
        for event in &self.events {
            let femtos = event.time.as_femtos();
            if current_time != Some(femtos) {
                writeln!(out, "#{}", femtos).unwrap();
                current_time = Some(femtos);
            }
            let idx = signals.iter().position(|s| s == &event.signal).unwrap();
            let bits = match &event.value {
                ConstValue::Int(v) => {
                    let mut s = String::new();
                    for i in (0..v.width()).rev() {
                        s.push(if v.bit(i) { '1' } else { '0' });
                    }
                    s
                }
                ConstValue::Logic(v) => format!("{}", v),
                other => format!("{}", other),
            };
            if bits.len() == 1 {
                writeln!(out, "{}s{}", bits, idx).unwrap();
            } else {
                writeln!(out, "b{} s{}", bits, idx).unwrap();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u128) -> TimeValue {
        TimeValue::from_nanos(ns)
    }

    #[test]
    fn record_and_query() {
        let mut trace = Trace::new();
        trace.record(t(1), "top.clk", ConstValue::bool(true));
        trace.record(t(2), "top.clk", ConstValue::bool(false));
        trace.record(t(2), "top.q", ConstValue::int(8, 5));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.changes_of("clk").count(), 2);
        assert_eq!(trace.changes_of("top.q").count(), 1);
        assert_eq!(trace.changes_of("missing").count(), 0);
    }

    #[test]
    fn equivalence_ignores_delta_ordering() {
        let mut a = Trace::new();
        a.record(TimeValue::new(1000, 0, 0), "x", ConstValue::int(8, 1));
        a.record(TimeValue::new(1000, 1, 0), "x", ConstValue::int(8, 2));
        let mut b = Trace::new();
        b.record(TimeValue::new(1000, 0, 0), "x", ConstValue::int(8, 2));
        assert!(a.equivalent(&b));
        let mut c = Trace::new();
        c.record(TimeValue::new(1000, 0, 0), "x", ConstValue::int(8, 3));
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn equivalence_skips_redundant_changes() {
        let mut a = Trace::new();
        a.record(t(1), "x", ConstValue::int(8, 1));
        a.record(t(2), "x", ConstValue::int(8, 1));
        a.record(t(3), "x", ConstValue::int(8, 2));
        let mut b = Trace::new();
        b.record(t(1), "x", ConstValue::int(8, 1));
        b.record(t(3), "x", ConstValue::int(8, 2));
        assert!(a.equivalent(&b));
    }

    #[test]
    fn vcd_output_contains_definitions_and_changes() {
        let mut trace = Trace::new();
        trace.record(t(1), "clk", ConstValue::bool(true));
        trace.record(t(2), "bus", ConstValue::int(4, 0b1010));
        let vcd = trace.to_vcd("1fs");
        assert!(vcd.contains("$timescale 1fs $end"));
        assert!(vcd.contains("$var wire 1 s0 clk $end"));
        assert!(vcd.contains("$var wire 4 s1 bus $end"));
        assert!(vcd.contains("#1000000"));
        assert!(vcd.contains("1s0"));
        assert!(vcd.contains("b1010 s1"));
    }
}
