//! Simulation traces and VCD output.
//!
//! The paper validates the simulators by checking that the produced traces
//! are identical to those of a commercial simulator. [`Trace`] records every
//! value change of every traced signal, can be diffed against another trace,
//! and can be emitted in the standard Value Change Dump (VCD) format.
//!
//! Signal names are **interned**: the trace holds one name table and every
//! event stores a compact [`TraceId`] into it, so recording a change on the
//! simulation hot path never allocates a string. Engines pre-seed the table
//! with the elaborated design's signal names (see [`Trace::with_names`]) and
//! record through [`Trace::record_id`]; ad-hoc construction by name keeps
//! working through [`Trace::record`], which interns on first use.

use llhd::value::{ConstValue, TimeValue};
use std::collections::HashMap;
use std::fmt::Write;
use std::sync::Arc;

/// An interned signal name inside one [`Trace`]'s name table.
///
/// Traces produced by the engines index the table by *resolved*
/// [`SignalId`](crate::design::SignalId), so the same design yields the
/// same ids in both simulators — which is what keeps their event lists
/// byte-comparable.
pub type TraceId = u32;

/// A single recorded value change.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// The simulation time of the change.
    pub time: TimeValue,
    /// The interned name of the signal (resolve via [`Trace::name_of`]).
    pub signal: TraceId,
    /// The new value.
    pub value: ConstValue,
}

/// The ordered list of value changes produced by a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The interned signal names, indexed by [`TraceId`]. Shared (`Arc`)
    /// so splitting a run into result snapshots reuses one table instead
    /// of cloning every name.
    names: Arc<Vec<String>>,
    /// Whether `lookup` has been populated from a pre-seeded name table
    /// (built lazily on the first record-by-name).
    lookup_built: bool,
    /// Reverse lookup for [`Trace::record`]; engines bypass it entirely.
    lookup: HashMap<String, TraceId>,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Create a trace whose name table is pre-seeded with `names`, so
    /// [`Trace::record_id`] can be used with indices into that table
    /// (engines pass the elaborated signal names, indexed by resolved
    /// signal id).
    pub fn with_names(names: Vec<String>) -> Self {
        Self::with_shared_names(Arc::new(names))
    }

    /// Create a trace over an already-shared name table (cheap: no name
    /// is cloned). Used to continue recording against the same table
    /// after the events of a run were taken out.
    pub fn with_shared_names(names: Arc<Vec<String>>) -> Self {
        // The reverse-lookup map is built lazily on the first `record` by
        // name: engines only ever record by id, and a map over a large
        // design's signal table would be pure construction overhead.
        Trace {
            names,
            lookup_built: false,
            lookup: HashMap::new(),
            events: Vec::new(),
        }
    }

    /// The shared name table (cheap to clone into another trace).
    pub fn shared_names(&self) -> Arc<Vec<String>> {
        Arc::clone(&self.names)
    }

    /// Intern `name`, returning its id.
    pub fn intern(&mut self, name: &str) -> TraceId {
        if !self.lookup_built {
            self.lookup = self
                .names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), i as TraceId))
                .collect();
            self.lookup_built = true;
        }
        if let Some(&id) = self.lookup.get(name) {
            return id;
        }
        let id = self.names.len() as TraceId;
        Arc::make_mut(&mut self.names).push(name.to_string());
        self.lookup.insert(name.to_string(), id);
        id
    }

    /// Record a change by signal name (interned on first use).
    pub fn record(&mut self, time: TimeValue, signal: &str, value: ConstValue) {
        let signal = self.intern(signal);
        self.record_id(time, signal, value);
    }

    /// Record a change of a pre-interned signal. This is the engine hot
    /// path: no hashing, no string allocation.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is not an id of this trace's name table —
    /// failing here, at the bad record, beats an out-of-bounds panic
    /// later in an unrelated `to_vcd`/`name_of` call.
    #[inline]
    pub fn record_id(&mut self, time: TimeValue, signal: TraceId, value: ConstValue) {
        assert!(
            (signal as usize) < self.names.len(),
            "record_id: signal id {} out of range ({} interned names)",
            signal,
            self.names.len()
        );
        self.events.push(TraceEvent {
            time,
            signal,
            value,
        });
    }

    /// All events in order of occurrence.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Move all recorded events out of the trace, leaving the name table in
    /// place so recording can continue. Streaming trace sinks drain the
    /// engine trace through this after every step.
    pub fn drain_events_into(&mut self, buf: &mut Vec<TraceEvent>) {
        buf.append(&mut self.events);
    }

    /// Append pre-recorded events (from the same name table) to this trace.
    ///
    /// # Panics
    ///
    /// Panics if an event's id is outside this trace's name table — the
    /// same fail-fast contract as [`Trace::record_id`].
    pub fn extend_events(&mut self, events: impl IntoIterator<Item = TraceEvent>) {
        let names = self.names.len() as TraceId;
        self.events.extend(events.into_iter().inspect(|event| {
            assert!(
                event.signal < names,
                "extend_events: signal id {} out of range ({} interned names)",
                event.signal,
                names
            );
        }));
    }

    /// The interned name table, indexed by [`TraceId`].
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The name of an interned signal.
    pub fn name_of(&self, signal: TraceId) -> &str {
        &self.names[signal as usize]
    }

    /// The number of recorded changes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether an interned name matches a query (exactly, or as the last
    /// hierarchical component).
    fn name_matches(name: &str, query: &str) -> bool {
        name == query
            || (name.ends_with(query)
                && name.as_bytes().get(name.len() - query.len() - 1) == Some(&b'.'))
    }

    /// The changes of one signal (matched by suffix so hierarchical prefixes
    /// can be ignored).
    pub fn changes_of<'a>(&'a self, signal: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        // Precompute which interned ids match, so the event scan does no
        // string work.
        let matches: Vec<bool> = self
            .names
            .iter()
            .map(|n| Self::name_matches(n, signal))
            .collect();
        self.events
            .iter()
            .filter(move |e| matches[e.signal as usize])
    }

    /// Compare against another trace, ignoring delta/epsilon ordering within
    /// the same femtosecond: both traces are reduced to the final value each
    /// signal holds at each physical timestamp, which is the observable
    /// behaviour a waveform viewer would show.
    pub fn equivalent(&self, other: &Trace) -> bool {
        self.canonical() == other.canonical()
    }

    /// The canonical (physical-time, signal, final value) sequence used for
    /// trace comparison.
    pub fn canonical(&self) -> Vec<(u128, String, ConstValue)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<(u128, &str), &ConstValue> = BTreeMap::new();
        for event in &self.events {
            map.insert(
                (event.time.as_femtos(), self.name_of(event.signal)),
                &event.value,
            );
        }
        // Remove entries that do not change the value relative to the
        // previous entry of the same signal.
        let mut last: HashMap<&str, &ConstValue> = Default::default();
        let mut out = vec![];
        for ((time, signal), value) in map {
            if last.get(signal) == Some(&value) {
                continue;
            }
            last.insert(signal, value);
            out.push((time, signal.to_string(), value.clone()));
        }
        out
    }

    /// Emit the trace in Value Change Dump (VCD) format.
    pub fn to_vcd(&self, timescale: &str) -> String {
        let mut out = String::new();
        // Collect signals in order of first appearance and assign
        // identifier codes.
        let mut code_of: Vec<Option<usize>> = vec![None; self.names.len()];
        let mut signals: Vec<TraceId> = vec![];
        let mut widths: Vec<usize> = vec![];
        for event in &self.events {
            if code_of[event.signal as usize].is_none() {
                code_of[event.signal as usize] = Some(signals.len());
                signals.push(event.signal);
                widths.push(event.value.ty().bit_size().max(1));
            }
        }
        write_vcd_header(
            &mut out,
            timescale,
            signals
                .iter()
                .zip(widths.iter())
                .map(|(&signal, &width)| (self.name_of(signal), width)),
        );
        let mut current_time = None;
        for event in &self.events {
            let femtos = event.time.as_femtos();
            if current_time != Some(femtos) {
                writeln!(out, "#{}", femtos).unwrap();
                current_time = Some(femtos);
            }
            let idx = code_of[event.signal as usize].unwrap();
            write_vcd_change(&mut out, &event.value, idx);
        }
        out
    }
}

/// Format the VCD prologue (`$timescale` through `$enddefinitions`), with
/// `vars` as `(name, width)` in identifier-code order. Shared by
/// [`Trace::to_vcd`] and the streaming VCD sink, which must produce
/// byte-identical documents.
pub(crate) fn write_vcd_header<'a>(
    out: &mut String,
    timescale: &str,
    vars: impl Iterator<Item = (&'a str, usize)>,
) {
    writeln!(out, "$timescale {} $end", timescale).unwrap();
    writeln!(out, "$scope module top $end").unwrap();
    for (i, (name, width)) in vars.enumerate() {
        writeln!(out, "$var wire {} s{} {} $end", width, i, name).unwrap();
    }
    writeln!(out, "$upscope $end").unwrap();
    writeln!(out, "$enddefinitions $end").unwrap();
}

/// Format one VCD value-change line. Shared by [`Trace::to_vcd`] and the
/// streaming VCD sink, which must produce byte-identical output.
pub(crate) fn write_vcd_change(out: &mut String, value: &ConstValue, code: usize) {
    let bits = match value {
        ConstValue::Int(v) => {
            let mut s = String::new();
            for i in (0..v.width()).rev() {
                s.push(if v.bit(i) { '1' } else { '0' });
            }
            s
        }
        ConstValue::Logic(v) => format!("{}", v),
        other => format!("{}", other),
    };
    if bits.len() == 1 {
        writeln!(out, "{}s{}", bits, code).unwrap();
    } else {
        writeln!(out, "b{} s{}", bits, code).unwrap();
    }
}

/// Trace equality is semantic: the same changes, in the same order, under
/// the same names — regardless of how the name tables were built (engines
/// pre-seed the full signal table, hand-built traces intern on first use).
impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.events.len() == other.events.len()
            && self
                .events
                .iter()
                .zip(other.events.iter())
                .all(|(a, b)| {
                    a.time == b.time
                        && a.value == b.value
                        && self.name_of(a.signal) == other.name_of(b.signal)
                })
    }
}

impl Eq for Trace {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u128) -> TimeValue {
        TimeValue::from_nanos(ns)
    }

    #[test]
    fn record_and_query() {
        let mut trace = Trace::new();
        trace.record(t(1), "top.clk", ConstValue::bool(true));
        trace.record(t(2), "top.clk", ConstValue::bool(false));
        trace.record(t(2), "top.q", ConstValue::int(8, 5));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.changes_of("clk").count(), 2);
        assert_eq!(trace.changes_of("top.q").count(), 1);
        assert_eq!(trace.changes_of("missing").count(), 0);
        // Interning: two records of the same name share one table entry.
        assert_eq!(trace.names().len(), 2);
    }

    #[test]
    fn preseeded_and_interned_traces_compare_equal() {
        let mut seeded = Trace::with_names(vec![
            "top.unused".to_string(),
            "top.clk".to_string(),
        ]);
        seeded.record_id(t(1), 1, ConstValue::bool(true));
        let mut adhoc = Trace::new();
        adhoc.record(t(1), "top.clk", ConstValue::bool(true));
        assert_eq!(seeded, adhoc);
        assert_eq!(seeded.name_of(seeded.events()[0].signal), "top.clk");
    }

    #[test]
    fn equivalence_ignores_delta_ordering() {
        let mut a = Trace::new();
        a.record(TimeValue::new(1000, 0, 0), "x", ConstValue::int(8, 1));
        a.record(TimeValue::new(1000, 1, 0), "x", ConstValue::int(8, 2));
        let mut b = Trace::new();
        b.record(TimeValue::new(1000, 0, 0), "x", ConstValue::int(8, 2));
        assert!(a.equivalent(&b));
        let mut c = Trace::new();
        c.record(TimeValue::new(1000, 0, 0), "x", ConstValue::int(8, 3));
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn equivalence_skips_redundant_changes() {
        let mut a = Trace::new();
        a.record(t(1), "x", ConstValue::int(8, 1));
        a.record(t(2), "x", ConstValue::int(8, 1));
        a.record(t(3), "x", ConstValue::int(8, 2));
        let mut b = Trace::new();
        b.record(t(1), "x", ConstValue::int(8, 1));
        b.record(t(3), "x", ConstValue::int(8, 2));
        assert!(a.equivalent(&b));
    }

    #[test]
    fn suffix_matching_requires_a_component_boundary() {
        let mut trace = Trace::new();
        trace.record(t(1), "top.sclk", ConstValue::bool(true));
        trace.record(t(2), "top.clk", ConstValue::bool(true));
        // "clk" must not match "sclk" (no '.' boundary).
        assert_eq!(trace.changes_of("clk").count(), 1);
    }

    #[test]
    fn draining_keeps_the_name_table() {
        let mut trace = Trace::with_names(vec!["a".to_string()]);
        trace.record_id(t(1), 0, ConstValue::bool(true));
        let mut buf = vec![];
        trace.drain_events_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert!(trace.is_empty());
        // Recording continues against the same table.
        trace.record_id(t(2), 0, ConstValue::bool(false));
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.name_of(0), "a");
    }

    #[test]
    fn vcd_output_contains_definitions_and_changes() {
        let mut trace = Trace::new();
        trace.record(t(1), "clk", ConstValue::bool(true));
        trace.record(t(2), "bus", ConstValue::int(4, 0b1010));
        let vcd = trace.to_vcd("1fs");
        assert!(vcd.contains("$timescale 1fs $end"));
        assert!(vcd.contains("$var wire 1 s0 clk $end"));
        assert!(vcd.contains("$var wire 4 s1 bus $end"));
        assert!(vcd.contains("#1000000"));
        assert!(vcd.contains("1s0"));
        assert!(vcd.contains("b1010 s1"));
    }
}
