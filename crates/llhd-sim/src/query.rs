//! Design introspection.
//!
//! Elaboration computes the design's structure — hierarchy, signal
//! bindings, who touches what — and the engines then consume it silently.
//! This module keeps that structure queryable: a [`DesignQuery`] is built
//! once per elaborated design by a static scan of every instance's unit
//! body, and answers the questions an interactive client asks about a
//! waveform — where does this signal live, which instance drives it,
//! which instances wake up when it changes.
//!
//! The ids it hands out are the same stable ids the rest of the stack
//! uses: [`SignalId`] indexes [`ElaboratedDesign::signals`],
//! [`InstanceId`] indexes [`ElaboratedDesign::instances`], both dense and
//! deterministic for a given module + top (elaboration order is a
//! deterministic walk of the instantiation tree).
//!
//! ```
//! use llhd::assembly::parse_module;
//! use llhd_sim::design::elaborate;
//! use llhd_sim::query::DesignQuery;
//!
//! let module = parse_module(
//!     "proc @blink () -> (i1$ %led) {
//!     entry:
//!         %on = const i1 1
//!         %t = const time 5ns
//!         drv i1$ %led, %on after %t
//!         halt
//!     }",
//! )
//! .unwrap();
//! let design = elaborate(&module, "blink").unwrap();
//! let query = DesignQuery::build(&module, &design);
//! let led = design.signal_by_name("led").unwrap();
//! assert_eq!(query.drivers_of(led).len(), 1);
//! ```

use crate::design::{ElaboratedDesign, InstanceId, InstanceKind, SignalId};
use crate::islands::IslandPlan;
use llhd::ir::{Module, Opcode, Value};

/// One instance in the flattened hierarchy listing.
#[derive(Clone, Debug)]
pub struct HierarchyNode {
    /// The instance's stable id.
    pub instance: InstanceId,
    /// The full hierarchical path (dot-separated).
    pub path: String,
    /// Process or entity.
    pub kind: InstanceKind,
    /// The name of the unit this instance executes.
    pub unit: String,
    /// Nesting depth (number of dots in the path).
    pub depth: usize,
}

/// A static signal-connectivity and hierarchy index over an elaborated
/// design. Build once with [`DesignQuery::build`]; all queries are then
/// slice lookups.
#[derive(Clone, Debug, Default)]
pub struct DesignQuery {
    /// Canonical signal index per signal (aliases resolved), by
    /// `SignalId.0`.
    canon: Vec<usize>,
    /// Instances that drive each canonical signal (`drv`, `reg`, or a
    /// `del` output), sorted, by canonical index.
    drivers: Vec<Vec<InstanceId>>,
    /// Instances whose execution observes each canonical signal (`prb`,
    /// `wait` sensitivity, or a `del` source), sorted, by canonical index.
    watchers: Vec<Vec<InstanceId>>,
    /// The hierarchy listing, in elaboration order.
    hierarchy: Vec<HierarchyNode>,
    /// The sensitivity-island partition (see [`crate::islands`]).
    islands: IslandPlan,
}

impl DesignQuery {
    /// Scan every instance's unit body and index the design's structure.
    ///
    /// The scan mirrors what the engines execute: `drv`/`drv cond` and
    /// `reg` drive their first signal argument, `del` drives its result
    /// from its source, `prb` and the signal arguments of `wait` observe.
    /// Values that are not bound to a signal in the instance's signal map
    /// (e.g. dead arguments) are skipped, exactly as at run time.
    pub fn build(module: &Module, design: &ElaboratedDesign) -> Self {
        let canon: Vec<usize> = (0..design.num_signals())
            .map(|i| design.resolve(SignalId(i)).0)
            .collect();
        let mut drivers: Vec<Vec<InstanceId>> = vec![Vec::new(); design.num_signals()];
        let mut watchers: Vec<Vec<InstanceId>> = vec![Vec::new(); design.num_signals()];
        let mut hierarchy = Vec::with_capacity(design.num_instances());

        for (idx, instance) in design.instances.iter().enumerate() {
            let id = InstanceId(idx);
            let unit = module.unit(instance.unit);
            hierarchy.push(HierarchyNode {
                instance: id,
                path: instance.name.clone(),
                kind: instance.kind,
                unit: unit.name().to_string(),
                depth: instance.name.matches('.').count(),
            });
            let sig_of = |value: Value| -> Option<usize> {
                instance
                    .signal_map
                    .get(&value)
                    .map(|&sig| design.resolve(sig).0)
            };
            for block in unit.blocks() {
                for inst in unit.insts(block) {
                    let data = unit.inst_data(inst);
                    match data.opcode {
                        Opcode::Drv | Opcode::DrvCond | Opcode::Reg => {
                            if let Some(sig) = sig_of(data.args[0]) {
                                drivers[sig].push(id);
                            }
                        }
                        Opcode::Del => {
                            if let Some(src) = sig_of(data.args[0]) {
                                watchers[src].push(id);
                            }
                            if let Some(result) = unit.get_inst_result(inst) {
                                if let Some(dst) = sig_of(result) {
                                    drivers[dst].push(id);
                                }
                            }
                        }
                        Opcode::Prb => {
                            if let Some(sig) = sig_of(data.args[0]) {
                                watchers[sig].push(id);
                            }
                        }
                        Opcode::Wait | Opcode::WaitTime => {
                            let signal_args = if data.opcode == Opcode::WaitTime {
                                &data.args[1..]
                            } else {
                                &data.args[..]
                            };
                            for &arg in signal_args {
                                if let Some(sig) = sig_of(arg) {
                                    watchers[sig].push(id);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        for list in drivers.iter_mut().chain(watchers.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        DesignQuery {
            canon,
            drivers,
            watchers,
            hierarchy,
            islands: IslandPlan::build(module, design),
        }
    }

    /// The flattened hierarchy, in elaboration order (children of an
    /// entity precede the entity itself).
    pub fn hierarchy(&self) -> &[HierarchyNode] {
        &self.hierarchy
    }

    /// The instances that drive `signal` (through any `con` alias).
    pub fn drivers_of(&self, signal: SignalId) -> &[InstanceId] {
        &self.drivers[self.canon[signal.0]]
    }

    /// The instances whose execution observes `signal` (through any `con`
    /// alias): probes, wait sensitivity lists, and `del` sources.
    pub fn watchers_of(&self, signal: SignalId) -> &[InstanceId] {
        &self.watchers[self.canon[signal.0]]
    }

    /// The canonical representative of `signal` (identity for unaliased
    /// signals), as cached at build time.
    pub fn canonical(&self, signal: SignalId) -> SignalId {
        SignalId(self.canon[signal.0])
    }

    /// The sensitivity-island partition of the design: which instances
    /// and signals can simulate independently within one instant, the
    /// cross-island boundary signals, and the assignment digest that
    /// checkpoints embed. See [`crate::islands`] for the graph
    /// construction.
    pub fn islands(&self) -> &IslandPlan {
        &self.islands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::elaborate;
    use llhd::assembly::parse_module;

    const ACC: &str = r#"
        entity @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
            %clkp = prb i1$ %clk
            %dp = prb i32$ %d
            reg i32$ %q, %dp rise %clkp
        }
        entity @acc_comb (i32$ %q, i32$ %x) -> (i32$ %d) {
            %qp = prb i32$ %q
            %xp = prb i32$ %x
            %sum = add i32 %qp, %xp
            %delay = const time 0s
            drv i32$ %d, %sum after %delay
        }
        entity @acc (i1$ %clk, i32$ %x) -> (i32$ %q) {
            %zero = const i32 0
            %d = sig i32 %zero
            inst @acc_ff (%clk, %d) -> (%q)
            inst @acc_comb (%q, %x) -> (%d)
        }
        proc @acc_tb (i32$ %q) -> (i1$ %clk, i32$ %x) {
        entry:
            %one = const i1 1
            %t = const time 1ns
            drv i1$ %clk, %one after %t
            wait %entry, %q
        }
        entity @top () -> () {
            %zero0 = const i1 0
            %zero1 = const i32 0
            %clk = sig i1 %zero0
            %x = sig i32 %zero1
            %q = sig i32 %zero1
            inst @acc (%clk, %x) -> (%q)
            inst @acc_tb (%q) -> (%clk, %x)
        }
    "#;

    fn names(design: &ElaboratedDesign, ids: &[InstanceId]) -> Vec<String> {
        ids.iter()
            .map(|&i| design.instances[i.0].name.clone())
            .collect()
    }

    #[test]
    fn hierarchy_lists_every_instance_with_depth() {
        let module = parse_module(ACC).unwrap();
        let design = elaborate(&module, "top").unwrap();
        let query = DesignQuery::build(&module, &design);
        assert_eq!(query.hierarchy().len(), design.num_instances());
        let top = query
            .hierarchy()
            .iter()
            .find(|n| n.path == "top")
            .expect("top instance");
        assert_eq!(top.depth, 0);
        assert_eq!(top.kind, InstanceKind::Entity);
        let ff = query
            .hierarchy()
            .iter()
            .find(|n| n.path.ends_with("acc_ff"))
            .expect("ff instance");
        assert_eq!(ff.depth, 2);
        assert_eq!(ff.unit, "@acc_ff");
    }

    #[test]
    fn drivers_and_watchers_follow_the_ops() {
        let module = parse_module(ACC).unwrap();
        let design = elaborate(&module, "top").unwrap();
        let query = DesignQuery::build(&module, &design);

        // q is driven by the reg in acc_ff, watched by acc_comb's probe
        // and the testbench's wait.
        let q = design.signal_by_name("top.q").unwrap();
        assert_eq!(names(&design, query.drivers_of(q)), vec!["top.acc.acc_ff"]);
        let q_watchers = names(&design, query.watchers_of(q));
        assert!(q_watchers.contains(&"top.acc.acc_comb".to_string()));
        assert!(q_watchers.contains(&"top.acc_tb".to_string()));

        // clk is driven by the testbench only.
        let clk = design.signal_by_name("top.clk").unwrap();
        assert_eq!(names(&design, query.drivers_of(clk)), vec!["top.acc_tb"]);
        assert!(names(&design, query.watchers_of(clk))
            .contains(&"top.acc.acc_ff".to_string()));

        // The internal d net: driven by the comb cloud, watched by the ff.
        let d = design.signal_by_name("top.acc.d").unwrap();
        assert_eq!(
            names(&design, query.drivers_of(d)),
            vec!["top.acc.acc_comb"]
        );
        assert_eq!(names(&design, query.watchers_of(d)), vec!["top.acc.acc_ff"]);
    }

    #[test]
    fn queries_resolve_connected_aliases() {
        let module = parse_module(
            r#"
            proc @driver () -> (i8$ %out) {
            entry:
                %v = const i8 7
                %t = const time 1ns
                drv i8$ %out, %v after %t
                halt
            }
            entity @top () -> () {
                %zero = const i8 0
                %a = sig i8 %zero
                %b = sig i8 %zero
                con i8$ %a, %b
                inst @driver () -> (%a)
            }
            "#,
        )
        .unwrap();
        let design = elaborate(&module, "top").unwrap();
        let query = DesignQuery::build(&module, &design);
        let a = design.signal_by_name("top.a").unwrap();
        let b = design.signal_by_name("top.b").unwrap();
        assert_eq!(query.canonical(a), query.canonical(b));
        // Asking either alias reports the same driver.
        assert_eq!(query.drivers_of(a), query.drivers_of(b));
        assert_eq!(names(&design, query.drivers_of(b)), vec!["top.driver"]);
    }

    #[test]
    fn del_is_a_driver_of_its_result_and_watcher_of_its_source() {
        let module = parse_module(
            r#"
            entity @top (i1$ %in) -> () {
                %t = const time 1ns
                %d = del i1$ %in, %t
            }
            "#,
        )
        .unwrap();
        let design = elaborate(&module, "top").unwrap();
        let query = DesignQuery::build(&module, &design);
        let input = design.signal_by_name("top.in").unwrap();
        let delayed = design.signal_by_name("top.d").unwrap();
        assert_eq!(names(&design, query.watchers_of(input)), vec!["top"]);
        assert_eq!(names(&design, query.drivers_of(delayed)), vec!["top"]);
    }
}
