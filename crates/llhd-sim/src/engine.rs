//! The event-driven simulation engine.
//!
//! The engine keeps the current value of every signal, an event queue
//! ordered by [`TimeValue`] (physical time, delta step, epsilon step), and
//! the execution state of every process instance. Entities are re-evaluated
//! whenever one of the signals they probe changes; processes resume when a
//! signal in their current sensitivity list changes or their wait timeout
//! expires.

use crate::design::{ElaborateError, ElaboratedDesign, InstanceKind, SignalId};
use crate::trace::Trace;
use llhd::eval::eval_pure;
use llhd::ir::{Block, Inst, Module, Opcode, RegMode, UnitData, UnitKind, Value};
use llhd::value::{ConstValue, TimeValue};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Simulation stops once the queue is empty or this time is exceeded.
    pub max_time: TimeValue,
    /// Guard against unbounded delta cycles within one physical instant.
    pub max_deltas_per_instant: u32,
    /// Guard against processes looping without suspending.
    pub max_steps_per_activation: usize,
    /// Record value changes into the trace.
    pub trace: bool,
    /// Restrict the trace to signals whose name ends with one of these
    /// suffixes. `None` records every signal.
    pub trace_filter: Option<Vec<String>>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_time: TimeValue::from_micros(1),
            max_deltas_per_instant: 10_000,
            max_steps_per_activation: 1_000_000,
            trace: true,
            trace_filter: None,
        }
    }
}

impl SimConfig {
    /// Run until the given physical time (in nanoseconds).
    pub fn until_nanos(nanos: u128) -> Self {
        SimConfig {
            max_time: TimeValue::from_nanos(nanos),
            ..SimConfig::default()
        }
    }

    /// Run until the given time.
    pub fn until(time: TimeValue) -> Self {
        SimConfig {
            max_time: time,
            ..SimConfig::default()
        }
    }

    /// Disable tracing (useful for benchmarking).
    pub fn without_trace(mut self) -> Self {
        self.trace = false;
        self
    }

    /// Only trace signals whose hierarchical name ends with one of the given
    /// suffixes.
    pub fn with_trace_filter(mut self, names: &[&str]) -> Self {
        self.trace_filter = Some(names.iter().map(|s| s.to_string()).collect());
        self
    }
}

/// An error produced during simulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Elaboration failed.
    Elaborate(ElaborateError),
    /// The design used a construct the simulator does not support, or ran
    /// away (delta loop, non-suspending process).
    Runtime(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match self {
            SimError::Elaborate(e) => write!(f, "elaboration error: {}", e),
            SimError::Runtime(msg) => write!(f, "runtime error: {}", msg),
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The time at which the simulation stopped.
    pub end_time: TimeValue,
    /// The number of observed signal value changes.
    pub signal_changes: usize,
    /// The number of `llhd.assert` intrinsic calls evaluated.
    pub assertions_checked: usize,
    /// The number of failed assertions.
    pub assertion_failures: usize,
    /// The number of processes that reached `halt`.
    pub halted_processes: usize,
    /// The number of instance activations (process resumes plus entity
    /// evaluations) executed.
    pub activations: usize,
    /// The recorded trace.
    pub trace: Trace,
}

/// Events scheduled for one instant.
#[derive(Default, Clone, Debug)]
struct Instant {
    drives: Vec<(SignalId, ConstValue)>,
    wakes: Vec<(usize, u64)>,
}

/// Execution state of a process instance.
#[derive(Debug)]
enum ProcStatus {
    /// Ready to start at the entry block.
    Ready,
    /// Suspended in a `wait`.
    Suspended {
        resume: Block,
        observed: Vec<SignalId>,
        token: u64,
    },
    /// Stopped forever.
    Halted,
}

#[derive(Debug)]
struct ProcState {
    status: ProcStatus,
    values: HashMap<Value, ConstValue>,
    memory: HashMap<Value, ConstValue>,
    token: u64,
}

#[derive(Default, Debug)]
struct EntityState {
    /// Previous sample of each `reg` trigger, keyed by (instruction, trigger
    /// index).
    reg_prev: HashMap<(Inst, usize), ConstValue>,
}

/// The event-driven simulator.
pub struct Simulator<'a> {
    module: &'a Module,
    design: ElaboratedDesign,
    config: SimConfig,
    values: Vec<ConstValue>,
    queue: BTreeMap<TimeValue, Instant>,
    time: TimeValue,
    proc_states: Vec<ProcState>,
    entity_states: Vec<EntityState>,
    /// Static sensitivity of entity instances: resolved signal → instances.
    entity_sensitivity: HashMap<SignalId, Vec<usize>>,
    trace: Trace,
    signal_changes: usize,
    assertions_checked: usize,
    assertion_failures: usize,
    activations: usize,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for an elaborated design.
    pub fn new(module: &'a Module, design: ElaboratedDesign, config: SimConfig) -> Self {
        let values = design
            .signals
            .iter()
            .map(|s| s.init.clone())
            .collect::<Vec<_>>();
        let mut proc_states = Vec::with_capacity(design.instances.len());
        let mut entity_states = Vec::with_capacity(design.instances.len());
        for _ in &design.instances {
            proc_states.push(ProcState {
                status: ProcStatus::Ready,
                values: HashMap::new(),
                memory: HashMap::new(),
                token: 0,
            });
            entity_states.push(EntityState::default());
        }
        // Static entity sensitivity: every signal probed (or delayed) by the
        // entity body.
        let mut entity_sensitivity: HashMap<SignalId, Vec<usize>> = HashMap::new();
        for (idx, instance) in design.instances.iter().enumerate() {
            if instance.kind != InstanceKind::Entity {
                continue;
            }
            let unit = module.unit(instance.unit);
            let body = unit.entry_block().unwrap();
            for inst in unit.insts(body) {
                let data = unit.inst_data(inst);
                if matches!(data.opcode, Opcode::Prb | Opcode::Del) {
                    if let Some(&sig) = instance.signal_map.get(&data.args[0]) {
                        entity_sensitivity
                            .entry(design.resolve(sig))
                            .or_default()
                            .push(idx);
                    }
                }
            }
        }
        Simulator {
            module,
            design,
            config,
            values,
            queue: BTreeMap::new(),
            time: TimeValue::ZERO,
            proc_states,
            entity_states,
            entity_sensitivity,
            trace: Trace::new(),
            signal_changes: 0,
            assertions_checked: 0,
            assertion_failures: 0,
            activations: 0,
        }
    }

    /// Run the simulation to completion and return the result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] for unsupported constructs, runaway
    /// delta cycles, or processes that fail to suspend.
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        // Initialization: run every process once and evaluate every entity.
        for idx in 0..self.design.instances.len() {
            match self.design.instances[idx].kind {
                InstanceKind::Process => self.run_process(idx)?,
                InstanceKind::Entity => self.eval_entity(idx)?,
            }
        }

        let mut last_physical = 0u128;
        let mut deltas_in_instant = 0u32;
        loop {
            let event_time = match self.queue.keys().next() {
                Some(&t) => t,
                None => break,
            };
            if event_time > self.config.max_time {
                break;
            }
            let instant = self.queue.remove(&event_time).unwrap();
            // Delta-loop guard.
            if event_time.as_femtos() == last_physical {
                deltas_in_instant += 1;
                if deltas_in_instant > self.config.max_deltas_per_instant {
                    return Err(SimError::Runtime(format!(
                        "delta cycle limit exceeded at {}",
                        event_time
                    )));
                }
            } else {
                last_physical = event_time.as_femtos();
                deltas_in_instant = 0;
            }
            self.time = event_time;

            // Apply drives and collect actually-changed signals.
            let mut changed: HashSet<SignalId> = HashSet::new();
            for (signal, value) in instant.drives {
                let signal = self.design.resolve(signal);
                if self.values[signal.0] != value {
                    self.values[signal.0] = value.clone();
                    self.signal_changes += 1;
                    changed.insert(signal);
                    if self.config.trace {
                        let name = &self.design.signals[signal.0].name;
                        let record = match &self.config.trace_filter {
                            None => true,
                            Some(filter) => filter
                                .iter()
                                .any(|f| name == f || name.ends_with(&format!(".{}", f))),
                        };
                        if record {
                            self.trace.record(event_time, name.clone(), value);
                        }
                    }
                }
            }

            // Collect instances to execute.
            let mut to_run: Vec<usize> = vec![];
            for &signal in &changed {
                if let Some(entities) = self.entity_sensitivity.get(&signal) {
                    for &idx in entities {
                        if !to_run.contains(&idx) {
                            to_run.push(idx);
                        }
                    }
                }
            }
            for idx in 0..self.proc_states.len() {
                if self.design.instances[idx].kind != InstanceKind::Process {
                    continue;
                }
                let woken = match &self.proc_states[idx].status {
                    ProcStatus::Suspended { observed, .. } => {
                        observed.iter().any(|s| changed.contains(s))
                    }
                    _ => false,
                };
                if woken && !to_run.contains(&idx) {
                    to_run.push(idx);
                }
            }
            for (idx, token) in instant.wakes {
                let stale = match &self.proc_states[idx].status {
                    ProcStatus::Suspended { token: t, .. } => *t != token,
                    _ => true,
                };
                if !stale && !to_run.contains(&idx) {
                    to_run.push(idx);
                }
            }

            for idx in to_run {
                match self.design.instances[idx].kind {
                    InstanceKind::Process => self.run_process(idx)?,
                    InstanceKind::Entity => self.eval_entity(idx)?,
                }
            }
        }

        let halted_processes = self
            .proc_states
            .iter()
            .filter(|s| matches!(s.status, ProcStatus::Halted))
            .count();
        Ok(SimResult {
            end_time: self.time,
            signal_changes: self.signal_changes,
            assertions_checked: self.assertions_checked,
            assertion_failures: self.assertion_failures,
            halted_processes,
            activations: self.activations,
            trace: std::mem::take(&mut self.trace),
        })
    }

    /// The current value of a signal.
    pub fn signal_value(&self, signal: SignalId) -> &ConstValue {
        &self.values[self.design.resolve(signal).0]
    }

    fn schedule_drive(&mut self, signal: SignalId, value: ConstValue, delay: &TimeValue) {
        let mut at = self.time.advance_by(delay);
        if at <= self.time {
            at = self.time.advance_by(&TimeValue::from_delta(1));
        }
        self.queue.entry(at).or_default().drives.push((signal, value));
    }

    fn schedule_wake(&mut self, instance: usize, token: u64, delay: &TimeValue) {
        let mut at = self.time.advance_by(delay);
        if at <= self.time {
            at = self.time.advance_by(&TimeValue::from_delta(1));
        }
        self.queue
            .entry(at)
            .or_default()
            .wakes
            .push((instance, token));
    }

    // ----- process execution ------------------------------------------------

    fn run_process(&mut self, idx: usize) -> Result<(), SimError> {
        self.activations += 1;
        let unit_id = self.design.instances[idx].unit;
        let unit = self.module.unit(unit_id);
        let mut block = match &self.proc_states[idx].status {
            ProcStatus::Ready => match unit.entry_block() {
                Some(b) => b,
                None => return Ok(()),
            },
            ProcStatus::Suspended { resume, .. } => *resume,
            ProcStatus::Halted => return Ok(()),
        };
        self.proc_states[idx].status = ProcStatus::Ready;
        let mut steps = 0usize;
        'outer: loop {
            let insts = unit.insts(block);
            let mut next_block: Option<Block> = None;
            for inst in insts {
                steps += 1;
                if steps > self.config.max_steps_per_activation {
                    return Err(SimError::Runtime(format!(
                        "process {} exceeded the step limit without suspending",
                        self.design.instances[idx].name
                    )));
                }
                let data = unit.inst_data(inst).clone();
                match data.opcode {
                    Opcode::Wait | Opcode::WaitTime => {
                        let (time_arg, signal_args) = if data.opcode == Opcode::WaitTime {
                            (Some(data.args[0]), &data.args[1..])
                        } else {
                            (None, &data.args[..])
                        };
                        let observed = signal_args
                            .iter()
                            .filter_map(|a| self.design.instances[idx].signal_map.get(a))
                            .map(|&s| self.design.resolve(s))
                            .collect();
                        self.proc_states[idx].token += 1;
                        let token = self.proc_states[idx].token;
                        self.proc_states[idx].status = ProcStatus::Suspended {
                            resume: data.blocks[0],
                            observed,
                            token,
                        };
                        if let Some(time_arg) = time_arg {
                            let delay = self.process_value(idx, unit, time_arg)?;
                            let delay = delay.as_time().copied().ok_or_else(|| {
                                SimError::Runtime("wait delay is not a time value".to_string())
                            })?;
                            self.schedule_wake(idx, token, &delay);
                        }
                        return Ok(());
                    }
                    Opcode::Halt => {
                        self.proc_states[idx].status = ProcStatus::Halted;
                        return Ok(());
                    }
                    Opcode::Br => {
                        next_block = Some(data.blocks[0]);
                        break;
                    }
                    Opcode::BrCond => {
                        let cond = self.process_value(idx, unit, data.args[0])?;
                        let target = if cond.is_truthy() {
                            data.blocks[1]
                        } else {
                            data.blocks[0]
                        };
                        next_block = Some(target);
                        break;
                    }
                    Opcode::Ret | Opcode::RetValue => {
                        return Err(SimError::Runtime(
                            "ret is not allowed in a process".to_string(),
                        ));
                    }
                    _ => {
                        self.execute_simple_inst(idx, unit, inst, &data)?;
                    }
                }
            }
            match next_block {
                Some(b) => {
                    block = b;
                    continue 'outer;
                }
                None => {
                    // Fell off the end of a block without a terminator.
                    return Err(SimError::Runtime(format!(
                        "process {} ran past the end of a block",
                        self.design.instances[idx].name
                    )));
                }
            }
        }
    }

    /// Execute a non-control-flow instruction within a process activation.
    fn execute_simple_inst(
        &mut self,
        idx: usize,
        unit: &UnitData,
        inst: Inst,
        data: &llhd::ir::InstData,
    ) -> Result<(), SimError> {
        match data.opcode {
            Opcode::Const => {
                let result = unit.inst_result(inst);
                self.proc_states[idx]
                    .values
                    .insert(result, data.konst.clone().unwrap());
            }
            Opcode::Prb => {
                let signal = self.resolve_signal(idx, data.args[0])?;
                let value = self.values[signal.0].clone();
                let result = unit.inst_result(inst);
                self.proc_states[idx].values.insert(result, value);
            }
            Opcode::Drv | Opcode::DrvCond => {
                if data.opcode == Opcode::DrvCond {
                    let cond = self.process_value(idx, unit, data.args[3])?;
                    if !cond.is_truthy() {
                        return Ok(());
                    }
                }
                let signal = self.resolve_signal(idx, data.args[0])?;
                let value = self.process_value(idx, unit, data.args[1])?;
                let delay = self.process_value(idx, unit, data.args[2])?;
                let delay = delay.as_time().copied().ok_or_else(|| {
                    SimError::Runtime("drive delay is not a time value".to_string())
                })?;
                self.schedule_drive(signal, value, &delay);
            }
            Opcode::Var | Opcode::Halloc => {
                let init = self.process_value(idx, unit, data.args[0])?;
                let result = unit.inst_result(inst);
                self.proc_states[idx].memory.insert(result, init);
            }
            Opcode::Ld => {
                let value = self.proc_states[idx]
                    .memory
                    .get(&data.args[0])
                    .cloned()
                    .ok_or_else(|| SimError::Runtime("load from unallocated memory".to_string()))?;
                let result = unit.inst_result(inst);
                self.proc_states[idx].values.insert(result, value);
            }
            Opcode::St => {
                let value = self.process_value(idx, unit, data.args[1])?;
                self.proc_states[idx].memory.insert(data.args[0], value);
            }
            Opcode::Free => {
                self.proc_states[idx].memory.remove(&data.args[0]);
            }
            Opcode::Call => {
                let mut args = Vec::with_capacity(data.args.len());
                for &a in &data.args {
                    args.push(self.process_value(idx, unit, a)?);
                }
                let result = self.call(unit, data, &args)?;
                if let (Some(result_value), Some(value)) = (unit.get_inst_result(inst), result) {
                    self.proc_states[idx].values.insert(result_value, value);
                }
            }
            op if op.is_pure() => {
                let mut args = Vec::with_capacity(data.args.len());
                for &a in &data.args {
                    args.push(self.process_value(idx, unit, a)?);
                }
                let value = eval_pure(op, &args, &data.imms).ok_or_else(|| {
                    SimError::Runtime(format!("cannot evaluate instruction {}", op))
                })?;
                let result = unit.inst_result(inst);
                self.proc_states[idx].values.insert(result, value);
            }
            op => {
                return Err(SimError::Runtime(format!(
                    "unsupported instruction {} in process",
                    op
                )));
            }
        }
        Ok(())
    }

    /// Look up the runtime value of an SSA value within a process instance.
    fn process_value(
        &self,
        idx: usize,
        unit: &UnitData,
        value: Value,
    ) -> Result<ConstValue, SimError> {
        if let Some(v) = self.proc_states[idx].values.get(&value) {
            return Ok(v.clone());
        }
        if let Some(c) = unit.get_const(value) {
            return Ok(c.clone());
        }
        // Signal-typed arguments read their current value when used as data.
        if let Some(&sig) = self.design.instances[idx].signal_map.get(&value) {
            return Ok(self.values[self.design.resolve(sig).0].clone());
        }
        Err(SimError::Runtime(format!(
            "use of a value before definition ({:?} in {})",
            value, self.design.instances[idx].name
        )))
    }

    fn resolve_signal(&self, idx: usize, value: Value) -> Result<SignalId, SimError> {
        self.design.instances[idx]
            .signal_map
            .get(&value)
            .map(|&s| self.design.resolve(s))
            .ok_or_else(|| {
                SimError::Runtime(format!(
                    "value {:?} is not bound to a signal in {}",
                    value, self.design.instances[idx].name
                ))
            })
    }

    // ----- function calls ---------------------------------------------------

    fn call(
        &mut self,
        caller: &UnitData,
        data: &llhd::ir::InstData,
        args: &[ConstValue],
    ) -> Result<Option<ConstValue>, SimError> {
        let ext = data
            .ext_unit
            .ok_or_else(|| SimError::Runtime("call without a target".to_string()))?;
        let name = caller.ext_unit_data(ext).name.clone();
        // Intrinsics.
        if let Some(ident) = name.ident() {
            if let Some(rest) = ident.strip_prefix("llhd.") {
                return self.intrinsic(rest, args);
            }
        }
        let callee_id = self
            .module
            .unit_by_name(&name)
            .ok_or_else(|| SimError::Runtime(format!("call to undefined function {}", name)))?;
        let callee = self.module.unit(callee_id);
        if callee.kind() != UnitKind::Function {
            return Err(SimError::Runtime(format!(
                "call target {} is not a function",
                name
            )));
        }
        self.call_function(callee, args)
    }

    fn intrinsic(
        &mut self,
        name: &str,
        args: &[ConstValue],
    ) -> Result<Option<ConstValue>, SimError> {
        match name {
            "assert" => {
                self.assertions_checked += 1;
                if !args.first().map(|a| a.is_truthy()).unwrap_or(false) {
                    self.assertion_failures += 1;
                }
                Ok(None)
            }
            // Unknown intrinsics are ignored, matching the paper's treatment
            // of simulation-only hooks.
            _ => Ok(None),
        }
    }

    /// Interpret a function call. Functions execute immediately and may not
    /// interact with signals or time.
    fn call_function(
        &mut self,
        unit: &UnitData,
        args: &[ConstValue],
    ) -> Result<Option<ConstValue>, SimError> {
        let mut values: HashMap<Value, ConstValue> = HashMap::new();
        let mut memory: HashMap<Value, ConstValue> = HashMap::new();
        for (arg, value) in unit.args().into_iter().zip(args.iter()) {
            values.insert(arg, value.clone());
        }
        let mut block = unit
            .entry_block()
            .ok_or_else(|| SimError::Runtime("function without entry block".to_string()))?;
        let mut steps = 0usize;
        loop {
            let mut next_block = None;
            for inst in unit.insts(block) {
                steps += 1;
                if steps > self.config.max_steps_per_activation {
                    return Err(SimError::Runtime(format!(
                        "function {} exceeded the step limit",
                        unit.name()
                    )));
                }
                let data = unit.inst_data(inst).clone();
                let lookup = |values: &HashMap<Value, ConstValue>, v: Value| {
                    values
                        .get(&v)
                        .cloned()
                        .or_else(|| unit.get_const(v).cloned())
                        .ok_or_else(|| {
                            SimError::Runtime(format!("use of undefined value {:?}", v))
                        })
                };
                match data.opcode {
                    Opcode::Const => {
                        values.insert(unit.inst_result(inst), data.konst.clone().unwrap());
                    }
                    Opcode::Ret => return Ok(None),
                    Opcode::RetValue => {
                        return Ok(Some(lookup(&values, data.args[0])?));
                    }
                    Opcode::Br => {
                        next_block = Some(data.blocks[0]);
                        break;
                    }
                    Opcode::BrCond => {
                        let cond = lookup(&values, data.args[0])?;
                        next_block = Some(if cond.is_truthy() {
                            data.blocks[1]
                        } else {
                            data.blocks[0]
                        });
                        break;
                    }
                    Opcode::Var | Opcode::Halloc => {
                        let init = lookup(&values, data.args[0])?;
                        memory.insert(unit.inst_result(inst), init);
                    }
                    Opcode::Ld => {
                        let value = memory.get(&data.args[0]).cloned().ok_or_else(|| {
                            SimError::Runtime("load from unallocated memory".to_string())
                        })?;
                        values.insert(unit.inst_result(inst), value);
                    }
                    Opcode::St => {
                        let value = lookup(&values, data.args[1])?;
                        memory.insert(data.args[0], value);
                    }
                    Opcode::Free => {
                        memory.remove(&data.args[0]);
                    }
                    Opcode::Call => {
                        let mut call_args = Vec::with_capacity(data.args.len());
                        for &a in &data.args {
                            call_args.push(lookup(&values, a)?);
                        }
                        let result = self.call(unit, &data, &call_args)?;
                        if let (Some(result_value), Some(value)) =
                            (unit.get_inst_result(inst), result)
                        {
                            values.insert(result_value, value);
                        }
                    }
                    op if op.is_pure() => {
                        let mut eval_args = Vec::with_capacity(data.args.len());
                        for &a in &data.args {
                            eval_args.push(lookup(&values, a)?);
                        }
                        let value = eval_pure(op, &eval_args, &data.imms).ok_or_else(|| {
                            SimError::Runtime(format!("cannot evaluate instruction {}", op))
                        })?;
                        values.insert(unit.inst_result(inst), value);
                    }
                    op => {
                        return Err(SimError::Runtime(format!(
                            "unsupported instruction {} in function",
                            op
                        )));
                    }
                }
            }
            match next_block {
                Some(b) => block = b,
                None => return Ok(None),
            }
        }
    }

    // ----- entity evaluation --------------------------------------------------

    fn eval_entity(&mut self, idx: usize) -> Result<(), SimError> {
        self.activations += 1;
        let unit_id = self.design.instances[idx].unit;
        let unit = self.module.unit(unit_id);
        let body = match unit.entry_block() {
            Some(b) => b,
            None => return Ok(()),
        };
        let mut local: HashMap<Value, ConstValue> = HashMap::new();
        let lookup = |simulator: &Simulator,
                      local: &HashMap<Value, ConstValue>,
                      value: Value|
         -> Result<ConstValue, SimError> {
            if let Some(v) = local.get(&value) {
                return Ok(v.clone());
            }
            if let Some(c) = unit.get_const(value) {
                return Ok(c.clone());
            }
            if let Some(&sig) = simulator.design.instances[idx].signal_map.get(&value) {
                return Ok(simulator.values[simulator.design.resolve(sig).0].clone());
            }
            Err(SimError::Runtime(format!(
                "use of undefined value {:?} in entity {}",
                value, simulator.design.instances[idx].name
            )))
        };
        for inst in unit.insts(body) {
            let data = unit.inst_data(inst).clone();
            match data.opcode {
                Opcode::Const => {
                    local.insert(unit.inst_result(inst), data.konst.clone().unwrap());
                }
                Opcode::Sig | Opcode::Inst | Opcode::Con => {
                    // Elaboration-time constructs.
                }
                Opcode::Prb => {
                    let signal = self.resolve_signal(idx, data.args[0])?;
                    local.insert(unit.inst_result(inst), self.values[signal.0].clone());
                }
                Opcode::Drv | Opcode::DrvCond => {
                    if data.opcode == Opcode::DrvCond {
                        let cond = lookup(self, &local, data.args[3])?;
                        if !cond.is_truthy() {
                            continue;
                        }
                    }
                    let signal = self.resolve_signal(idx, data.args[0])?;
                    let value = lookup(self, &local, data.args[1])?;
                    let delay = lookup(self, &local, data.args[2])?;
                    let delay = delay.as_time().copied().ok_or_else(|| {
                        SimError::Runtime("drive delay is not a time value".to_string())
                    })?;
                    self.schedule_drive(signal, value, &delay);
                }
                Opcode::Del => {
                    let source = self.resolve_signal(idx, data.args[0])?;
                    let result = unit.inst_result(inst);
                    let target = self.resolve_signal(idx, result)?;
                    let delay = lookup(self, &local, data.args[1])?;
                    let delay = delay.as_time().copied().ok_or_else(|| {
                        SimError::Runtime("del delay is not a time value".to_string())
                    })?;
                    let value = self.values[source.0].clone();
                    self.schedule_drive(target, value, &delay);
                }
                Opcode::Reg => {
                    let signal = self.resolve_signal(idx, data.args[0])?;
                    for (trigger_index, trigger) in data.triggers.iter().enumerate() {
                        let current = lookup(self, &local, trigger.trigger)?;
                        let previous = self.entity_states[idx]
                            .reg_prev
                            .get(&(inst, trigger_index))
                            .cloned();
                        let fire = match trigger.mode {
                            RegMode::High => current.is_truthy(),
                            RegMode::Low => !current.is_truthy(),
                            RegMode::Rise => {
                                previous.as_ref().map(|p| !p.is_truthy()).unwrap_or(false)
                                    && current.is_truthy()
                            }
                            RegMode::Fall => {
                                previous.as_ref().map(|p| p.is_truthy()).unwrap_or(false)
                                    && !current.is_truthy()
                            }
                            RegMode::Both => {
                                previous.as_ref().map(|p| p != &current).unwrap_or(false)
                            }
                        };
                        self.entity_states[idx]
                            .reg_prev
                            .insert((inst, trigger_index), current);
                        if !fire {
                            continue;
                        }
                        if let Some(gate) = trigger.gate {
                            if !lookup(self, &local, gate)?.is_truthy() {
                                continue;
                            }
                        }
                        let value = lookup(self, &local, trigger.value)?;
                        self.schedule_drive(signal, value, &TimeValue::from_delta(1));
                    }
                }
                Opcode::Call => {
                    let mut args = Vec::with_capacity(data.args.len());
                    for &a in &data.args {
                        args.push(lookup(self, &local, a)?);
                    }
                    let result = self.call(unit, &data, &args)?;
                    if let (Some(result_value), Some(value)) = (unit.get_inst_result(inst), result)
                    {
                        local.insert(result_value, value);
                    }
                }
                op if op.is_pure() => {
                    let mut args = Vec::with_capacity(data.args.len());
                    for &a in &data.args {
                        args.push(lookup(self, &local, a)?);
                    }
                    let value = eval_pure(op, &args, &data.imms).ok_or_else(|| {
                        SimError::Runtime(format!("cannot evaluate instruction {}", op))
                    })?;
                    local.insert(unit.inst_result(inst), value);
                }
                op => {
                    return Err(SimError::Runtime(format!(
                        "unsupported instruction {} in entity",
                        op
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use llhd::assembly::parse_module;

    #[test]
    fn clock_generator_toggles() {
        let module = parse_module(
            r#"
            proc @clockgen () -> (i1$ %clk) {
            entry:
                %one = const i1 1
                %zero = const i1 0
                %half = const time 5ns
                drv i1$ %clk, %one after %half
                wait %low for %half
            low:
                drv i1$ %clk, %zero after %half
                wait %entry for %half
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "clockgen", &SimConfig::until_nanos(100)).unwrap();
        // 5ns period halves => a change every 5ns plus the initial one at
        // 5ns: roughly 20 changes in 100ns.
        let changes = result.trace.changes_of("clk").count();
        assert!((18..=21).contains(&changes), "got {} changes", changes);
    }

    #[test]
    fn entity_adder_follows_inputs() {
        let module = parse_module(
            r#"
            entity @adder (i8$ %a, i8$ %b) -> (i8$ %q) {
                %ap = prb i8$ %a
                %bp = prb i8$ %b
                %sum = add i8 %ap, %bp
                %delay = const time 1ns
                drv i8$ %q, %sum after %delay
            }
            proc @stim () -> (i8$ %a, i8$ %b) {
            entry:
                %three = const i8 3
                %four = const i8 4
                %delay = const time 10ns
                drv i8$ %a, %three after %delay
                drv i8$ %b, %four after %delay
                wait %done for %delay
            done:
                halt
            }
            entity @top () -> () {
                %zero = const i8 0
                %a = sig i8 %zero
                %b = sig i8 %zero
                %q = sig i8 %zero
                inst @adder (%a, %b) -> (%q)
                inst @stim () -> (%a, %b)
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "top", &SimConfig::until_nanos(100)).unwrap();
        let last_q = result.trace.changes_of("q").last().cloned().unwrap();
        assert_eq!(last_q.value, ConstValue::int(8, 7));
        assert_eq!(result.halted_processes, 1);
    }

    #[test]
    fn register_entity_samples_on_rising_edge() {
        let module = parse_module(
            r#"
            entity @dff (i1$ %clk, i8$ %d) -> (i8$ %q) {
                %clkp = prb i1$ %clk
                %dp = prb i8$ %d
                reg i8$ %q, %dp rise %clkp
            }
            proc @stim () -> (i1$ %clk, i8$ %d) {
            entry:
                %zero = const i1 0
                %one = const i1 1
                %v1 = const i8 11
                %v2 = const i8 22
                %t1 = const time 1ns
                %t5 = const time 5ns
                drv i8$ %d, %v1 after %t1
                drv i1$ %clk, %one after %t5
                wait %phase2 for %t5
            phase2:
                %t6 = const time 6ns
                drv i1$ %clk, %zero after %t1
                drv i8$ %d, %v2 after %t1
                drv i1$ %clk, %one after %t6
                wait %done for %t6
            done:
                halt
            }
            entity @top () -> () {
                %z1 = const i1 0
                %z8 = const i8 0
                %clk = sig i1 %z1
                %d = sig i8 %z8
                %q = sig i8 %z8
                inst @dff (%clk, %d) -> (%q)
                inst @stim () -> (%clk, %d)
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "top", &SimConfig::until_nanos(50)).unwrap();
        let q_changes: Vec<_> = result.trace.changes_of("q").collect();
        assert_eq!(q_changes.len(), 2, "{:?}", q_changes);
        assert_eq!(q_changes[0].value, ConstValue::int(8, 11));
        assert_eq!(q_changes[1].value, ConstValue::int(8, 22));
    }

    #[test]
    fn assertions_are_counted() {
        let module = parse_module(
            r#"
            func @check (i8 %got, i8 %want) void {
            entry:
                %eq = eq i8 %got, %want
                call void @llhd.assert (%eq)
                ret
            }
            proc @tb () -> () {
            entry:
                %a = const i8 5
                %b = const i8 5
                %c = const i8 6
                call void @check (%a, %b)
                call void @check (%a, %c)
                halt
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "tb", &SimConfig::until_nanos(10)).unwrap();
        assert_eq!(result.assertions_checked, 2);
        assert_eq!(result.assertion_failures, 1);
    }

    #[test]
    fn variables_and_loops_in_processes() {
        // A process that counts to 5 using a stack variable, driving the
        // count out each iteration.
        let module = parse_module(
            r#"
            proc @counter () -> (i8$ %out) {
            entry:
                %zero = const i8 0
                %i = var i8 %zero
                br %loop
            loop:
                %cur = ld i8* %i
                %one = const i8 1
                %next = add i8 %cur, %one
                st i8* %i, %next
                %delay = const time 1ns
                drv i8$ %out, %next after %delay
                %five = const i8 5
                %done = uge i8 %next, %five
                br %done, %loop_wait, %stop
            loop_wait:
                wait %loop for %delay
            stop:
                halt
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "counter", &SimConfig::until_nanos(100)).unwrap();
        let changes: Vec<_> = result.trace.changes_of("out").collect();
        assert_eq!(changes.len(), 5);
        assert_eq!(changes.last().unwrap().value, ConstValue::int(8, 5));
        assert_eq!(result.halted_processes, 1);
    }

    #[test]
    fn delta_cycle_loop_is_detected() {
        // Two zero-delay combinational entities driving each other's inputs
        // through an inverter loop oscillate forever within one instant.
        let module = parse_module(
            r#"
            entity @inv (i1$ %a) -> (i1$ %q) {
                %ap = prb i1$ %a
                %n = not i1 %ap
                %delay = const time 0s
                drv i1$ %q, %n after %delay
            }
            entity @top () -> () {
                %zero = const i1 0
                %x = sig i1 %zero
                %y = sig i1 %zero
                inst @inv (%x) -> (%y)
                inst @inv (%y) -> (%x)
            }
            "#,
        )
        .unwrap();
        let err = simulate(&module, "top", &SimConfig::until_nanos(10)).unwrap_err();
        assert!(matches!(err, SimError::Runtime(_)));
    }

    #[test]
    fn max_time_stops_the_simulation() {
        let module = parse_module(
            r#"
            proc @forever () -> (i1$ %x) {
            entry:
                %one = const i1 1
                %zero = const i1 0
                %d = const time 1ns
                drv i1$ %x, %one after %d
                wait %next for %d
            next:
                drv i1$ %x, %zero after %d
                wait %entry for %d
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "forever", &SimConfig::until_nanos(20)).unwrap();
        assert!(result.end_time <= TimeValue::from_nanos(20));
        assert!(result.signal_changes >= 15);
    }
}
