//! The event-driven simulation engine.
//!
//! The engine interprets unit bodies directly from the IR, but all
//! scheduling — the event queue, delta cycles, sensitivity, tracing — is
//! delegated to the shared [`crate::sched::SchedCore`], the
//! same core the compiled `llhd-blaze` engine runs on. Entities are
//! re-evaluated whenever one of the signals they probe *changes value*;
//! processes resume when a signal in their current sensitivity list
//! changes or their wait timeout expires.
//!
//! Instead of hashing SSA [`Value`]s on every instruction, each instance
//! keeps dense state slots indexed by [`Value::index`]: SSA values,
//! process-local memory, and `reg` trigger history are all flat vectors,
//! with an epoch stamp marking which slots are live (processes keep one
//! epoch for their whole life, entities bump it per evaluation to get
//! fresh scratch without clearing).

use crate::api::EngineState;
use crate::design::{ElaborateError, ElaboratedDesign, InstanceKind, SignalId};
use crate::islands::IslandPlan;
use crate::sched::{read_byte, read_const, read_usize, run_instant_parallel, CoreSink, SchedCore};
use crate::trace::Trace;
use llhd::bitcode::{encode_const_value, write_varint};
use llhd::eval::eval_pure;
use llhd::ir::{Block, InstData, Module, Opcode, RegMode, UnitData, UnitId, UnitKind, Value};
use llhd::value::{ConstValue, TimeValue};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Simulation stops once the queue is empty or this time is exceeded.
    pub max_time: TimeValue,
    /// Guard against unbounded delta cycles within one physical instant.
    pub max_deltas_per_instant: u32,
    /// Guard against processes looping without suspending.
    pub max_steps_per_activation: usize,
    /// Record value changes into the trace.
    pub trace: bool,
    /// Restrict the trace to signals whose name ends with one of these
    /// suffixes. `None` records every signal.
    pub trace_filter: Option<Vec<String>>,
    /// Cooperative run control: wall-clock deadline and instrumentation
    /// probe, checked between scheduler cycles.
    pub control: RunControl,
    /// Worker threads for island-parallel instants (see
    /// [`crate::islands`]). `1` (the default) keeps the serial loop;
    /// larger values activate each sensitivity island's share of an
    /// instant on its own scoped worker when the design partitions well
    /// enough to pay for the handoff. Purely a speed knob: traces are
    /// byte-identical at any thread count.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_time: TimeValue::from_micros(1),
            max_deltas_per_instant: 10_000,
            max_steps_per_activation: 1_000_000,
            trace: true,
            trace_filter: None,
            control: RunControl::default(),
            threads: 1,
        }
    }
}

/// Cooperative run control, checked by both engines between scheduler
/// cycles — the boundary at which state is fully consistent, so an
/// interrupted run can resume (or be abandoned) without poisoning the
/// engine. The chunked [`Simulator::step`] resume makes these checks
/// nearly free: one branch when inactive, one `Instant::now()` per
/// cycle when a deadline is armed.
#[derive(Clone, Default)]
pub struct RunControl {
    /// Abort with [`SimError::DeadlineExceeded`] once this wall-clock
    /// instant passes.
    pub deadline: Option<Instant>,
    /// Called at every control check. Used by the fault-injection
    /// harness to panic at a deterministic point mid-simulation; the
    /// probe runs before the deadline comparison.
    pub probe: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl fmt::Debug for RunControl {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("deadline", &self.deadline)
            .field("probe", &self.probe.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl RunControl {
    /// Abort once the given wall-clock instant passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        RunControl {
            deadline: Some(deadline),
            probe: None,
        }
    }

    /// Abort once the given budget, measured from now, is used up.
    pub fn deadline_in(budget: Duration) -> Self {
        RunControl::with_deadline(Instant::now() + budget)
    }

    /// Whether any control is armed (a disarmed control is a single
    /// branch per cycle).
    pub fn is_active(&self) -> bool {
        self.deadline.is_some() || self.probe.is_some()
    }

    /// Run the probe and enforce the deadline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeadlineExceeded`] once the deadline passes.
    pub fn check(&self) -> Result<(), SimError> {
        if let Some(probe) = &self.probe {
            probe();
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(SimError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

impl SimConfig {
    /// Run until the given physical time (in nanoseconds).
    pub fn until_nanos(nanos: u128) -> Self {
        SimConfig {
            max_time: TimeValue::from_nanos(nanos),
            ..SimConfig::default()
        }
    }

    /// Run until the given time.
    pub fn until(time: TimeValue) -> Self {
        SimConfig {
            max_time: time,
            ..SimConfig::default()
        }
    }

    /// Disable tracing (useful for benchmarking).
    pub fn without_trace(mut self) -> Self {
        self.trace = false;
        self
    }

    /// Only trace signals whose hierarchical name ends with one of the given
    /// suffixes.
    pub fn with_trace_filter(mut self, names: &[&str]) -> Self {
        self.trace_filter = Some(names.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Attach cooperative run control (deadline/probe).
    pub fn with_control(mut self, control: RunControl) -> Self {
        self.control = control;
        self
    }

    /// Use up to `threads` workers for island-parallel instants.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// An error produced during simulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Elaboration failed.
    Elaborate(ElaborateError),
    /// The design used a construct the simulator does not support, or ran
    /// away (delta loop, non-suspending process).
    Runtime(String),
    /// The run used up its wall-clock budget ([`RunControl::deadline`]).
    /// Raised between scheduler cycles, so the engine state is consistent
    /// and the run can be resumed with a fresh budget.
    DeadlineExceeded,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match self {
            SimError::Elaborate(e) => write!(f, "elaboration error: {}", e),
            SimError::Runtime(msg) => write!(f, "runtime error: {}", msg),
            SimError::DeadlineExceeded => {
                write!(f, "deadline exceeded: the run used up its wall-clock budget")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The time at which the simulation stopped.
    pub end_time: TimeValue,
    /// The number of observed signal value changes.
    pub signal_changes: usize,
    /// The number of `llhd.assert` intrinsic calls evaluated.
    pub assertions_checked: usize,
    /// The number of failed assertions.
    pub assertion_failures: usize,
    /// The number of processes that reached `halt`.
    pub halted_processes: usize,
    /// The number of instance activations (process resumes plus entity
    /// evaluations) executed.
    pub activations: usize,
    /// The recorded trace.
    pub trace: Trace,
}

/// The "not a signal" sentinel in the dense value-to-signal tables.
const NO_SIGNAL: SignalId = SignalId(usize::MAX);

/// Execution state of a process instance.
#[derive(Debug)]
enum ProcStatus {
    /// Ready to start at the entry block.
    Ready,
    /// Suspended in a `wait`; the shared core tracks what wakes it.
    Suspended { resume: Block },
    /// Stopped forever.
    Halted,
}

/// Per-unit execution metadata, computed once at construction and shared
/// by all instances of the unit.
struct UnitExec {
    /// Upper bound on value indices (sizes the dense slot vectors).
    num_values: usize,
    /// By instruction index: the first `reg`-history slot of a `reg`
    /// instruction, or `u32::MAX`.
    reg_base: Vec<u32>,
    /// Total number of `reg`-history slots.
    num_reg_states: usize,
}

impl UnitExec {
    fn build(unit: &UnitData) -> Self {
        let mut reg_base = vec![u32::MAX; unit.num_inst_slots()];
        let mut num_reg_states = 0usize;
        for block in unit.blocks() {
            for inst in unit.insts(block) {
                let data = unit.inst_data(inst);
                if data.opcode == Opcode::Reg {
                    reg_base[inst.index()] = num_reg_states as u32;
                    num_reg_states += data.triggers.len();
                }
            }
        }
        UnitExec {
            num_values: unit.num_value_slots(),
            reg_base,
            num_reg_states,
        }
    }
}

/// Dense execution state of one unit instance.
struct InstState {
    status: ProcStatus,
    /// SSA value slots, indexed by `Value::index()`; a slot is live when
    /// its stamp equals `epoch`.
    slots: Vec<ConstValue>,
    stamps: Vec<u32>,
    /// Process-local memory (`var`/`halloc` cells), same indexing.
    mem: Vec<ConstValue>,
    mem_stamps: Vec<u32>,
    /// Previous samples of `reg` triggers, at `UnitExec::reg_base` offsets.
    reg_prev: Vec<Option<ConstValue>>,
    /// By value index: the resolved signal bound to a signal-typed value.
    sig_of: Vec<SignalId>,
    /// Slot validity epoch: constant for processes (state persists),
    /// bumped per evaluation for entities (fresh scratch, no clearing).
    epoch: u32,
    /// Index into the simulator's `UnitExec` table.
    exec: usize,
}

/// An island must carry at least this many IR instructions before it
/// counts towards parallelizing a design (see
/// [`IslandPlan::parallel_worthy`]): below that, the per-instant worker
/// handoff costs more than the island's activations are worth.
pub const PARALLEL_MIN_ISLAND_OPS: usize = 16;
/// An instant must wake at least this many instances before the engines
/// try the parallel path (fewer can never fill two workers usefully).
pub const PARALLEL_MIN_BATCH: usize = 4;

/// The event-driven simulator.
pub struct Simulator<'a> {
    module: &'a Module,
    design: Arc<ElaboratedDesign>,
    config: SimConfig,
    core: SchedCore,
    execs: Vec<UnitExec>,
    states: Vec<InstState>,
    assertions_checked: usize,
    assertion_failures: usize,
    activations: usize,
    scratch: Scratch,
    initialized: bool,
    /// A failure during initialization or a step poisons the simulator:
    /// the instances after the failing one never ran, so continuing would
    /// silently produce a wrong trace. Replayed by every later
    /// `initialize`/`step`.
    poisoned: Option<SimError>,
    to_run_buf: Vec<u32>,
    /// The sensitivity-island partition, computed at construction (a
    /// linear scan). Its digest goes into every checkpoint; its
    /// assignment feeds the parallel instant loop.
    plan: IslandPlan,
    /// Static go/no-go for the parallel path: enough worthwhile islands
    /// and a thread budget above one.
    parallel_ready: bool,
    /// Set when restoring a version-1 checkpoint (no island digest): the
    /// restored run stays on the serial loop.
    force_serial: bool,
}

/// Immutable per-activation context: everything an activation reads that
/// is not its own instance state or the scheduling core.
struct ExecCx<'m> {
    module: &'m Module,
    design: &'m ElaboratedDesign,
    execs: &'m [UnitExec],
    max_steps: usize,
}

/// Mutable per-worker scratch: the wait-list buffer and the statistics
/// counters an activation bumps. Parallel instants give each worker its
/// own and fold the counters afterwards — plain sums, so the fold order
/// cannot matter and the totals match a serial run exactly.
#[derive(Default)]
struct Scratch {
    observed: Vec<SignalId>,
    activations: usize,
    assertions_checked: usize,
    assertion_failures: usize,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for an elaborated design. The design is shared
    /// (`Arc`), so sessions served from a [`DesignCache`](crate::api::DesignCache)
    /// reuse one elaboration; a plain [`ElaboratedDesign`] converts
    /// implicitly.
    pub fn new(
        module: &'a Module,
        design: impl Into<Arc<ElaboratedDesign>>,
        config: SimConfig,
    ) -> Self {
        let design = design.into();
        let mut core = SchedCore::new(
            &config,
            &design.signals,
            design.instances.len(),
            crate::sched::module_allows_drive_dropping(module),
        );
        let mut execs: Vec<UnitExec> = Vec::new();
        let mut exec_of: HashMap<UnitId, usize> = HashMap::new();
        let mut states = Vec::with_capacity(design.instances.len());
        for (idx, instance) in design.instances.iter().enumerate() {
            let unit = module.unit(instance.unit);
            let exec = *exec_of.entry(instance.unit).or_insert_with(|| {
                execs.push(UnitExec::build(unit));
                execs.len() - 1
            });
            let info = &execs[exec];
            let mut sig_of = vec![NO_SIGNAL; info.num_values];
            for (value, &sig) in &instance.signal_map {
                sig_of[value.index()] = design.resolve(sig);
            }
            // Static entity sensitivity: every signal probed (or delayed)
            // by the entity body, pre-resolved.
            if instance.kind == InstanceKind::Entity {
                if let Some(body) = unit.entry_block() {
                    for inst in unit.insts(body) {
                        let data = unit.inst_data(inst);
                        if matches!(data.opcode, Opcode::Prb | Opcode::Del) {
                            let sig = sig_of[data.args[0].index()];
                            if sig != NO_SIGNAL {
                                core.add_entity_sensitivity(sig, idx);
                            }
                        }
                    }
                }
            }
            states.push(InstState {
                status: ProcStatus::Ready,
                slots: vec![ConstValue::Void; info.num_values],
                stamps: vec![0; info.num_values],
                mem: vec![ConstValue::Void; info.num_values],
                mem_stamps: vec![0; info.num_values],
                reg_prev: vec![None; info.num_reg_states],
                sig_of,
                epoch: 1,
                exec,
            });
        }
        let plan = IslandPlan::build(module, &design);
        let parallel_ready = config.threads > 1 && plan.parallel_worthy(PARALLEL_MIN_ISLAND_OPS);
        Simulator {
            module,
            design,
            config,
            core,
            execs,
            states,
            assertions_checked: 0,
            assertion_failures: 0,
            activations: 0,
            scratch: Scratch::default(),
            initialized: false,
            poisoned: None,
            to_run_buf: Vec::new(),
            plan,
            parallel_ready,
            force_serial: false,
        }
    }

    /// Run the initialization phase: every process runs once and every
    /// entity is evaluated once. Idempotent — later calls are no-ops, and
    /// [`Simulator::step`] calls it automatically.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] for unsupported constructs.
    pub fn initialize(&mut self) -> Result<(), SimError> {
        if self.initialized {
            return match &self.poisoned {
                None => Ok(()),
                Some(e) => Err(e.clone()),
            };
        }
        self.initialized = true;
        let mut result = Ok(());
        {
            let cx = ExecCx {
                module: self.module,
                design: &self.design,
                execs: &self.execs,
                max_steps: self.config.max_steps_per_activation,
            };
            for idx in 0..cx.design.instances.len() {
                if let Err(e) = activate_inst(
                    &cx,
                    &mut self.states[idx],
                    &mut self.scratch,
                    idx,
                    &mut self.core,
                ) {
                    result = Err(e);
                    break;
                }
            }
        }
        self.fold_scratch();
        if let Err(e) = &result {
            self.poisoned = Some(e.clone());
        }
        result
    }

    /// Fold the per-step [`Scratch`] counters into the run totals. Called
    /// on every exit path of `initialize`/`step` (including errors) so
    /// the totals stay exact.
    fn fold_scratch(&mut self) {
        self.activations += self.scratch.activations;
        self.assertions_checked += self.scratch.assertions_checked;
        self.assertion_failures += self.scratch.assertion_failures;
        self.scratch.activations = 0;
        self.scratch.assertions_checked = 0;
        self.scratch.assertion_failures = 0;
    }

    /// Activate one instant's woken instances: the serial loop, or — when
    /// the design partitions into islands and the batch is large enough —
    /// the island-parallel loop. Both produce byte-identical core state
    /// (see [`crate::sched::run_instant_parallel`]).
    fn run_activations(&mut self, to_run: &[u32]) -> Result<(), SimError> {
        let cx = ExecCx {
            module: self.module,
            design: &self.design,
            execs: &self.execs,
            max_steps: self.config.max_steps_per_activation,
        };
        if self.parallel_ready && !self.force_serial && to_run.len() >= PARALLEL_MIN_BATCH {
            let parallel = run_instant_parallel(
                &mut self.core,
                to_run,
                &mut self.states,
                self.plan.island_of_instances(),
                self.config.threads,
                Scratch::default,
                |st, scr, inst, sink| activate_inst(&cx, st, scr, inst as usize, sink),
            );
            if let Some(outcome) = parallel {
                for scr in outcome.scratches {
                    self.scratch.activations += scr.activations;
                    self.scratch.assertions_checked += scr.assertions_checked;
                    self.scratch.assertion_failures += scr.assertion_failures;
                }
                self.fold_scratch();
                return outcome.result;
            }
        }
        let mut result = Ok(());
        for &inst in to_run {
            let idx = inst as usize;
            if let Err(e) = activate_inst(
                &cx,
                &mut self.states[idx],
                &mut self.scratch,
                idx,
                &mut self.core,
            ) {
                result = Err(e);
                break;
            }
        }
        self.fold_scratch();
        result
    }

    /// Advance the simulation by exactly one scheduler cycle (one instant:
    /// apply its drives, activate the woken instances). Returns `false`
    /// once the event queue is exhausted or the configured end time is
    /// reached. Stepping is deterministic: a run advanced in arbitrary
    /// chunks produces the identical trace to an uninterrupted
    /// [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] for unsupported constructs, runaway
    /// delta cycles, or processes that fail to suspend.
    pub fn step(&mut self) -> Result<bool, SimError> {
        self.initialize()?;
        if self.config.control.is_active() {
            // Checked before the cycle starts: state is consistent, so a
            // deadline abort leaves the engine resumable (no poisoning).
            self.config.control.check()?;
        }
        let mut to_run = std::mem::take(&mut self.to_run_buf);
        let mut outcome = self.core.next_cycle(&mut to_run);
        if let Ok(true) = outcome {
            // `to_run` is detached from `self` here, so iterating it while
            // activating instances borrows cleanly.
            if let Err(e) = self.run_activations(&to_run) {
                outcome = Err(e);
            }
        }
        self.to_run_buf = to_run;
        if let Err(e) = &outcome {
            // A failed cycle leaves half-applied state (the remaining
            // instances of the instant never ran); poison the simulator
            // so later steps replay the error instead of silently
            // diverging.
            self.poisoned = Some(e.clone());
        }
        outcome
    }

    /// Assemble the result of the run so far, taking the recorded trace
    /// out of the scheduler core. After a failed `initialize`/`step` the
    /// state is half-applied (the failing cycle never completed); the
    /// session layer refuses to assemble a result in that case, and
    /// callers driving the engine directly should do the same.
    pub fn finish(&mut self) -> SimResult {
        let halted_processes = self
            .states
            .iter()
            .filter(|s| matches!(s.status, ProcStatus::Halted))
            .count();
        SimResult {
            end_time: self.core.time(),
            signal_changes: self.core.signal_changes(),
            assertions_checked: self.assertions_checked,
            assertion_failures: self.assertion_failures,
            halted_processes,
            activations: self.activations,
            trace: self.core.take_trace(),
        }
    }

    /// Run the simulation to completion and return the result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] for unsupported constructs, runaway
    /// delta cycles, or processes that fail to suspend.
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        while self.step()? {}
        Ok(self.finish())
    }

    /// The current simulation time.
    pub fn time(&self) -> TimeValue {
        self.core.time()
    }

    /// Mutable access to the run configuration, used to re-arm
    /// [`RunControl`] between commands on a live engine. Changing the
    /// scheduling-relevant fields mid-run is not supported.
    pub fn config_mut(&mut self) -> &mut SimConfig {
        &mut self.config
    }

    /// The elaborated design this simulator executes.
    pub fn design(&self) -> &ElaboratedDesign {
        &self.design
    }

    /// The current value of a signal.
    pub fn signal_value(&self, signal: SignalId) -> &ConstValue {
        self.core.value(self.design.resolve(signal))
    }

    /// Schedule an external drive of `signal` to `value`, taking effect at
    /// the next delta step (the session-level "poke").
    pub fn poke(&mut self, signal: SignalId, value: ConstValue) {
        let signal = self.design.resolve(signal);
        self.core.schedule_drive(signal, value, &TimeValue::ZERO);
    }

    /// Drain the trace events recorded since the last drain into `buf`
    /// (streaming sinks pull these after every step).
    pub fn drain_trace_into(&mut self, buf: &mut Vec<crate::trace::TraceEvent>) {
        self.core.drain_trace_into(buf);
    }

    /// Serialize the simulator's complete execution state: the shared
    /// scheduler core plus every instance's control state, live SSA
    /// slots, process memory, and `reg` histories. See
    /// [`Engine::checkpoint`](crate::api::Engine::checkpoint) for the
    /// resume guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on a poisoned engine.
    pub fn checkpoint(&self) -> Result<EngineState, SimError> {
        if let Some(e) = &self.poisoned {
            return Err(SimError::Runtime(format!(
                "cannot checkpoint a poisoned engine: {}",
                e
            )));
        }
        Ok(EngineState::encode(
            "interp",
            self.design.num_signals(),
            self.design.num_instances(),
            self.plan.hash(),
            |out| {
                self.core.snapshot(out);
                out.push(self.initialized as u8);
                write_varint(out, self.assertions_checked as u128);
                write_varint(out, self.assertion_failures as u128);
                write_varint(out, self.activations as u128);
                for st in &self.states {
                    match &st.status {
                        ProcStatus::Ready => out.push(0),
                        ProcStatus::Suspended { resume } => {
                            out.push(1);
                            write_varint(out, resume.index() as u128);
                        }
                        ProcStatus::Halted => out.push(2),
                    }
                    write_varint(out, st.epoch as u128);
                    // Only live slots (stamp == epoch) carry state; dead
                    // ones are unreadable and skipped.
                    write_varint(out, st.slots.len() as u128);
                    let live = (0..st.slots.len()).filter(|&i| st.stamps[i] == st.epoch);
                    write_varint(out, live.clone().count() as u128);
                    for i in live {
                        write_varint(out, i as u128);
                        encode_const_value(out, &st.slots[i]);
                    }
                    let live_mem = (0..st.mem.len()).filter(|&i| st.mem_stamps[i] == st.epoch);
                    write_varint(out, live_mem.clone().count() as u128);
                    for i in live_mem {
                        write_varint(out, i as u128);
                        encode_const_value(out, &st.mem[i]);
                    }
                    write_varint(out, st.reg_prev.len() as u128);
                    for prev in &st.reg_prev {
                        match prev {
                            Some(v) => {
                                out.push(1);
                                encode_const_value(out, v);
                            }
                            None => out.push(0),
                        }
                    }
                }
            },
        ))
    }

    /// Restore a checkpoint taken by another interpreter over the same
    /// design into this (freshly constructed) simulator. See
    /// [`Engine::restore`](crate::api::Engine::restore).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on an engine/design mismatch or
    /// corrupt bytes.
    pub fn restore(&mut self, state: &EngineState) -> Result<(), SimError> {
        let bytes = state.as_bytes();
        let (mut pos, plan_hash) = state.validate(
            "interp",
            self.design.num_signals(),
            self.design.num_instances(),
        )?;
        match plan_hash {
            // Version-1 checkpoints predate island partitioning: they
            // restore fine, but the engine stays serial for the rest of
            // its life so cross-version runs replay the proven path.
            None => self.force_serial = true,
            Some(h) if h != self.plan.hash() => {
                return Err(SimError::Runtime(
                    "engine checkpoint was taken with a different island plan \
                     (design or partitioner version mismatch)"
                        .to_string(),
                ));
            }
            Some(_) => {}
        }
        let pos = &mut pos;
        self.core.restore_snapshot(bytes, pos)?;
        self.initialized = read_byte(bytes, pos)? != 0;
        self.poisoned = None;
        self.assertions_checked = read_usize(bytes, pos)?;
        self.assertion_failures = read_usize(bytes, pos)?;
        self.activations = read_usize(bytes, pos)?;
        let module = self.module;
        for idx in 0..self.states.len() {
            let status = match read_byte(bytes, pos)? {
                0 => ProcStatus::Ready,
                1 => {
                    let resume = read_usize(bytes, pos)?;
                    let unit = module.unit(self.design.instances[idx].unit);
                    if !unit.blocks().iter().any(|b| b.index() == resume) {
                        return Err(SimError::Runtime(
                            "corrupt engine checkpoint: resume block out of range".to_string(),
                        ));
                    }
                    ProcStatus::Suspended {
                        resume: Block::from_index(resume),
                    }
                }
                2 => ProcStatus::Halted,
                other => {
                    return Err(SimError::Runtime(format!(
                        "corrupt engine checkpoint: unknown process status {}",
                        other
                    )))
                }
            };
            let st = &mut self.states[idx];
            st.status = status;
            st.epoch = read_usize(bytes, pos)? as u32;
            let num_slots = read_usize(bytes, pos)?;
            if num_slots != st.slots.len() {
                return Err(SimError::Runtime(
                    "corrupt engine checkpoint: slot count mismatch".to_string(),
                ));
            }
            st.stamps.iter_mut().for_each(|s| *s = 0);
            st.slots.iter_mut().for_each(|s| *s = ConstValue::Void);
            let live = read_usize(bytes, pos)?;
            for _ in 0..live {
                let i = read_usize(bytes, pos)?;
                if i >= num_slots {
                    return Err(SimError::Runtime(
                        "corrupt engine checkpoint: slot index out of range".to_string(),
                    ));
                }
                st.slots[i] = read_const(bytes, pos)?;
                st.stamps[i] = st.epoch;
            }
            st.mem_stamps.iter_mut().for_each(|s| *s = 0);
            st.mem.iter_mut().for_each(|s| *s = ConstValue::Void);
            let live_mem = read_usize(bytes, pos)?;
            for _ in 0..live_mem {
                let i = read_usize(bytes, pos)?;
                if i >= st.mem.len() {
                    return Err(SimError::Runtime(
                        "corrupt engine checkpoint: memory index out of range".to_string(),
                    ));
                }
                st.mem[i] = read_const(bytes, pos)?;
                st.mem_stamps[i] = st.epoch;
            }
            let num_reg = read_usize(bytes, pos)?;
            if num_reg != st.reg_prev.len() {
                return Err(SimError::Runtime(
                    "corrupt engine checkpoint: reg history count mismatch".to_string(),
                ));
            }
            for prev in st.reg_prev.iter_mut() {
                *prev = match read_byte(bytes, pos)? {
                    0 => None,
                    1 => Some(read_const(bytes, pos)?),
                    other => {
                        return Err(SimError::Runtime(format!(
                            "corrupt engine checkpoint: unknown reg history tag {}",
                            other
                        )))
                    }
                };
            }
        }
        Ok(())
    }

}

// ---------------------------------------------------------------------------
// Activation execution
// ---------------------------------------------------------------------------
//
// The execution core is a set of free functions generic over
// [`CoreSink`]: the serial loop instantiates them with the
// [`SchedCore`] itself (direct mutation, same code the old methods
// compiled to), the island-parallel loop with a
// [`DeferredSink`](crate::sched::DeferredSink) (mutations logged and
// replayed in serial order on the main thread). An activation touches
// exactly three things: the immutable [`ExecCx`], its own instance's
// [`InstState`], and a per-worker [`Scratch`] — which is what makes
// handing each island's activations to a worker thread sound.

/// Activate one instance: resume a process or evaluate an entity.
fn activate_inst<S: CoreSink>(
    cx: &ExecCx,
    st: &mut InstState,
    scr: &mut Scratch,
    idx: usize,
    sink: &mut S,
) -> Result<(), SimError> {
    match cx.design.instances[idx].kind {
        InstanceKind::Process => run_process(cx, st, scr, idx, sink),
        InstanceKind::Entity => eval_entity(cx, st, scr, idx, sink),
    }
}

// ----- dense state access ----------------------------------------------

/// Look up the runtime value of an SSA value within an instance.
fn value_of<S: CoreSink>(
    cx: &ExecCx,
    st: &InstState,
    sink: &S,
    idx: usize,
    unit: &UnitData,
    value: Value,
) -> Result<ConstValue, SimError> {
    let i = value.index();
    if st.stamps[i] == st.epoch {
        return Ok(st.slots[i].clone());
    }
    if let Some(c) = unit.get_const(value) {
        return Ok(c.clone());
    }
    // Signal-typed arguments read their current value when used as data.
    let sig = st.sig_of[i];
    if sig != NO_SIGNAL {
        return Ok(sink.value(sig).clone());
    }
    Err(SimError::Runtime(format!(
        "use of a value before definition ({:?} in {})",
        value, cx.design.instances[idx].name
    )))
}

fn set_value(st: &mut InstState, value: Value, v: ConstValue) {
    let i = value.index();
    st.slots[i] = v;
    st.stamps[i] = st.epoch;
}

fn signal_of(cx: &ExecCx, st: &InstState, idx: usize, value: Value) -> Result<SignalId, SimError> {
    let sig = st.sig_of[value.index()];
    if sig != NO_SIGNAL {
        Ok(sig)
    } else {
        Err(SimError::Runtime(format!(
            "value {:?} is not bound to a signal in {}",
            value, cx.design.instances[idx].name
        )))
    }
}

fn time_value<S: CoreSink>(
    cx: &ExecCx,
    st: &InstState,
    sink: &S,
    idx: usize,
    unit: &UnitData,
    value: Value,
    what: &str,
) -> Result<TimeValue, SimError> {
    value_of(cx, st, sink, idx, unit, value)?
        .as_time()
        .copied()
        .ok_or_else(|| SimError::Runtime(format!("{} is not a time value", what)))
}

// ----- process execution ------------------------------------------------

fn run_process<S: CoreSink>(
    cx: &ExecCx,
    st: &mut InstState,
    scr: &mut Scratch,
    idx: usize,
    sink: &mut S,
) -> Result<(), SimError> {
    scr.activations += 1;
    let unit = cx.module.unit(cx.design.instances[idx].unit);
    let mut block = match &st.status {
        ProcStatus::Ready => match unit.entry_block() {
            Some(b) => b,
            None => return Ok(()),
        },
        ProcStatus::Suspended { resume } => *resume,
        ProcStatus::Halted => return Ok(()),
    };
    st.status = ProcStatus::Ready;
    let mut steps = 0usize;
    'outer: loop {
        let insts = unit.insts_slice(block);
        let mut next_block: Option<Block> = None;
        for &inst in insts {
            steps += 1;
            if steps > cx.max_steps {
                return Err(SimError::Runtime(format!(
                    "process {} exceeded the step limit without suspending",
                    cx.design.instances[idx].name
                )));
            }
            let data = unit.inst_data(inst);
            match data.opcode {
                Opcode::Wait | Opcode::WaitTime => {
                    let (time_arg, signal_args) = if data.opcode == Opcode::WaitTime {
                        (Some(data.args[0]), &data.args[1..])
                    } else {
                        (None, &data.args[..])
                    };
                    scr.observed.clear();
                    for &arg in signal_args {
                        let sig = st.sig_of[arg.index()];
                        if sig != NO_SIGNAL {
                            scr.observed.push(sig);
                        }
                    }
                    let timeout = match time_arg {
                        Some(arg) => Some(time_value(cx, st, sink, idx, unit, arg, "wait delay")?),
                        None => None,
                    };
                    st.status = ProcStatus::Suspended {
                        resume: data.blocks[0],
                    };
                    sink.suspend(idx, &scr.observed, timeout.as_ref());
                    return Ok(());
                }
                Opcode::Halt => {
                    st.status = ProcStatus::Halted;
                    return Ok(());
                }
                Opcode::Br => {
                    next_block = Some(data.blocks[0]);
                    break;
                }
                Opcode::BrCond => {
                    let cond = value_of(cx, st, sink, idx, unit, data.args[0])?;
                    let target = if cond.is_truthy() {
                        data.blocks[1]
                    } else {
                        data.blocks[0]
                    };
                    next_block = Some(target);
                    break;
                }
                Opcode::Ret | Opcode::RetValue => {
                    return Err(SimError::Runtime(
                        "ret is not allowed in a process".to_string(),
                    ));
                }
                _ => {
                    execute_simple_inst(cx, st, scr, idx, unit, inst, data, sink)?;
                }
            }
        }
        match next_block {
            Some(b) => {
                block = b;
                continue 'outer;
            }
            None => {
                // Fell off the end of a block without a terminator.
                return Err(SimError::Runtime(format!(
                    "process {} ran past the end of a block",
                    cx.design.instances[idx].name
                )));
            }
        }
    }
}

/// Execute a non-control-flow instruction within a process activation.
#[allow(clippy::too_many_arguments)]
fn execute_simple_inst<S: CoreSink>(
    cx: &ExecCx,
    st: &mut InstState,
    scr: &mut Scratch,
    idx: usize,
    unit: &UnitData,
    inst: llhd::ir::Inst,
    data: &InstData,
    sink: &mut S,
) -> Result<(), SimError> {
    match data.opcode {
        Opcode::Const => {
            let result = unit.inst_result(inst);
            set_value(st, result, data.konst.clone().unwrap());
        }
        Opcode::Prb => {
            let signal = signal_of(cx, st, idx, data.args[0])?;
            let value = sink.value(signal).clone();
            let result = unit.inst_result(inst);
            set_value(st, result, value);
        }
        Opcode::Drv | Opcode::DrvCond => {
            if data.opcode == Opcode::DrvCond {
                let cond = value_of(cx, st, sink, idx, unit, data.args[3])?;
                if !cond.is_truthy() {
                    return Ok(());
                }
            }
            let signal = signal_of(cx, st, idx, data.args[0])?;
            let value = value_of(cx, st, sink, idx, unit, data.args[1])?;
            let delay = time_value(cx, st, sink, idx, unit, data.args[2], "drive delay")?;
            sink.schedule_drive(signal, value, &delay);
        }
        Opcode::Var | Opcode::Halloc => {
            let init = value_of(cx, st, sink, idx, unit, data.args[0])?;
            let result = unit.inst_result(inst);
            st.mem[result.index()] = init;
            st.mem_stamps[result.index()] = st.epoch;
        }
        Opcode::Ld => {
            let i = data.args[0].index();
            if st.mem_stamps[i] != st.epoch {
                return Err(SimError::Runtime(
                    "load from unallocated memory".to_string(),
                ));
            }
            let value = st.mem[i].clone();
            let result = unit.inst_result(inst);
            set_value(st, result, value);
        }
        Opcode::St => {
            let value = value_of(cx, st, sink, idx, unit, data.args[1])?;
            st.mem[data.args[0].index()] = value;
            st.mem_stamps[data.args[0].index()] = st.epoch;
        }
        Opcode::Free => {
            st.mem_stamps[data.args[0].index()] = 0;
        }
        Opcode::Call => {
            let mut args = Vec::with_capacity(data.args.len());
            for &a in &data.args {
                args.push(value_of(cx, st, sink, idx, unit, a)?);
            }
            let result = call(cx, scr, unit, data, &args)?;
            if let (Some(result_value), Some(value)) = (unit.get_inst_result(inst), result) {
                set_value(st, result_value, value);
            }
        }
        op if op.is_pure() => {
            let mut args = Vec::with_capacity(data.args.len());
            for &a in &data.args {
                args.push(value_of(cx, st, sink, idx, unit, a)?);
            }
            let value = eval_pure(op, &args, &data.imms)
                .ok_or_else(|| SimError::Runtime(format!("cannot evaluate instruction {}", op)))?;
            let result = unit.inst_result(inst);
            set_value(st, result, value);
        }
        op => {
            return Err(SimError::Runtime(format!(
                "unsupported instruction {} in process",
                op
            )));
        }
    }
    Ok(())
}

// ----- function calls ---------------------------------------------------

fn call(
    cx: &ExecCx,
    scr: &mut Scratch,
    caller: &UnitData,
    data: &InstData,
    args: &[ConstValue],
) -> Result<Option<ConstValue>, SimError> {
    let ext = data
        .ext_unit
        .ok_or_else(|| SimError::Runtime("call without a target".to_string()))?;
    let name = caller.ext_unit_data(ext).name.clone();
    // Intrinsics.
    if let Some(ident) = name.ident() {
        if let Some(rest) = ident.strip_prefix("llhd.") {
            return intrinsic(scr, rest, args);
        }
    }
    let callee_id = cx
        .module
        .unit_by_name(&name)
        .ok_or_else(|| SimError::Runtime(format!("call to undefined function {}", name)))?;
    let callee = cx.module.unit(callee_id);
    if callee.kind() != UnitKind::Function {
        return Err(SimError::Runtime(format!(
            "call target {} is not a function",
            name
        )));
    }
    call_function(cx, scr, callee, args)
}

fn intrinsic(
    scr: &mut Scratch,
    name: &str,
    args: &[ConstValue],
) -> Result<Option<ConstValue>, SimError> {
    match name {
        "assert" => {
            scr.assertions_checked += 1;
            if !args.first().map(|a| a.is_truthy()).unwrap_or(false) {
                scr.assertion_failures += 1;
            }
            Ok(None)
        }
        // Unknown intrinsics are ignored, matching the paper's treatment
        // of simulation-only hooks.
        _ => Ok(None),
    }
}

/// Interpret a function call. Functions execute immediately and may not
/// interact with signals or time. The frame uses the same dense slot
/// layout as instances, indexed by `Value::index()`.
fn call_function(
    cx: &ExecCx,
    scr: &mut Scratch,
    unit: &UnitData,
    args: &[ConstValue],
) -> Result<Option<ConstValue>, SimError> {
    let n = unit.num_value_slots();
    let mut slots: Vec<Option<ConstValue>> = vec![None; n];
    let mut memory: Vec<Option<ConstValue>> = vec![None; n];
    for (arg, value) in unit.args().into_iter().zip(args.iter()) {
        slots[arg.index()] = Some(value.clone());
    }
    let mut block = unit
        .entry_block()
        .ok_or_else(|| SimError::Runtime("function without entry block".to_string()))?;
    let mut steps = 0usize;
    loop {
        let mut next_block = None;
        for &inst in unit.insts_slice(block) {
            steps += 1;
            if steps > cx.max_steps {
                return Err(SimError::Runtime(format!(
                    "function {} exceeded the step limit",
                    unit.name()
                )));
            }
            let data = unit.inst_data(inst);
            let lookup = |slots: &[Option<ConstValue>], v: Value| {
                slots[v.index()]
                    .clone()
                    .or_else(|| unit.get_const(v).cloned())
                    .ok_or_else(|| SimError::Runtime(format!("use of undefined value {:?}", v)))
            };
            match data.opcode {
                Opcode::Const => {
                    slots[unit.inst_result(inst).index()] = Some(data.konst.clone().unwrap());
                }
                Opcode::Ret => return Ok(None),
                Opcode::RetValue => {
                    return Ok(Some(lookup(&slots, data.args[0])?));
                }
                Opcode::Br => {
                    next_block = Some(data.blocks[0]);
                    break;
                }
                Opcode::BrCond => {
                    let cond = lookup(&slots, data.args[0])?;
                    next_block = Some(if cond.is_truthy() {
                        data.blocks[1]
                    } else {
                        data.blocks[0]
                    });
                    break;
                }
                Opcode::Var | Opcode::Halloc => {
                    let init = lookup(&slots, data.args[0])?;
                    memory[unit.inst_result(inst).index()] = Some(init);
                }
                Opcode::Ld => {
                    let value = memory[data.args[0].index()].clone().ok_or_else(|| {
                        SimError::Runtime("load from unallocated memory".to_string())
                    })?;
                    slots[unit.inst_result(inst).index()] = Some(value);
                }
                Opcode::St => {
                    let value = lookup(&slots, data.args[1])?;
                    memory[data.args[0].index()] = Some(value);
                }
                Opcode::Free => {
                    memory[data.args[0].index()] = None;
                }
                Opcode::Call => {
                    let mut call_args = Vec::with_capacity(data.args.len());
                    for &a in &data.args {
                        call_args.push(lookup(&slots, a)?);
                    }
                    let result = call(cx, scr, unit, data, &call_args)?;
                    if let (Some(result_value), Some(value)) = (unit.get_inst_result(inst), result)
                    {
                        slots[result_value.index()] = Some(value);
                    }
                }
                op if op.is_pure() => {
                    let mut eval_args = Vec::with_capacity(data.args.len());
                    for &a in &data.args {
                        eval_args.push(lookup(&slots, a)?);
                    }
                    let value = eval_pure(op, &eval_args, &data.imms).ok_or_else(|| {
                        SimError::Runtime(format!("cannot evaluate instruction {}", op))
                    })?;
                    slots[unit.inst_result(inst).index()] = Some(value);
                }
                op => {
                    return Err(SimError::Runtime(format!(
                        "unsupported instruction {} in function",
                        op
                    )));
                }
            }
        }
        match next_block {
            Some(b) => block = b,
            None => return Ok(None),
        }
    }
}

// ----- entity evaluation --------------------------------------------------

fn eval_entity<S: CoreSink>(
    cx: &ExecCx,
    st: &mut InstState,
    scr: &mut Scratch,
    idx: usize,
    sink: &mut S,
) -> Result<(), SimError> {
    scr.activations += 1;
    let unit = cx.module.unit(cx.design.instances[idx].unit);
    let body = match unit.entry_block() {
        Some(b) => b,
        None => return Ok(()),
    };
    // Fresh scratch: bumping the epoch invalidates all slots at once.
    st.epoch = st.epoch.wrapping_add(1);
    if st.epoch == 0 {
        // 0 is never used as an epoch, so resetting the stamps to it can
        // never alias a live epoch later on.
        st.stamps.iter_mut().for_each(|s| *s = 0);
        st.epoch = 1;
    }
    for &inst in unit.insts_slice(body) {
        let data = unit.inst_data(inst);
        match data.opcode {
            Opcode::Const => {
                let result = unit.inst_result(inst);
                set_value(st, result, data.konst.clone().unwrap());
            }
            Opcode::Sig | Opcode::Inst | Opcode::Con => {
                // Elaboration-time constructs.
            }
            Opcode::Prb => {
                let signal = signal_of(cx, st, idx, data.args[0])?;
                let value = sink.value(signal).clone();
                set_value(st, unit.inst_result(inst), value);
            }
            Opcode::Drv | Opcode::DrvCond => {
                if data.opcode == Opcode::DrvCond {
                    let cond = value_of(cx, st, sink, idx, unit, data.args[3])?;
                    if !cond.is_truthy() {
                        continue;
                    }
                }
                let signal = signal_of(cx, st, idx, data.args[0])?;
                let value = value_of(cx, st, sink, idx, unit, data.args[1])?;
                let delay = time_value(cx, st, sink, idx, unit, data.args[2], "drive delay")?;
                sink.schedule_drive(signal, value, &delay);
            }
            Opcode::Del => {
                let source = signal_of(cx, st, idx, data.args[0])?;
                let target = signal_of(cx, st, idx, unit.inst_result(inst))?;
                let delay = time_value(cx, st, sink, idx, unit, data.args[1], "del delay")?;
                let value = sink.value(source).clone();
                sink.schedule_drive(target, value, &delay);
            }
            Opcode::Reg => {
                let signal = signal_of(cx, st, idx, data.args[0])?;
                let base = cx.execs[st.exec].reg_base[inst.index()] as usize;
                for (trigger_index, trigger) in data.triggers.iter().enumerate() {
                    let current = value_of(cx, st, sink, idx, unit, trigger.trigger)?;
                    let previous = st.reg_prev[base + trigger_index].take();
                    let fire = match trigger.mode {
                        RegMode::High => current.is_truthy(),
                        RegMode::Low => !current.is_truthy(),
                        RegMode::Rise => {
                            previous.as_ref().map(|p| !p.is_truthy()).unwrap_or(false)
                                && current.is_truthy()
                        }
                        RegMode::Fall => {
                            previous.as_ref().map(|p| p.is_truthy()).unwrap_or(false)
                                && !current.is_truthy()
                        }
                        RegMode::Both => {
                            previous.as_ref().map(|p| p != &current).unwrap_or(false)
                        }
                    };
                    st.reg_prev[base + trigger_index] = Some(current);
                    if !fire {
                        continue;
                    }
                    if let Some(gate) = trigger.gate {
                        if !value_of(cx, st, sink, idx, unit, gate)?.is_truthy() {
                            continue;
                        }
                    }
                    let value = value_of(cx, st, sink, idx, unit, trigger.value)?;
                    sink.schedule_drive(signal, value, &TimeValue::from_delta(1));
                }
            }
            Opcode::Call => {
                let mut args = Vec::with_capacity(data.args.len());
                for &a in &data.args {
                    args.push(value_of(cx, st, sink, idx, unit, a)?);
                }
                let result = call(cx, scr, unit, data, &args)?;
                if let (Some(result_value), Some(value)) = (unit.get_inst_result(inst), result) {
                    set_value(st, result_value, value);
                }
            }
            op if op.is_pure() => {
                let mut args = Vec::with_capacity(data.args.len());
                for &a in &data.args {
                    args.push(value_of(cx, st, sink, idx, unit, a)?);
                }
                let value = eval_pure(op, &args, &data.imms)
                    .ok_or_else(|| SimError::Runtime(format!("cannot evaluate instruction {}", op)))?;
                set_value(st, unit.inst_result(inst), value);
            }
            op => {
                return Err(SimError::Runtime(format!(
                    "unsupported instruction {} in entity",
                    op
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Error, EngineKind, SimSession};
    use llhd::assembly::parse_module;

    /// Interpreter runs constructed through the unified session surface.
    fn simulate(module: &Module, top: &str, config: &SimConfig) -> Result<SimResult, Error> {
        SimSession::builder(module, top)
            .engine(EngineKind::Interpret)
            .config(config.clone())
            .build()?
            .run()
    }

    #[test]
    fn clock_generator_toggles() {
        let module = parse_module(
            r#"
            proc @clockgen () -> (i1$ %clk) {
            entry:
                %one = const i1 1
                %zero = const i1 0
                %half = const time 5ns
                drv i1$ %clk, %one after %half
                wait %low for %half
            low:
                drv i1$ %clk, %zero after %half
                wait %entry for %half
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "clockgen", &SimConfig::until_nanos(100)).unwrap();
        // 5ns period halves => a change every 5ns plus the initial one at
        // 5ns: roughly 20 changes in 100ns.
        let changes = result.trace.changes_of("clk").count();
        assert!((18..=21).contains(&changes), "got {} changes", changes);
    }

    #[test]
    fn entity_adder_follows_inputs() {
        let module = parse_module(
            r#"
            entity @adder (i8$ %a, i8$ %b) -> (i8$ %q) {
                %ap = prb i8$ %a
                %bp = prb i8$ %b
                %sum = add i8 %ap, %bp
                %delay = const time 1ns
                drv i8$ %q, %sum after %delay
            }
            proc @stim () -> (i8$ %a, i8$ %b) {
            entry:
                %three = const i8 3
                %four = const i8 4
                %delay = const time 10ns
                drv i8$ %a, %three after %delay
                drv i8$ %b, %four after %delay
                wait %done for %delay
            done:
                halt
            }
            entity @top () -> () {
                %zero = const i8 0
                %a = sig i8 %zero
                %b = sig i8 %zero
                %q = sig i8 %zero
                inst @adder (%a, %b) -> (%q)
                inst @stim () -> (%a, %b)
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "top", &SimConfig::until_nanos(100)).unwrap();
        let last_q = result.trace.changes_of("q").last().cloned().unwrap();
        assert_eq!(last_q.value, ConstValue::int(8, 7));
        assert_eq!(result.halted_processes, 1);
    }

    #[test]
    fn register_entity_samples_on_rising_edge() {
        let module = parse_module(
            r#"
            entity @dff (i1$ %clk, i8$ %d) -> (i8$ %q) {
                %clkp = prb i1$ %clk
                %dp = prb i8$ %d
                reg i8$ %q, %dp rise %clkp
            }
            proc @stim () -> (i1$ %clk, i8$ %d) {
            entry:
                %zero = const i1 0
                %one = const i1 1
                %v1 = const i8 11
                %v2 = const i8 22
                %t1 = const time 1ns
                %t5 = const time 5ns
                drv i8$ %d, %v1 after %t1
                drv i1$ %clk, %one after %t5
                wait %phase2 for %t5
            phase2:
                %t6 = const time 6ns
                drv i1$ %clk, %zero after %t1
                drv i8$ %d, %v2 after %t1
                drv i1$ %clk, %one after %t6
                wait %done for %t6
            done:
                halt
            }
            entity @top () -> () {
                %z1 = const i1 0
                %z8 = const i8 0
                %clk = sig i1 %z1
                %d = sig i8 %z8
                %q = sig i8 %z8
                inst @dff (%clk, %d) -> (%q)
                inst @stim () -> (%clk, %d)
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "top", &SimConfig::until_nanos(50)).unwrap();
        let q_changes: Vec<_> = result.trace.changes_of("q").collect();
        assert_eq!(q_changes.len(), 2, "{:?}", q_changes);
        assert_eq!(q_changes[0].value, ConstValue::int(8, 11));
        assert_eq!(q_changes[1].value, ConstValue::int(8, 22));
    }

    #[test]
    fn assertions_are_counted() {
        let module = parse_module(
            r#"
            func @check (i8 %got, i8 %want) void {
            entry:
                %eq = eq i8 %got, %want
                call void @llhd.assert (%eq)
                ret
            }
            proc @tb () -> () {
            entry:
                %a = const i8 5
                %b = const i8 5
                %c = const i8 6
                call void @check (%a, %b)
                call void @check (%a, %c)
                halt
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "tb", &SimConfig::until_nanos(10)).unwrap();
        assert_eq!(result.assertions_checked, 2);
        assert_eq!(result.assertion_failures, 1);
    }

    #[test]
    fn variables_and_loops_in_processes() {
        // A process that counts to 5 using a stack variable, driving the
        // count out each iteration.
        let module = parse_module(
            r#"
            proc @counter () -> (i8$ %out) {
            entry:
                %zero = const i8 0
                %i = var i8 %zero
                br %loop
            loop:
                %cur = ld i8* %i
                %one = const i8 1
                %next = add i8 %cur, %one
                st i8* %i, %next
                %delay = const time 1ns
                drv i8$ %out, %next after %delay
                %five = const i8 5
                %done = uge i8 %next, %five
                br %done, %loop_wait, %stop
            loop_wait:
                wait %loop for %delay
            stop:
                halt
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "counter", &SimConfig::until_nanos(100)).unwrap();
        let changes: Vec<_> = result.trace.changes_of("out").collect();
        assert_eq!(changes.len(), 5);
        assert_eq!(changes.last().unwrap().value, ConstValue::int(8, 5));
        assert_eq!(result.halted_processes, 1);
    }

    #[test]
    fn delta_cycle_loop_is_detected() {
        // Two zero-delay combinational entities driving each other's inputs
        // through an inverter loop oscillate forever within one instant.
        let module = parse_module(
            r#"
            entity @inv (i1$ %a) -> (i1$ %q) {
                %ap = prb i1$ %a
                %n = not i1 %ap
                %delay = const time 0s
                drv i1$ %q, %n after %delay
            }
            entity @top () -> () {
                %zero = const i1 0
                %x = sig i1 %zero
                %y = sig i1 %zero
                inst @inv (%x) -> (%y)
                inst @inv (%y) -> (%x)
            }
            "#,
        )
        .unwrap();
        let err = simulate(&module, "top", &SimConfig::until_nanos(10)).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));
    }

    #[test]
    fn max_time_stops_the_simulation() {
        let module = parse_module(
            r#"
            proc @forever () -> (i1$ %x) {
            entry:
                %one = const i1 1
                %zero = const i1 0
                %d = const time 1ns
                drv i1$ %x, %one after %d
                wait %next for %d
            next:
                drv i1$ %x, %zero after %d
                wait %entry for %d
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "forever", &SimConfig::until_nanos(20)).unwrap();
        assert!(result.end_time <= TimeValue::from_nanos(20));
        assert!(result.signal_changes >= 15);
    }

    #[test]
    fn same_instant_drive_conflict_is_last_writer_wins() {
        // Two independent processes drive the same signal at the same
        // instant. The scheduler guarantees deterministic last-writer-wins
        // resolution: @second runs after @first (instance order), so its
        // drive is scheduled later and takes effect.
        let module = parse_module(
            r#"
            proc @first () -> (i8$ %s) {
            entry:
                %v = const i8 11
                %d = const time 1ns
                drv i8$ %s, %v after %d
                halt
            }
            proc @second () -> (i8$ %s) {
            entry:
                %v = const i8 22
                %d = const time 1ns
                drv i8$ %s, %v after %d
                halt
            }
            entity @top () -> () {
                %zero = const i8 0
                %s = sig i8 %zero
                inst @first () -> (%s)
                inst @second () -> (%s)
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "top", &SimConfig::until_nanos(10)).unwrap();
        let changes: Vec<_> = result.trace.changes_of("s").collect();
        assert_eq!(
            changes.last().unwrap().value,
            ConstValue::int(8, 22),
            "the later-scheduled drive must win"
        );
        // The resolution is deterministic: a rerun produces the identical
        // event sequence, byte for byte.
        let again = simulate(&module, "top", &SimConfig::until_nanos(10)).unwrap();
        assert_eq!(result.trace.events(), again.trace.events());
    }

    #[test]
    fn redundant_drives_are_short_circuited() {
        // An entity that re-drives its output with an unchanged value on
        // every input edge; the drives must not wake the downstream
        // entity, and the run must settle (bounded activations).
        let module = parse_module(
            r#"
            entity @const_out (i1$ %clk) -> (i8$ %q) {
                %clkp = prb i1$ %clk
                %fixed = const i8 42
                %zero = const time 0s
                drv i8$ %q, %fixed after %zero
            }
            proc @clock () -> (i1$ %clk) {
            entry:
                %one = const i1 1
                %nil = const i1 0
                %d = const time 1ns
                drv i1$ %clk, %one after %d
                wait %next for %d
            next:
                drv i1$ %clk, %nil after %d
                wait %entry for %d
            }
            entity @top () -> () {
                %z1 = const i1 0
                %z8 = const i8 0
                %clk = sig i1 %z1
                %q = sig i8 %z8
                inst @const_out (%clk) -> (%q)
                inst @clock () -> (%clk)
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "top", &SimConfig::until_nanos(40)).unwrap();
        // q changes exactly once (0 -> 42) and never again.
        assert_eq!(result.trace.changes_of("q").count(), 1);
    }
}
