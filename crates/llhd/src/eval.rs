//! Operational evaluation of LLHD instructions on constant values.
//!
//! This module is the single source of truth for the semantics of the pure
//! data flow instructions. It is shared by the constant folding pass in
//! `llhd-opt`, by the reference interpreter `llhd-sim`, and by the compiled
//! simulator `llhd-blaze`, guaranteeing that all three agree on the meaning
//! of every operation.

use crate::ir::Opcode;
use crate::value::{ApInt, ConstValue, LogicVector};
use std::cmp::Ordering;

/// Evaluate a unary operation.
///
/// Returns `None` if the opcode is not a unary data flow operation or the
/// operand type does not support it.
pub fn eval_unary(opcode: Opcode, arg: &ConstValue) -> Option<ConstValue> {
    match (opcode, arg) {
        (Opcode::Alias, v) => Some(v.clone()),
        (Opcode::Not, ConstValue::Int(v)) => Some(ConstValue::Int(v.not())),
        (Opcode::Not, ConstValue::Logic(v)) => Some(ConstValue::Logic(v.not())),
        (Opcode::Neg, ConstValue::Int(v)) => Some(ConstValue::Int(v.neg())),
        _ => None,
    }
}

/// Evaluate a binary operation.
///
/// Returns `None` if the opcode is not a binary data flow operation or the
/// operand types do not support it.
pub fn eval_binary(opcode: Opcode, lhs: &ConstValue, rhs: &ConstValue) -> Option<ConstValue> {
    use Opcode::*;
    match (lhs, rhs) {
        (ConstValue::Int(a), ConstValue::Int(b)) => {
            let int = |v: ApInt| Some(ConstValue::Int(v));
            let boolean = |v: bool| Some(ConstValue::bool(v));
            match opcode {
                Add => int(a.add(b)),
                Sub => int(a.sub(b)),
                And => int(a.and(b)),
                Or => int(a.or(b)),
                Xor => int(a.xor(b)),
                Umul | Smul => int(a.mul(b)),
                Udiv => int(a.udiv(b)),
                Urem | Umod => int(a.urem(b)),
                Sdiv => int(a.sdiv(b)),
                Srem => int(a.srem(b)),
                Smod => int(a.smod(b)),
                Shl => int(a.shl_bits(b.to_u64() as usize)),
                Shr => int(a.lshr_bits(b.to_u64() as usize)),
                Eq => boolean(a == b),
                Neq => boolean(a != b),
                Ult => boolean(a.ucmp(b) == Ordering::Less),
                Ugt => boolean(a.ucmp(b) == Ordering::Greater),
                Ule => boolean(a.ucmp(b) != Ordering::Greater),
                Uge => boolean(a.ucmp(b) != Ordering::Less),
                Slt => boolean(a.scmp(b) == Ordering::Less),
                Sgt => boolean(a.scmp(b) == Ordering::Greater),
                Sle => boolean(a.scmp(b) != Ordering::Greater),
                Sge => boolean(a.scmp(b) != Ordering::Less),
                _ => None,
            }
        }
        (ConstValue::Logic(a), ConstValue::Logic(b)) => {
            let logic = |v: LogicVector| Some(ConstValue::Logic(v));
            match opcode {
                And => logic(a.and(b)),
                Or => logic(a.or(b)),
                Xor => logic(a.xor(b)),
                Eq => Some(ConstValue::bool(a == b)),
                Neq => Some(ConstValue::bool(a != b)),
                // Arithmetic on logic vectors falls back to the binary
                // interpretation when both operands are fully defined.
                _ => {
                    let ai = a.to_apint()?;
                    let bi = b.to_apint()?;
                    match eval_binary(opcode, &ConstValue::Int(ai), &ConstValue::Int(bi))? {
                        ConstValue::Int(v) => logic(LogicVector::from_apint(&v)),
                        other => Some(other),
                    }
                }
            }
        }
        (ConstValue::Enum { states, value: a }, ConstValue::Enum { value: b, .. }) => match opcode
        {
            Eq => Some(ConstValue::bool(a == b)),
            Neq => Some(ConstValue::bool(a != b)),
            Ult => Some(ConstValue::bool(a < b)),
            Ugt => Some(ConstValue::bool(a > b)),
            Ule => Some(ConstValue::bool(a <= b)),
            Uge => Some(ConstValue::bool(a >= b)),
            Add => Some(ConstValue::Enum {
                states: *states,
                value: (a + b) % states.max(&1),
            }),
            _ => None,
        },
        (ConstValue::Time(a), ConstValue::Time(b)) => match opcode {
            Add => Some(ConstValue::Time(*a + *b)),
            Eq => Some(ConstValue::bool(a == b)),
            Neq => Some(ConstValue::bool(a != b)),
            Ult | Slt => Some(ConstValue::bool(a < b)),
            Ugt | Sgt => Some(ConstValue::bool(a > b)),
            Ule | Sle => Some(ConstValue::bool(a <= b)),
            Uge | Sge => Some(ConstValue::bool(a >= b)),
            _ => None,
        },
        (ConstValue::Array(a), ConstValue::Array(b)) => match opcode {
            Eq => Some(ConstValue::bool(a == b)),
            Neq => Some(ConstValue::bool(a != b)),
            _ => None,
        },
        (ConstValue::Struct(a), ConstValue::Struct(b)) => match opcode {
            Eq => Some(ConstValue::bool(a == b)),
            Neq => Some(ConstValue::bool(a != b)),
            _ => None,
        },
        _ => None,
    }
}

/// Evaluate a width-changing cast (`zext`, `sext`, `trunc`).
pub fn eval_cast(opcode: Opcode, arg: &ConstValue, width: usize) -> Option<ConstValue> {
    let v = arg.as_int()?;
    let result = match opcode {
        Opcode::Zext => v.zext(width),
        Opcode::Sext => v.sext(width),
        Opcode::Trunc => v.trunc(width.min(v.width())),
        _ => return None,
    };
    Some(ConstValue::Int(result))
}

/// Evaluate a `mux`: select among the elements of `choices` based on the
/// unsigned value of `selector`. Out-of-range selectors clamp to the last
/// element, matching the behaviour of a hardware multiplexer tree with a
/// saturated select.
pub fn eval_mux(choices: &ConstValue, selector: &ConstValue) -> Option<ConstValue> {
    let elems = choices.as_array()?;
    if elems.is_empty() {
        return None;
    }
    let idx = selector.to_u64()? as usize;
    Some(elems[idx.min(elems.len() - 1)].clone())
}

/// Evaluate an `extf` field extraction.
pub fn eval_ext_field(value: &ConstValue, index: usize) -> Option<ConstValue> {
    value.extract_field(index)
}

/// Evaluate an `exts` slice extraction.
pub fn eval_ext_slice(value: &ConstValue, offset: usize, length: usize) -> Option<ConstValue> {
    value.extract_slice(offset, length)
}

/// Evaluate an `insf` field insertion.
pub fn eval_ins_field(target: &ConstValue, value: &ConstValue, index: usize) -> Option<ConstValue> {
    target.insert_field(index, value.clone())
}

/// Evaluate an `inss` slice insertion.
pub fn eval_ins_slice(
    target: &ConstValue,
    value: &ConstValue,
    offset: usize,
    _length: usize,
) -> Option<ConstValue> {
    target.insert_slice(offset, value)
}

/// Evaluate any pure instruction given its already-evaluated operands and
/// immediates. This is the entry point used by constant folding and the
/// simulators.
pub fn eval_pure(opcode: Opcode, args: &[ConstValue], imms: &[usize]) -> Option<ConstValue> {
    match opcode {
        Opcode::Alias | Opcode::Not | Opcode::Neg => eval_unary(opcode, args.first()?),
        Opcode::Array => Some(ConstValue::Array(args.to_vec())),
        Opcode::Struct => Some(ConstValue::Struct(args.to_vec())),
        Opcode::Zext | Opcode::Sext | Opcode::Trunc => {
            eval_cast(opcode, args.first()?, *imms.first()?)
        }
        Opcode::Mux => eval_mux(args.first()?, args.get(1)?),
        Opcode::ExtField => eval_ext_field(args.first()?, *imms.first()?),
        Opcode::ExtSlice => eval_ext_slice(args.first()?, *imms.first()?, *imms.get(1)?),
        Opcode::InsField => eval_ins_field(args.first()?, args.get(1)?, *imms.first()?),
        Opcode::InsSlice => {
            eval_ins_slice(args.first()?, args.get(1)?, *imms.first()?, *imms.get(1)?)
        }
        _ if args.len() == 2 => eval_binary(opcode, &args[0], &args[1]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::TimeValue;

    #[test]
    fn unary_eval() {
        let v = ConstValue::int(8, 0b1010_1010);
        assert_eq!(
            eval_unary(Opcode::Not, &v),
            Some(ConstValue::int(8, 0b0101_0101))
        );
        assert_eq!(
            eval_unary(Opcode::Neg, &ConstValue::int(8, 1)),
            Some(ConstValue::int(8, 255))
        );
        assert_eq!(eval_unary(Opcode::Alias, &v), Some(v.clone()));
        assert_eq!(eval_unary(Opcode::Add, &v), None);
    }

    #[test]
    fn integer_binary_eval() {
        let a = ConstValue::int(32, 100);
        let b = ConstValue::int(32, 7);
        assert_eq!(eval_binary(Opcode::Add, &a, &b), Some(ConstValue::int(32, 107)));
        assert_eq!(eval_binary(Opcode::Sub, &a, &b), Some(ConstValue::int(32, 93)));
        assert_eq!(eval_binary(Opcode::Umul, &a, &b), Some(ConstValue::int(32, 700)));
        assert_eq!(eval_binary(Opcode::Udiv, &a, &b), Some(ConstValue::int(32, 14)));
        assert_eq!(eval_binary(Opcode::Urem, &a, &b), Some(ConstValue::int(32, 2)));
        assert_eq!(eval_binary(Opcode::Ult, &a, &b), Some(ConstValue::bool(false)));
        assert_eq!(eval_binary(Opcode::Uge, &a, &b), Some(ConstValue::bool(true)));
        assert_eq!(eval_binary(Opcode::Eq, &a, &a), Some(ConstValue::bool(true)));
        assert_eq!(eval_binary(Opcode::Shl, &a, &ConstValue::int(32, 2)),
            Some(ConstValue::int(32, 400)));
    }

    #[test]
    fn signed_comparisons() {
        let a = ConstValue::int_signed(8, -5);
        let b = ConstValue::int(8, 3);
        assert_eq!(eval_binary(Opcode::Slt, &a, &b), Some(ConstValue::bool(true)));
        assert_eq!(eval_binary(Opcode::Ult, &a, &b), Some(ConstValue::bool(false)));
        assert_eq!(eval_binary(Opcode::Sdiv, &a, &b), Some(ConstValue::int_signed(8, -1)));
    }

    #[test]
    fn logic_binary_eval() {
        let a = ConstValue::Logic(LogicVector::from_str("1100").unwrap());
        let b = ConstValue::Logic(LogicVector::from_str("1010").unwrap());
        assert_eq!(
            eval_binary(Opcode::And, &a, &b),
            Some(ConstValue::Logic(LogicVector::from_str("1000").unwrap()))
        );
        // Fully defined logic vectors support arithmetic via the binary
        // interpretation.
        assert_eq!(
            eval_binary(Opcode::Add, &a, &b),
            Some(ConstValue::Logic(LogicVector::from_str("0110").unwrap()))
        );
        let x = ConstValue::Logic(LogicVector::from_str("1X00").unwrap());
        assert_eq!(eval_binary(Opcode::Add, &a, &x), None);
    }

    #[test]
    fn time_eval() {
        let a = ConstValue::Time(TimeValue::from_nanos(1));
        let b = ConstValue::Time(TimeValue::from_nanos(2));
        assert_eq!(
            eval_binary(Opcode::Add, &a, &b),
            Some(ConstValue::Time(TimeValue::from_nanos(3)))
        );
        assert_eq!(eval_binary(Opcode::Ult, &a, &b), Some(ConstValue::bool(true)));
    }

    #[test]
    fn enum_eval() {
        let a = ConstValue::Enum { states: 4, value: 3 };
        let b = ConstValue::Enum { states: 4, value: 2 };
        assert_eq!(eval_binary(Opcode::Eq, &a, &b), Some(ConstValue::bool(false)));
        assert_eq!(
            eval_binary(Opcode::Add, &a, &b),
            Some(ConstValue::Enum { states: 4, value: 1 })
        );
    }

    #[test]
    fn cast_eval() {
        let v = ConstValue::int(8, 0x80);
        assert_eq!(eval_cast(Opcode::Zext, &v, 16), Some(ConstValue::int(16, 0x80)));
        assert_eq!(eval_cast(Opcode::Sext, &v, 16), Some(ConstValue::int(16, 0xff80)));
        assert_eq!(eval_cast(Opcode::Trunc, &v, 4), Some(ConstValue::int(4, 0)));
    }

    #[test]
    fn mux_eval() {
        let choices = ConstValue::Array(vec![
            ConstValue::int(8, 10),
            ConstValue::int(8, 20),
            ConstValue::int(8, 30),
        ]);
        assert_eq!(
            eval_mux(&choices, &ConstValue::int(2, 1)),
            Some(ConstValue::int(8, 20))
        );
        // Out-of-range selector clamps.
        assert_eq!(
            eval_mux(&choices, &ConstValue::int(8, 200)),
            Some(ConstValue::int(8, 30))
        );
    }

    #[test]
    fn eval_pure_dispatch() {
        let a = ConstValue::int(16, 0xab);
        let b = ConstValue::int(16, 0x11);
        assert_eq!(
            eval_pure(Opcode::Add, &[a.clone(), b.clone()], &[]),
            Some(ConstValue::int(16, 0xbc))
        );
        assert_eq!(
            eval_pure(Opcode::Array, &[a.clone(), b.clone()], &[]),
            Some(ConstValue::Array(vec![a.clone(), b.clone()]))
        );
        assert_eq!(
            eval_pure(Opcode::ExtSlice, std::slice::from_ref(&a), &[4, 4]),
            Some(ConstValue::int(4, 0xa))
        );
        assert_eq!(
            eval_pure(Opcode::InsField, &[a.clone(), ConstValue::int(1, 1)], &[2]),
            Some(ConstValue::int(16, 0xaf))
        );
        assert_eq!(eval_pure(Opcode::Drv, &[a], &[]), None);
    }
}
