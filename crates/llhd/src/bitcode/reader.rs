//! Bitcode decoding.

use super::{read_varint, MAGIC, VERSION};
use crate::ir::{
    Block, InstData, Module, Opcode, RegMode, RegTrigger, Signature, UnitData, UnitKind, UnitName,
    Value,
};
use crate::ty::{self, Type};
use crate::value::ConstValue;
use std::fmt;

/// An error produced while decoding bitcode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// A description of the problem.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "bitcode decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

fn err(message: impl Into<String>) -> DecodeError {
    DecodeError {
        message: message.into(),
    }
}

/// Decode a module from its binary bitcode representation.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the input is truncated, has an unknown
/// version, or contains malformed records.
pub fn decode_module(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut d = Decoder {
        bytes,
        pos: 0,
        strings: vec![],
        types: vec![],
    };
    d.decode()
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    strings: Vec<String>,
    types: Vec<Type>,
}

impl<'a> Decoder<'a> {
    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u128, DecodeError> {
        read_varint(self.bytes, &mut self.pos).ok_or_else(|| err("invalid varint"))
    }

    fn varint_usize(&mut self) -> Result<usize, DecodeError> {
        Ok(self.varint()? as usize)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let idx = self.varint_usize()?;
        self.strings
            .get(idx)
            .cloned()
            .ok_or_else(|| err(format!("string index {} out of range", idx)))
    }

    fn ty(&mut self) -> Result<Type, DecodeError> {
        let idx = self.varint_usize()?;
        self.types
            .get(idx)
            .cloned()
            .ok_or_else(|| err(format!("type index {} out of range", idx)))
    }

    fn decode(&mut self) -> Result<Module, DecodeError> {
        // Header.
        if self.bytes.len() < 5 || &self.bytes[0..4] != MAGIC {
            return Err(err("missing LLHD magic"));
        }
        self.pos = 4;
        let version = self.byte()?;
        if version != VERSION {
            return Err(err(format!("unsupported bitcode version {}", version)));
        }
        // String table.
        let num_strings = self.varint_usize()?;
        for _ in 0..num_strings {
            let len = self.varint_usize()?;
            let end = self.pos + len;
            let s = self
                .bytes
                .get(self.pos..end)
                .ok_or_else(|| err("truncated string table"))?;
            self.strings.push(
                String::from_utf8(s.to_vec()).map_err(|_| err("invalid UTF-8 in string table"))?,
            );
            self.pos = end;
        }
        // Type table.
        let num_types = self.varint_usize()?;
        for _ in 0..num_types {
            let ty = self.decode_type()?;
            self.types.push(ty);
        }
        // Units.
        let mut module = Module::new();
        let num_units = self.varint_usize()?;
        for _ in 0..num_units {
            let unit = self.decode_unit()?;
            module.add_unit(unit);
        }
        Ok(module)
    }

    fn decode_type(&mut self) -> Result<Type, DecodeError> {
        let tag = self.byte()?;
        Ok(match tag {
            0 => ty::void_ty(),
            1 => ty::time_ty(),
            2 => ty::int_ty(self.varint_usize()?),
            3 => ty::enum_ty(self.varint_usize()?),
            4 => ty::logic_ty(self.varint_usize()?),
            5 => ty::pointer_ty(self.ty()?),
            6 => ty::signal_ty(self.ty()?),
            7 => {
                let len = self.varint_usize()?;
                ty::array_ty(len, self.ty()?)
            }
            8 => {
                let n = self.varint_usize()?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    fields.push(self.ty()?);
                }
                ty::struct_ty(fields)
            }
            9 => {
                let n = self.varint_usize()?;
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.ty()?);
                }
                let ret = self.ty()?;
                ty::func_ty(args, ret)
            }
            10 => {
                let n_in = self.varint_usize()?;
                let mut ins = Vec::with_capacity(n_in);
                for _ in 0..n_in {
                    ins.push(self.ty()?);
                }
                let n_out = self.varint_usize()?;
                let mut outs = Vec::with_capacity(n_out);
                for _ in 0..n_out {
                    outs.push(self.ty()?);
                }
                ty::entity_ty(ins, outs)
            }
            other => return Err(err(format!("unknown type tag {}", other))),
        })
    }

    fn decode_name(&mut self) -> Result<UnitName, DecodeError> {
        let tag = self.byte()?;
        Ok(match tag {
            0 => UnitName::Global(self.string()?),
            1 => UnitName::Local(self.string()?),
            2 => UnitName::Anonymous(self.varint()? as u32),
            other => return Err(err(format!("unknown name tag {}", other))),
        })
    }

    fn decode_sig(&mut self, kind: UnitKind) -> Result<Signature, DecodeError> {
        let n_in = self.varint_usize()?;
        let mut inputs = Vec::with_capacity(n_in);
        for _ in 0..n_in {
            inputs.push(self.ty()?);
        }
        let n_out = self.varint_usize()?;
        let mut outputs = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            outputs.push(self.ty()?);
        }
        let ret = self.ty()?;
        Ok(match kind {
            UnitKind::Function => Signature::new_func(inputs, ret),
            _ => Signature::new_entity(inputs, outputs),
        })
    }

    fn decode_const(&mut self) -> Result<ConstValue, DecodeError> {
        // One codec for constants everywhere: the module format and the
        // engine checkpoint format share `decode_const_value`.
        super::decode_const_value(self.bytes, &mut self.pos)
    }

    fn decode_unit(&mut self) -> Result<UnitData, DecodeError> {
        let kind = match self.byte()? {
            0 => UnitKind::Function,
            1 => UnitKind::Process,
            2 => UnitKind::Entity,
            other => return Err(err(format!("unknown unit kind {}", other))),
        };
        let name = self.decode_name()?;
        let sig = self.decode_sig(kind)?;
        let mut unit = UnitData::new(kind, name, sig);

        // External units.
        let num_ext = self.varint_usize()?;
        for _ in 0..num_ext {
            let name = self.decode_name()?;
            // External unit signatures always carry inputs/outputs/return; we
            // reconstruct as a function signature if there are no outputs and
            // a non-void return type.
            let n_in = self.varint_usize()?;
            let mut inputs = Vec::with_capacity(n_in);
            for _ in 0..n_in {
                inputs.push(self.ty()?);
            }
            let n_out = self.varint_usize()?;
            let mut outputs = Vec::with_capacity(n_out);
            for _ in 0..n_out {
                outputs.push(self.ty()?);
            }
            let ret = self.ty()?;
            let sig = if outputs.is_empty() && (!ret.is_void() || inputs.iter().all(|t| !t.is_signal())) {
                Signature::new_func(inputs, ret)
            } else {
                Signature::new_entity(inputs, outputs)
            };
            unit.add_ext_unit(name, sig);
        }

        // Blocks. The first block of an entity already exists (its body).
        let num_blocks = self.varint_usize()?;
        let mut blocks: Vec<Block> = Vec::with_capacity(num_blocks);
        for i in 0..num_blocks {
            let has_name = self.byte()? == 1;
            let name = if has_name { Some(self.string()?) } else { None };
            let block = if kind == UnitKind::Entity && i == 0 {
                unit.entry_block().unwrap()
            } else {
                unit.create_block(None)
            };
            if let Some(name) = name {
                unit.set_block_name(block, name);
            }
            blocks.push(block);
        }

        // Argument name hints.
        let num_args = self.varint_usize()?;
        let mut values: Vec<Value> = Vec::new();
        for i in 0..num_args {
            let arg = unit.arg_value(i);
            if self.byte()? == 1 {
                let name = self.string()?;
                unit.set_value_name(arg, name);
            }
            values.push(arg);
        }

        // Instructions.
        let num_insts = self.varint_usize()?;
        for _ in 0..num_insts {
            let opcode_idx = self.byte()? as usize;
            let opcode = *Opcode::ALL
                .get(opcode_idx)
                .ok_or_else(|| err("unknown opcode"))?;
            let block_idx = self.varint_usize()?;
            let block = *blocks
                .get(block_idx)
                .ok_or_else(|| err("block index out of range"))?;
            let num_args = self.varint_usize()?;
            let mut args = Vec::with_capacity(num_args);
            for _ in 0..num_args {
                let idx = self.varint_usize()?;
                args.push(
                    *values
                        .get(idx)
                        .ok_or_else(|| err("value index out of range"))?,
                );
            }
            let num_blocks = self.varint_usize()?;
            let mut inst_blocks = Vec::with_capacity(num_blocks);
            for _ in 0..num_blocks {
                let idx = self.varint_usize()?;
                inst_blocks.push(
                    *blocks
                        .get(idx)
                        .ok_or_else(|| err("block index out of range"))?,
                );
            }
            let num_imms = self.varint_usize()?;
            let mut imms = Vec::with_capacity(num_imms);
            for _ in 0..num_imms {
                imms.push(self.varint_usize()?);
            }
            let flags = self.byte()?;
            let konst = if flags & 1 != 0 {
                Some(self.decode_const()?)
            } else {
                None
            };
            let ext_unit = if flags & 2 != 0 {
                Some(crate::ir::ExtUnit::from_index(self.varint_usize()?))
            } else {
                None
            };
            let num_inputs = self.varint_usize()?;
            let num_triggers = self.varint_usize()?;
            let mut triggers = Vec::with_capacity(num_triggers);
            for _ in 0..num_triggers {
                let value_idx = self.varint_usize()?;
                let mode = match self.byte()? {
                    0 => RegMode::Low,
                    1 => RegMode::High,
                    2 => RegMode::Rise,
                    3 => RegMode::Fall,
                    4 => RegMode::Both,
                    other => return Err(err(format!("unknown reg mode {}", other))),
                };
                let trigger_idx = self.varint_usize()?;
                let gate = if self.byte()? == 1 {
                    Some(
                        *values
                            .get(self.varint_usize()?)
                            .ok_or_else(|| err("gate value out of range"))?,
                    )
                } else {
                    None
                };
                triggers.push(RegTrigger {
                    value: *values
                        .get(value_idx)
                        .ok_or_else(|| err("trigger value out of range"))?,
                    mode,
                    trigger: *values
                        .get(trigger_idx)
                        .ok_or_else(|| err("trigger out of range"))?,
                    gate,
                });
            }
            let has_result = flags & 4 != 0;
            let (result_ty, result_name) = if has_result {
                let ty = self.ty()?;
                let name = if self.byte()? == 1 {
                    Some(self.string()?)
                } else {
                    None
                };
                (Some(ty), name)
            } else {
                (None, None)
            };

            let mut data = InstData::new(opcode, args);
            data.blocks = inst_blocks;
            data.imms = imms;
            data.konst = konst;
            data.ext_unit = ext_unit;
            data.num_inputs = num_inputs;
            data.triggers = triggers;
            let inst = unit.append_inst(block, data, result_ty);
            if let Some(result) = unit.get_inst_result(inst) {
                values.push(result);
                if let Some(name) = result_name {
                    unit.set_value_name(result, name);
                }
            }
        }
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::{parse_module, write_module};
    use crate::bitcode::encode_module;
    use crate::verifier::verify_module;

    fn roundtrip(src: &str) -> (Module, Module, Vec<u8>) {
        let module = parse_module(src).unwrap();
        let bytes = encode_module(&module);
        let decoded = decode_module(&bytes).unwrap();
        (module, decoded, bytes)
    }

    #[test]
    fn roundtrip_function() {
        let src = r#"
        func @check (i32 %i, i32 %q) void {
        entry:
            %one = const i32 1
            %ip1 = add i32 %i, %one
            %ixip1 = umul i32 %i, %ip1
            %two = const i32 2
            %qexp = udiv i32 %ixip1, %two
            %eq = eq i32 %qexp, %q
            call void @llhd.assert (%eq)
            ret
        }
        "#;
        let (module, decoded, bytes) = roundtrip(src);
        assert!(bytes.len() > 8);
        assert_eq!(write_module(&module), write_module(&decoded));
        assert!(verify_module(&decoded).is_ok());
    }

    #[test]
    fn roundtrip_process_and_entity() {
        let src = r#"
        proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
        init:
            %clk0 = prb i1$ %clk
            wait %check, %clk
        check:
            %clk1 = prb i1$ %clk
            %chg = neq i1 %clk0, %clk1
            %posedge = and i1 %chg, %clk1
            br %posedge, %init, %event
        event:
            %dp = prb i32$ %d
            %delay = const time 1ns
            drv i32$ %q, %dp after %delay
            br %init
        }
        entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
            %zero = const i32 0
            %d = sig i32 %zero
            %clkp = prb i1$ %clk
            %dp = prb i32$ %d
            reg i32$ %q, %dp rise %clkp
            inst @acc_ff (%clk, %d) -> (%q)
        }
        "#;
        let (module, decoded, _) = roundtrip(src);
        assert_eq!(write_module(&module), write_module(&decoded));
        assert!(verify_module(&decoded).is_ok());
    }

    #[test]
    fn bitcode_is_smaller_than_text() {
        let src = r#"
        proc @p (i32$ %a, i32$ %b) -> (i32$ %q) {
        entry:
            %ap = prb i32$ %a
            %bp = prb i32$ %b
            %sum = add i32 %ap, %bp
            %prod = umul i32 %ap, %bp
            %sel = ugt i32 %sum, %prod
            %delay = const time 1ns
            drv i32$ %q, %sum after %delay if %sel
            drv i32$ %q, %prod after %delay
            wait %entry, %a, %b
        }
        "#;
        let module = parse_module(src).unwrap();
        let text = write_module(&module);
        let bytes = encode_module(&module);
        assert!(
            bytes.len() < text.len(),
            "bitcode ({}) should be smaller than text ({})",
            bytes.len(),
            text.len()
        );
    }

    #[test]
    fn corrupt_input_is_rejected() {
        assert!(decode_module(b"NOPE").is_err());
        assert!(decode_module(b"LLHD\xff").is_err());
        let src = "func @f () void {\nentry:\n ret\n}";
        let module = parse_module(src).unwrap();
        let mut bytes = encode_module(&module);
        bytes.truncate(bytes.len() / 2);
        assert!(decode_module(&bytes).is_err());
    }

    #[test]
    fn logic_and_enum_constants_roundtrip() {
        let src = r#"
        func @f () void {
        entry:
            %l = const l9 "10XZWLH-U"
            %n = const n12 7
            %t = const time 3ns 2d 1e
            ret
        }
        "#;
        let (module, decoded, _) = roundtrip(src);
        assert_eq!(write_module(&module), write_module(&decoded));
    }
}
