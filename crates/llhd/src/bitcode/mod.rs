//! The binary on-disk representation of LLHD ("bitcode").
//!
//! The paper estimates the size of a prospective bitcode format (Table 4);
//! this module implements one. The format uses variable-length integers, a
//! module-wide interned string table, an interned type table, and a compact
//! per-instruction encoding, and round-trips losslessly through
//! [`encode_module`] and [`decode_module`].

mod reader;
mod writer;

pub use reader::{decode_module, DecodeError};
pub use writer::encode_module;

use crate::value::{ApInt, ConstValue, LogicBit, LogicVector, TimeValue};

/// The magic bytes at the start of every LLHD bitcode file.
pub const MAGIC: &[u8; 4] = b"LLHD";
/// The format version emitted by [`encode_module`].
pub const VERSION: u8 = 1;

/// Append a variable-length unsigned integer (LEB128).
pub fn write_varint(out: &mut Vec<u8>, mut value: u128) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a variable-length unsigned integer (LEB128).
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u128> {
    let mut value: u128 = 0;
    let mut shift = 0;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        value |= ((byte & 0x7f) as u128) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 127 {
            return None;
        }
    }
    Some(value)
}

/// Append one [`ConstValue`] in the bitcode constant encoding — the same
/// byte layout [`encode_module`] uses for constants, exposed so other
/// crates (the simulation engines' checkpoint format) serialize values
/// without reinventing a codec. Round-trips through
/// [`decode_const_value`].
pub fn encode_const_value(out: &mut Vec<u8>, value: &ConstValue) {
    match value {
        ConstValue::Void => out.push(0),
        ConstValue::Time(t) => {
            out.push(1);
            write_varint(out, t.as_femtos());
            write_varint(out, t.delta() as u128);
            write_varint(out, t.epsilon() as u128);
        }
        ConstValue::Int(v) => {
            out.push(2);
            write_varint(out, v.width() as u128);
            write_varint(out, v.limbs().len() as u128);
            for &limb in v.limbs() {
                write_varint(out, limb as u128);
            }
        }
        ConstValue::Enum { states, value } => {
            out.push(3);
            write_varint(out, *states as u128);
            write_varint(out, *value as u128);
        }
        ConstValue::Logic(v) => {
            out.push(4);
            write_varint(out, v.width() as u128);
            for bit in v.bits() {
                out.push(bit.index() as u8);
            }
        }
        ConstValue::Array(elems) => {
            out.push(5);
            write_varint(out, elems.len() as u128);
            for e in elems {
                encode_const_value(out, e);
            }
        }
        ConstValue::Struct(fields) => {
            out.push(6);
            write_varint(out, fields.len() as u128);
            for f in fields {
                encode_const_value(out, f);
            }
        }
    }
}

/// Decode one [`ConstValue`] previously written by [`encode_const_value`],
/// advancing `pos` past it.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated input or an unknown tag.
pub fn decode_const_value(bytes: &[u8], pos: &mut usize) -> Result<ConstValue, DecodeError> {
    fn fail(message: &str) -> DecodeError {
        DecodeError {
            message: message.to_string(),
        }
    }
    fn byte(bytes: &[u8], pos: &mut usize) -> Result<u8, DecodeError> {
        let b = *bytes.get(*pos).ok_or_else(|| fail("unexpected end of input"))?;
        *pos += 1;
        Ok(b)
    }
    fn varint(bytes: &[u8], pos: &mut usize) -> Result<u128, DecodeError> {
        read_varint(bytes, pos).ok_or_else(|| fail("invalid varint"))
    }
    let tag = byte(bytes, pos)?;
    Ok(match tag {
        0 => ConstValue::Void,
        1 => {
            let femtos = varint(bytes, pos)?;
            let delta = varint(bytes, pos)? as u32;
            let epsilon = varint(bytes, pos)? as u32;
            ConstValue::Time(TimeValue::new(femtos, delta, epsilon))
        }
        2 => {
            let width = varint(bytes, pos)? as usize;
            let n = varint(bytes, pos)? as usize;
            let mut limbs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                limbs.push(varint(bytes, pos)? as u64);
            }
            ConstValue::Int(ApInt::from_limbs(width, limbs))
        }
        3 => {
            let states = varint(bytes, pos)? as usize;
            let value = varint(bytes, pos)? as usize;
            ConstValue::Enum { states, value }
        }
        4 => {
            let width = varint(bytes, pos)? as usize;
            let mut bits = Vec::with_capacity(width.min(4096));
            for _ in 0..width {
                let idx = byte(bytes, pos)? as usize;
                bits.push(*LogicBit::ALL.get(idx).ok_or_else(|| fail("invalid logic digit"))?);
            }
            ConstValue::Logic(LogicVector::from_bits(bits))
        }
        5 => {
            let n = varint(bytes, pos)? as usize;
            let mut elems = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                elems.push(decode_const_value(bytes, pos)?);
            }
            ConstValue::Array(elems)
        }
        6 => {
            let n = varint(bytes, pos)? as usize;
            let mut fields = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                fields.push(decode_const_value(bytes, pos)?);
            }
            ConstValue::Struct(fields)
        }
        other => return Err(fail(&format!("unknown constant tag {}", other))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u128, 1, 127, 128, 300, 65535, u64::MAX as u128, u128::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 5);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varint(&mut buf, 300);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn truncated_varint_fails() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
    }
}
