//! The binary on-disk representation of LLHD ("bitcode").
//!
//! The paper estimates the size of a prospective bitcode format (Table 4);
//! this module implements one. The format uses variable-length integers, a
//! module-wide interned string table, an interned type table, and a compact
//! per-instruction encoding, and round-trips losslessly through
//! [`encode_module`] and [`decode_module`].

mod reader;
mod writer;

pub use reader::{decode_module, DecodeError};
pub use writer::encode_module;

/// The magic bytes at the start of every LLHD bitcode file.
pub const MAGIC: &[u8; 4] = b"LLHD";
/// The format version emitted by [`encode_module`].
pub const VERSION: u8 = 1;

/// Append a variable-length unsigned integer (LEB128).
pub(crate) fn write_varint(out: &mut Vec<u8>, mut value: u128) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a variable-length unsigned integer (LEB128).
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u128> {
    let mut value: u128 = 0;
    let mut shift = 0;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        value |= ((byte & 0x7f) as u128) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 127 {
            return None;
        }
    }
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u128, 1, 127, 128, 300, 65535, u64::MAX as u128, u128::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 5);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_varint(&mut buf, 300);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn truncated_varint_fails() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
    }
}
