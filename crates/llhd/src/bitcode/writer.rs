//! Bitcode encoding.

use super::{write_varint, MAGIC, VERSION};
use crate::ir::{Module, Opcode, RegMode, UnitData, UnitKind, UnitName, Value};
use crate::ty::{Type, TypeKind};
use crate::value::ConstValue;
use std::collections::HashMap;

/// Encode a module into its binary bitcode representation.
pub fn encode_module(module: &Module) -> Vec<u8> {
    let mut enc = Encoder::default();
    let mut body = Vec::new();
    let units = module.units();
    write_varint(&mut body, units.len() as u128);
    for id in units {
        enc.encode_unit(&mut body, module.unit(id));
    }

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    // String table.
    write_varint(&mut out, enc.strings.len() as u128);
    for s in &enc.strings {
        write_varint(&mut out, s.len() as u128);
        out.extend_from_slice(s.as_bytes());
    }
    // Type table.
    write_varint(&mut out, enc.types.len() as u128);
    for encoded in &enc.type_bodies {
        out.extend_from_slice(encoded);
    }
    out.extend_from_slice(&body);
    out
}

#[derive(Default)]
struct Encoder {
    strings: Vec<String>,
    string_map: HashMap<String, usize>,
    types: Vec<Type>,
    type_map: HashMap<Type, usize>,
    type_bodies: Vec<Vec<u8>>,
}

impl Encoder {
    fn intern_string(&mut self, s: &str) -> usize {
        if let Some(&idx) = self.string_map.get(s) {
            return idx;
        }
        let idx = self.strings.len();
        self.strings.push(s.to_string());
        self.string_map.insert(s.to_string(), idx);
        idx
    }

    fn intern_type(&mut self, ty: &Type) -> usize {
        if let Some(&idx) = self.type_map.get(ty) {
            return idx;
        }
        // Intern components first so their indices are smaller than ours.
        let mut body = Vec::new();
        match ty.kind() {
            TypeKind::Void => body.push(0),
            TypeKind::Time => body.push(1),
            TypeKind::Int(w) => {
                body.push(2);
                write_varint(&mut body, *w as u128);
            }
            TypeKind::Enum(w) => {
                body.push(3);
                write_varint(&mut body, *w as u128);
            }
            TypeKind::Logic(w) => {
                body.push(4);
                write_varint(&mut body, *w as u128);
            }
            TypeKind::Pointer(inner) => {
                let idx = self.intern_type(inner);
                body.push(5);
                write_varint(&mut body, idx as u128);
            }
            TypeKind::Signal(inner) => {
                let idx = self.intern_type(inner);
                body.push(6);
                write_varint(&mut body, idx as u128);
            }
            TypeKind::Array(len, inner) => {
                let idx = self.intern_type(inner);
                body.push(7);
                write_varint(&mut body, *len as u128);
                write_varint(&mut body, idx as u128);
            }
            TypeKind::Struct(fields) => {
                let idxs: Vec<usize> = fields.iter().map(|f| self.intern_type(f)).collect();
                body.push(8);
                write_varint(&mut body, idxs.len() as u128);
                for idx in idxs {
                    write_varint(&mut body, idx as u128);
                }
            }
            TypeKind::Func(args, ret) => {
                let arg_idxs: Vec<usize> = args.iter().map(|a| self.intern_type(a)).collect();
                let ret_idx = self.intern_type(ret);
                body.push(9);
                write_varint(&mut body, arg_idxs.len() as u128);
                for idx in arg_idxs {
                    write_varint(&mut body, idx as u128);
                }
                write_varint(&mut body, ret_idx as u128);
            }
            TypeKind::Entity(ins, outs) => {
                let in_idxs: Vec<usize> = ins.iter().map(|t| self.intern_type(t)).collect();
                let out_idxs: Vec<usize> = outs.iter().map(|t| self.intern_type(t)).collect();
                body.push(10);
                write_varint(&mut body, in_idxs.len() as u128);
                for idx in in_idxs {
                    write_varint(&mut body, idx as u128);
                }
                write_varint(&mut body, out_idxs.len() as u128);
                for idx in out_idxs {
                    write_varint(&mut body, idx as u128);
                }
            }
        }
        let idx = self.types.len();
        self.types.push(ty.clone());
        self.type_map.insert(ty.clone(), idx);
        self.type_bodies.push(body);
        idx
    }

    fn encode_name(&mut self, out: &mut Vec<u8>, name: &UnitName) {
        match name {
            UnitName::Global(s) => {
                out.push(0);
                let idx = self.intern_string(s);
                write_varint(out, idx as u128);
            }
            UnitName::Local(s) => {
                out.push(1);
                let idx = self.intern_string(s);
                write_varint(out, idx as u128);
            }
            UnitName::Anonymous(n) => {
                out.push(2);
                write_varint(out, *n as u128);
            }
        }
    }

    fn encode_sig(&mut self, out: &mut Vec<u8>, sig: &crate::ir::Signature) {
        write_varint(out, sig.inputs().len() as u128);
        for ty in sig.inputs() {
            let idx = self.intern_type(ty);
            write_varint(out, idx as u128);
        }
        write_varint(out, sig.outputs().len() as u128);
        for ty in sig.outputs() {
            let idx = self.intern_type(ty);
            write_varint(out, idx as u128);
        }
        let ret = sig.return_type();
        let idx = self.intern_type(&ret);
        write_varint(out, idx as u128);
    }

    fn encode_const(&mut self, out: &mut Vec<u8>, value: &ConstValue) {
        // One codec for constants everywhere: the module format and the
        // engine checkpoint format share `encode_const_value`.
        super::encode_const_value(out, value);
    }

    fn encode_unit(&mut self, out: &mut Vec<u8>, unit: &UnitData) {
        out.push(match unit.kind() {
            UnitKind::Function => 0,
            UnitKind::Process => 1,
            UnitKind::Entity => 2,
        });
        let name = unit.name().clone();
        self.encode_name(out, &name);
        let sig = unit.sig().clone();
        self.encode_sig(out, &sig);

        // External units.
        let ext_units: Vec<_> = unit
            .ext_units()
            .map(|(_, d)| (d.name.clone(), d.sig.clone()))
            .collect();
        write_varint(out, ext_units.len() as u128);
        for (name, sig) in &ext_units {
            self.encode_name(out, name);
            self.encode_sig(out, sig);
        }

        // Blocks, in layout order.
        let blocks = unit.blocks();
        let block_index: HashMap<_, _> = blocks.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        write_varint(out, blocks.len() as u128);
        for &block in &blocks {
            match unit.block_name(block) {
                Some(name) => {
                    out.push(1);
                    let idx = self.intern_string(name);
                    write_varint(out, idx as u128);
                }
                None => out.push(0),
            }
        }

        // Argument name hints.
        let args = unit.args();
        write_varint(out, args.len() as u128);
        for &arg in &args {
            match unit.value_name(arg) {
                Some(name) => {
                    out.push(1);
                    let idx = self.intern_string(name);
                    write_varint(out, idx as u128);
                }
                None => out.push(0),
            }
        }

        // Value renumbering: arguments first, then instruction results in
        // layout order.
        let mut value_index: HashMap<Value, usize> = HashMap::new();
        for (i, &arg) in args.iter().enumerate() {
            value_index.insert(arg, i);
        }
        let mut next_value = args.len();
        let all_insts = unit.all_insts();
        for &inst in &all_insts {
            if let Some(result) = unit.get_inst_result(inst) {
                value_index.insert(result, next_value);
                next_value += 1;
            }
        }

        // Instructions.
        write_varint(out, all_insts.len() as u128);
        for &inst in &all_insts {
            let data = unit.inst_data(inst);
            let opcode_idx = Opcode::ALL.iter().position(|&o| o == data.opcode).unwrap();
            out.push(opcode_idx as u8);
            let block = unit.inst_block(inst).expect("instruction not in a block");
            write_varint(out, block_index[&block] as u128);
            write_varint(out, data.args.len() as u128);
            for &arg in &data.args {
                write_varint(out, value_index[&arg] as u128);
            }
            write_varint(out, data.blocks.len() as u128);
            for &bb in &data.blocks {
                write_varint(out, block_index[&bb] as u128);
            }
            write_varint(out, data.imms.len() as u128);
            for &imm in &data.imms {
                write_varint(out, imm as u128);
            }
            let mut flags = 0u8;
            if data.konst.is_some() {
                flags |= 1;
            }
            if data.ext_unit.is_some() {
                flags |= 2;
            }
            if unit.get_inst_result(inst).is_some() {
                flags |= 4;
            }
            out.push(flags);
            if let Some(konst) = &data.konst {
                self.encode_const(out, konst);
            }
            if let Some(ext) = data.ext_unit {
                write_varint(out, ext.index() as u128);
            }
            write_varint(out, data.num_inputs as u128);
            write_varint(out, data.triggers.len() as u128);
            for trigger in &data.triggers {
                write_varint(out, value_index[&trigger.value] as u128);
                out.push(match trigger.mode {
                    RegMode::Low => 0,
                    RegMode::High => 1,
                    RegMode::Rise => 2,
                    RegMode::Fall => 3,
                    RegMode::Both => 4,
                });
                write_varint(out, value_index[&trigger.trigger] as u128);
                match trigger.gate {
                    Some(gate) => {
                        out.push(1);
                        write_varint(out, value_index[&gate] as u128);
                    }
                    None => out.push(0),
                }
            }
            // Result type and name.
            if let Some(result) = unit.get_inst_result(inst) {
                let ty_idx = self.intern_type(&unit.value_type(result));
                write_varint(out, ty_idx as u128);
                match unit.value_name(result) {
                    Some(name) => {
                        out.push(1);
                        let idx = self.intern_string(name);
                        write_varint(out, idx as u128);
                    }
                    None => out.push(0),
                }
            }
        }
    }
}
