//! Temporal region analysis (§4.3.1 of the paper).
//!
//! `wait` instructions subdivide a process into *temporal regions* (TRs):
//! sets of basic blocks that execute during the same instant of physical
//! time. Probes and drives may be rearranged freely within a TR but never
//! across TR boundaries. Regions are assigned by three rules:
//!
//! 1. A block whose predecessor ends in a `wait`, or the entry block,
//!    starts a new TR.
//! 2. If all predecessors share one TR, the block inherits it.
//! 3. If predecessors have distinct TRs, the block starts a new TR.

use super::ControlFlowGraph;
use crate::ir::{Block, Opcode, UnitData};
use std::collections::HashMap;
use std::fmt;

/// A handle to a temporal region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemporalRegion(pub u32);

impl TemporalRegion {
    /// The raw index of the region.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TemporalRegion {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "tr{}", self.0)
    }
}

impl fmt::Display for TemporalRegion {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "tr{}", self.0)
    }
}

/// The assignment of basic blocks to temporal regions for one unit.
#[derive(Clone, Debug, Default)]
pub struct TemporalRegionGraph {
    regions: HashMap<Block, TemporalRegion>,
    num_regions: usize,
}

impl TemporalRegionGraph {
    /// Compute the temporal regions of a unit.
    pub fn new(unit: &UnitData, cfg: &ControlFlowGraph) -> Self {
        let mut trg = TemporalRegionGraph::default();
        let entry = match unit.entry_block() {
            Some(e) => e,
            None => return trg,
        };

        // Process blocks in an order where predecessors come first whenever
        // possible (reverse post-order via simple worklist iteration).
        let blocks = unit.blocks();
        let mut changed = true;
        trg.assign_new(entry);
        while changed {
            changed = false;
            for &bb in &blocks {
                if trg.regions.contains_key(&bb) {
                    continue;
                }
                let preds = cfg.preds(bb);
                if preds.is_empty() {
                    continue;
                }
                // Rule 1: a predecessor ending in `wait` forces a new TR.
                let after_wait = preds.iter().any(|&p| {
                    unit.terminator(p).is_some_and(|t| {
                        matches!(
                            unit.inst_data(t).opcode,
                            Opcode::Wait | Opcode::WaitTime
                        )
                    })
                });
                if after_wait {
                    trg.assign_new(bb);
                    changed = true;
                    continue;
                }
                // Need all predecessors assigned to decide rules 2 and 3.
                let pred_regions: Vec<_> = preds
                    .iter()
                    .filter_map(|p| trg.regions.get(p).copied())
                    .collect();
                if pred_regions.len() != preds.len() {
                    continue;
                }
                let first = pred_regions[0];
                if pred_regions.iter().all(|&r| r == first) {
                    // Rule 2.
                    trg.regions.insert(bb, first);
                } else {
                    // Rule 3.
                    trg.assign_new(bb);
                }
                changed = true;
            }
        }
        // Any remaining blocks (unreachable or in cycles without an assigned
        // predecessor) get their own region.
        for &bb in &blocks {
            if !trg.regions.contains_key(&bb) {
                trg.assign_new(bb);
            }
        }
        trg
    }

    fn assign_new(&mut self, block: Block) -> TemporalRegion {
        let tr = TemporalRegion(self.num_regions as u32);
        self.num_regions += 1;
        self.regions.insert(block, tr);
        tr
    }

    /// The temporal region of a block.
    pub fn region(&self, block: Block) -> TemporalRegion {
        self.regions[&block]
    }

    /// The number of temporal regions.
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    /// The blocks belonging to a region, in unit layout order.
    pub fn blocks_in(&self, unit: &UnitData, region: TemporalRegion) -> Vec<Block> {
        unit.blocks()
            .into_iter()
            .filter(|b| self.regions.get(b) == Some(&region))
            .collect()
    }

    /// The blocks of a region whose terminator leaves the region: either a
    /// `wait`/`halt`, or a branch to a block in a different region.
    pub fn exiting_blocks(
        &self,
        unit: &UnitData,
        cfg: &ControlFlowGraph,
        region: TemporalRegion,
    ) -> Vec<Block> {
        self.blocks_in(unit, region)
            .into_iter()
            .filter(|&bb| {
                let term = match unit.terminator(bb) {
                    Some(t) => t,
                    None => return true,
                };
                let data = unit.inst_data(term);
                if matches!(
                    data.opcode,
                    Opcode::Wait | Opcode::WaitTime | Opcode::Halt | Opcode::Ret | Opcode::RetValue
                ) {
                    return true;
                }
                cfg.succs(bb).iter().any(|s| self.region(*s) != region)
            })
            .collect()
    }

    /// The unique entry block of a region: the block that control transfers
    /// to from other regions (or the unit entry block for the first region).
    pub fn entry_block_of(&self, unit: &UnitData, region: TemporalRegion) -> Option<Block> {
        let blocks = self.blocks_in(unit, region);
        let cfg = ControlFlowGraph::new(unit);
        blocks
            .iter()
            .copied()
            .find(|&bb| {
                Some(bb) == unit.entry_block()
                    || cfg.preds(bb).iter().any(|p| self.region(*p) != region)
            })
            .or_else(|| blocks.first().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Signature, UnitBuilder, UnitData, UnitKind, UnitName};
    use crate::ty::*;

    /// Build the flip-flop process of Figure 5: init -> check -> {init, event},
    /// event -> init, with a wait in init.
    fn acc_ff_process() -> (UnitData, Vec<Block>) {
        let mut unit = UnitData::new(
            UnitKind::Process,
            UnitName::global("acc_ff"),
            Signature::new_entity(
                vec![signal_ty(int_ty(1)), signal_ty(int_ty(32))],
                vec![signal_ty(int_ty(32))],
            ),
        );
        let clk = unit.arg_value(0);
        let d = unit.arg_value(1);
        let q = unit.arg_value(2);
        let mut b = UnitBuilder::new(&mut unit);
        let init = b.block("init");
        let check = b.block("check");
        let event = b.block("event");
        b.append_to(init);
        let clk0 = b.prb(clk);
        b.wait(check, vec![clk]);
        b.append_to(check);
        let clk1 = b.prb(clk);
        let chg = b.neq(clk0, clk1);
        let posedge = b.and(chg, clk1);
        b.br_cond(posedge, init, event);
        b.append_to(event);
        let dp = b.prb(d);
        let delay = b.const_time(crate::value::TimeValue::from_nanos(1));
        b.drv(q, dp, delay);
        b.br(init);
        (unit, vec![init, check, event])
    }

    #[test]
    fn flip_flop_has_two_regions() {
        let (unit, blocks) = acc_ff_process();
        let cfg = ControlFlowGraph::new(&unit);
        let trg = TemporalRegionGraph::new(&unit, &cfg);
        let (init, check, event) = (blocks[0], blocks[1], blocks[2]);
        // init is its own TR; check and event share the TR after the wait.
        assert_eq!(trg.region(check), trg.region(event));
        assert_ne!(trg.region(init), trg.region(check));
        assert_eq!(trg.num_regions(), 2);
    }

    #[test]
    fn combinational_process_has_one_region() {
        // A single-block process entry -> entry via wait: one region per
        // iteration body.
        let mut unit = UnitData::new(
            UnitKind::Process,
            UnitName::global("comb"),
            Signature::new_entity(vec![signal_ty(int_ty(8))], vec![signal_ty(int_ty(8))]),
        );
        let a = unit.arg_value(0);
        let q = unit.arg_value(1);
        let mut b = UnitBuilder::new(&mut unit);
        let entry = b.block("entry");
        b.append_to(entry);
        let ap = b.prb(a);
        let delay = b.const_time(crate::value::TimeValue::ZERO);
        b.drv(q, ap, delay);
        b.wait(entry, vec![a]);
        let cfg = ControlFlowGraph::new(&unit);
        let trg = TemporalRegionGraph::new(&unit, &cfg);
        assert_eq!(trg.num_regions(), 1);
        assert_eq!(trg.blocks_in(&unit, trg.region(entry)), vec![entry]);
    }

    #[test]
    fn exiting_blocks_and_entry_blocks() {
        let (unit, blocks) = acc_ff_process();
        let cfg = ControlFlowGraph::new(&unit);
        let trg = TemporalRegionGraph::new(&unit, &cfg);
        let (init, check, event) = (blocks[0], blocks[1], blocks[2]);
        let tr0 = trg.region(init);
        let tr1 = trg.region(check);
        // init exits its TR via the wait.
        assert_eq!(trg.exiting_blocks(&unit, &cfg, tr0), vec![init]);
        // Both check (branches back to init) and event (branches to init)
        // exit the second TR.
        let exits = trg.exiting_blocks(&unit, &cfg, tr1);
        assert!(exits.contains(&check));
        assert!(exits.contains(&event));
        assert_eq!(trg.entry_block_of(&unit, tr0), Some(init));
        assert_eq!(trg.entry_block_of(&unit, tr1), Some(check));
    }

    #[test]
    fn diamond_merge_inherits_region() {
        // entry -> (a | b) -> merge with no waits: all in one TR per rule 2,
        // except the merge which has two predecessors in the *same* TR.
        let mut unit = UnitData::new(
            UnitKind::Process,
            UnitName::global("p"),
            Signature::new_entity(vec![signal_ty(int_ty(1))], vec![]),
        );
        let c = unit.arg_value(0);
        let mut b = UnitBuilder::new(&mut unit);
        let entry = b.block("entry");
        let left = b.block("left");
        let right = b.block("right");
        let merge = b.block("merge");
        b.append_to(entry);
        let cp = b.prb(c);
        b.br_cond(cp, left, right);
        b.append_to(left);
        b.br(merge);
        b.append_to(right);
        b.br(merge);
        b.append_to(merge);
        b.halt();
        let cfg = ControlFlowGraph::new(&unit);
        let trg = TemporalRegionGraph::new(&unit, &cfg);
        assert_eq!(trg.num_regions(), 1);
        assert_eq!(trg.region(entry), trg.region(merge));
    }
}
