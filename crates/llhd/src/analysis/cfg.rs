//! Control flow graph analysis.

use crate::ir::{Block, UnitData};
use std::collections::HashMap;

/// The predecessor/successor relation between the basic blocks of a unit.
#[derive(Clone, Debug, Default)]
pub struct ControlFlowGraph {
    preds: HashMap<Block, Vec<Block>>,
    succs: HashMap<Block, Vec<Block>>,
}

impl ControlFlowGraph {
    /// Compute the control flow graph of a unit.
    pub fn new(unit: &UnitData) -> Self {
        let mut cfg = ControlFlowGraph::default();
        for block in unit.blocks() {
            cfg.preds.entry(block).or_default();
            cfg.succs.entry(block).or_default();
        }
        for block in unit.blocks() {
            if let Some(term) = unit.terminator(block) {
                for &target in &unit.inst_data(term).blocks {
                    cfg.succs.entry(block).or_default().push(target);
                    cfg.preds.entry(target).or_default().push(block);
                }
            }
        }
        cfg
    }

    /// The predecessors of a block.
    pub fn preds(&self, block: Block) -> &[Block] {
        self.preds.get(&block).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The successors of a block.
    pub fn succs(&self, block: Block) -> &[Block] {
        self.succs.get(&block).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Blocks with no predecessors other than the entry block.
    pub fn unreachable_blocks(&self, unit: &UnitData) -> Vec<Block> {
        let entry = match unit.entry_block() {
            Some(e) => e,
            None => return vec![],
        };
        // Breadth-first search from the entry block.
        let mut reachable = std::collections::HashSet::new();
        let mut queue = vec![entry];
        while let Some(bb) = queue.pop() {
            if reachable.insert(bb) {
                queue.extend(self.succs(bb).iter().copied());
            }
        }
        unit.blocks()
            .into_iter()
            .filter(|b| !reachable.contains(b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Signature, UnitBuilder, UnitData, UnitKind, UnitName};
    use crate::ty::*;

    /// Build a diamond CFG: entry -> (left | right) -> merge.
    fn diamond() -> (UnitData, Vec<Block>) {
        let mut unit = UnitData::new(
            UnitKind::Function,
            UnitName::global("f"),
            Signature::new_func(vec![int_ty(1)], void_ty()),
        );
        let cond = unit.arg_value(0);
        let mut b = UnitBuilder::new(&mut unit);
        let entry = b.block("entry");
        let left = b.block("left");
        let right = b.block("right");
        let merge = b.block("merge");
        b.append_to(entry);
        b.br_cond(cond, left, right);
        b.append_to(left);
        b.br(merge);
        b.append_to(right);
        b.br(merge);
        b.append_to(merge);
        b.ret();
        (unit, vec![entry, left, right, merge])
    }

    #[test]
    fn diamond_cfg() {
        let (unit, blocks) = diamond();
        let cfg = ControlFlowGraph::new(&unit);
        let (entry, left, right, merge) = (blocks[0], blocks[1], blocks[2], blocks[3]);
        assert_eq!(cfg.succs(entry), &[left, right]);
        assert_eq!(cfg.preds(merge), &[left, right]);
        assert_eq!(cfg.preds(entry), &[] as &[Block]);
        assert_eq!(cfg.succs(merge), &[] as &[Block]);
        assert!(cfg.unreachable_blocks(&unit).is_empty());
    }

    #[test]
    fn unreachable_detection() {
        let (mut unit, _) = diamond();
        let dead = unit.create_block(Some("dead".into()));
        let cfg = ControlFlowGraph::new(&unit);
        assert_eq!(cfg.unreachable_blocks(&unit), vec![dead]);
    }
}
