//! Dominator tree analysis.
//!
//! The Temporal Code Motion pass (§4.3.3) needs to find the closest common
//! dominator of a `drv` instruction and the exiting block of its temporal
//! region, and to collect the branch conditions along the path from that
//! dominator to the instruction. This module implements the classic
//! iterative dominance algorithm by Cooper, Harvey, and Kennedy.

use super::ControlFlowGraph;
use crate::ir::{Block, UnitData};
use std::collections::HashMap;

/// The dominator tree of a unit's control flow graph.
#[derive(Clone, Debug)]
pub struct DominatorTree {
    /// Immediate dominator of each block; the entry block maps to itself.
    idom: HashMap<Block, Block>,
    /// Reverse post-order of the reachable blocks.
    rpo: Vec<Block>,
}

impl DominatorTree {
    /// Compute the dominator tree for a unit.
    pub fn new(unit: &UnitData, cfg: &ControlFlowGraph) -> Self {
        let entry = match unit.entry_block() {
            Some(e) => e,
            None => {
                return DominatorTree {
                    idom: HashMap::new(),
                    rpo: vec![],
                }
            }
        };

        // Compute reverse post-order.
        let mut visited = std::collections::HashSet::new();
        let mut post = Vec::new();
        let mut stack = vec![(entry, 0usize)];
        visited.insert(entry);
        while let Some(&(bb, next)) = stack.last() {
            let succs = cfg.succs(bb);
            if next < succs.len() {
                stack.last_mut().unwrap().1 += 1;
                let succ = succs[next];
                if visited.insert(succ) {
                    stack.push((succ, 0));
                }
            } else {
                post.push(bb);
                stack.pop();
            }
        }
        let rpo: Vec<Block> = post.into_iter().rev().collect();
        let order: HashMap<Block, usize> = rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();

        let mut idom: HashMap<Block, Block> = HashMap::new();
        idom.insert(entry, entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                let mut new_idom: Option<Block> = None;
                for &pred in cfg.preds(bb) {
                    if !idom.contains_key(&pred) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => pred,
                        Some(cur) => Self::intersect(&idom, &order, pred, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&bb) != Some(&ni) {
                        idom.insert(bb, ni);
                        changed = true;
                    }
                }
            }
        }
        DominatorTree { idom, rpo }
    }

    fn intersect(
        idom: &HashMap<Block, Block>,
        order: &HashMap<Block, usize>,
        mut a: Block,
        mut b: Block,
    ) -> Block {
        while a != b {
            while order[&a] > order[&b] {
                a = idom[&a];
            }
            while order[&b] > order[&a] {
                b = idom[&b];
            }
        }
        a
    }

    /// The immediate dominator of a block. The entry block is its own
    /// immediate dominator; unreachable blocks have none.
    pub fn idom(&self, block: Block) -> Option<Block> {
        self.idom.get(&block).copied()
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// The closest block dominating both `a` and `b`.
    pub fn common_dominator(&self, a: Block, b: Block) -> Option<Block> {
        if !self.idom.contains_key(&a) || !self.idom.contains_key(&b) {
            return None;
        }
        let mut cur = a;
        loop {
            if self.dominates(cur, b) {
                return Some(cur);
            }
            let next = self.idom(cur)?;
            if next == cur {
                return None;
            }
            cur = next;
        }
    }

    /// The reachable blocks in reverse post-order.
    pub fn reverse_post_order(&self) -> &[Block] {
        &self.rpo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Signature, UnitBuilder, UnitData, UnitKind, UnitName};
    use crate::ty::*;

    fn diamond_with_loop() -> (UnitData, Vec<Block>) {
        // entry -> (left | right) -> merge -> loop -> merge / exit
        let mut unit = UnitData::new(
            UnitKind::Function,
            UnitName::global("f"),
            Signature::new_func(vec![int_ty(1)], void_ty()),
        );
        let cond = unit.arg_value(0);
        let mut b = UnitBuilder::new(&mut unit);
        let entry = b.block("entry");
        let left = b.block("left");
        let right = b.block("right");
        let merge = b.block("merge");
        let exit = b.block("exit");
        b.append_to(entry);
        b.br_cond(cond, left, right);
        b.append_to(left);
        b.br(merge);
        b.append_to(right);
        b.br(merge);
        b.append_to(merge);
        b.br_cond(cond, merge, exit);
        b.append_to(exit);
        b.ret();
        (unit, vec![entry, left, right, merge, exit])
    }

    #[test]
    fn dominators_of_diamond() {
        let (unit, blocks) = diamond_with_loop();
        let cfg = ControlFlowGraph::new(&unit);
        let dt = DominatorTree::new(&unit, &cfg);
        let (entry, left, right, merge, exit) =
            (blocks[0], blocks[1], blocks[2], blocks[3], blocks[4]);
        assert_eq!(dt.idom(entry), Some(entry));
        assert_eq!(dt.idom(left), Some(entry));
        assert_eq!(dt.idom(right), Some(entry));
        assert_eq!(dt.idom(merge), Some(entry));
        assert_eq!(dt.idom(exit), Some(merge));
        assert!(dt.dominates(entry, exit));
        assert!(dt.dominates(merge, exit));
        assert!(!dt.dominates(left, merge));
        assert!(dt.dominates(merge, merge));
        assert_eq!(dt.common_dominator(left, right), Some(entry));
        assert_eq!(dt.common_dominator(merge, exit), Some(merge));
    }

    #[test]
    fn reverse_post_order_starts_at_entry() {
        let (unit, blocks) = diamond_with_loop();
        let cfg = ControlFlowGraph::new(&unit);
        let dt = DominatorTree::new(&unit, &cfg);
        assert_eq!(dt.reverse_post_order().first(), Some(&blocks[0]));
        assert_eq!(dt.reverse_post_order().len(), 5);
    }
}
