//! Analyses over LLHD units.
//!
//! * [`ControlFlowGraph`] — predecessor/successor relations between basic
//!   blocks.
//! * [`DominatorTree`] — block dominance, used by temporal code motion to
//!   find the conditions under which a `drv` executes.
//! * [`TemporalRegionGraph`] — the paper's Temporal Regions (§4.3.1): groups
//!   of blocks that execute within the same instant of physical time.

mod cfg;
mod dominator;
mod trg;

pub use cfg::ControlFlowGraph;
pub use dominator::DominatorTree;
pub use trg::{TemporalRegion, TemporalRegionGraph};
