//! # LLHD — a multi-level intermediate representation for hardware description languages
//!
//! This crate implements the core intermediate representation described in
//! *LLHD: A Multi-Level Intermediate Representation for Hardware Description
//! Languages* (Schuiki et al., PLDI 2020): an SSA-based IR for digital
//! circuits with three dialects (Behavioural, Structural, Netlist), three
//! unit kinds (functions, processes, entities), and hardware-specific types
//! and instructions for signals, registers, and the passing of time.
//!
//! ## Crate layout
//!
//! * [`ty`] — the type system (`iN`, `nN`, `lN`, `time`, signals, pointers,
//!   arrays, structs).
//! * [`value`] — constant values: arbitrary-precision integers, IEEE 1164
//!   nine-valued logic, time values, aggregates.
//! * [`ir`] — modules, units, blocks, instructions, and the builder API.
//! * [`eval`] — a shared constant/operational evaluator used by the constant
//!   folder and the simulators.
//! * [`analysis`] — control flow graph, dominator tree, and temporal region
//!   analyses.
//! * [`verifier`] — structural verification and dialect (Behavioural /
//!   Structural / Netlist) conformance checks.
//! * [`assembly`] — the human-readable representation: printer and parser.
//! * [`bitcode`] — the binary on-disk representation: encoder and decoder.
//! * [`capabilities`] — introspection of the implemented feature set (used
//!   to regenerate Table 3 of the paper).
//!
//! ## Quick example
//!
//! ```
//! use llhd::ir::{Module, Signature, UnitBuilder, UnitData, UnitKind, UnitName};
//! use llhd::ty::{int_ty, signal_ty};
//! use llhd::value::{ConstValue, TimeValue};
//!
//! // A process driving a counter signal.
//! let mut unit = UnitData::new(
//!     UnitKind::Process,
//!     UnitName::global("counter"),
//!     Signature::new_entity(vec![signal_ty(int_ty(1))], vec![signal_ty(int_ty(8))]),
//! );
//! let clk = unit.arg_value(0);
//! let out = unit.arg_value(1);
//! let mut b = UnitBuilder::new(&mut unit);
//! let entry = b.block("entry");
//! b.append_to(entry);
//! let one = b.const_int(8, 1);
//! let delay = b.const_time(TimeValue::from_nanos(1));
//! let current = b.prb(out);
//! let next = b.add(current, one);
//! b.drv(out, next, delay);
//! b.wait(entry, vec![clk]);
//!
//! let mut module = Module::new();
//! module.add_unit(unit);
//! assert!(llhd::verifier::verify_module(&module).is_ok());
//! ```

pub mod analysis;
pub mod assembly;
pub mod bitcode;
pub mod capabilities;
pub mod eval;
pub mod ir;
pub mod ty;
pub mod value;
pub mod verifier;

pub use ir::{Module, UnitBuilder, UnitData, UnitKind, UnitName};
pub use ty::{Type, TypeKind};
pub use value::{ApInt, ConstValue, LogicBit, LogicVector, TimeValue};
