//! Arbitrary-precision integers of a fixed bit width.
//!
//! LLHD's `iN` type allows any positive bit width `N`. [`ApInt`] stores such
//! values as a little-endian sequence of 64-bit limbs in two's complement,
//! always masked to the declared width. All arithmetic wraps modulo `2^N`,
//! matching hardware semantics.
//!
//! Values of width 64 or less — the overwhelming majority in real designs —
//! are stored inline without a heap allocation, so cloning them (the
//! simulators do this on every value move) and their arithmetic are
//! allocation-free.

use std::cmp::Ordering;
use std::fmt;

/// The limb storage: a single inline limb for `width <= 64`, a heap vector
/// otherwise. The choice is canonical in the width, so the derived
/// equality and hashing over this enum remain value-based.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Limbs {
    Inline(u64),
    Heap(Vec<u64>),
}

/// An `N`-bit integer value in two's complement representation.
///
/// # Examples
///
/// ```
/// use llhd::value::ApInt;
/// let a = ApInt::from_u64(8, 250);
/// let b = ApInt::from_u64(8, 10);
/// assert_eq!(a.add(&b), ApInt::from_u64(8, 4)); // wraps modulo 2^8
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ApInt {
    width: usize,
    limbs: Limbs,
}

fn limbs_for(width: usize) -> usize {
    width.div_ceil(64).max(1)
}

/// The mask of valid bits in the top limb of a `width`-bit value.
fn top_mask(width: usize) -> u64 {
    let bits = width % 64;
    if bits == 0 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

impl ApInt {
    /// Whether values of this width store their limb inline.
    #[inline]
    fn is_small(&self) -> bool {
        self.width <= 64
    }

    /// The low limb (the entire value for small widths).
    #[inline]
    fn limb0(&self) -> u64 {
        match &self.limbs {
            Limbs::Inline(l) => *l,
            Limbs::Heap(v) => v[0],
        }
    }

    /// The low limb sign-extended from the declared width to 64 bits.
    /// Only meaningful for small widths.
    #[inline]
    fn limb0_signed(&self) -> i64 {
        debug_assert!(self.is_small());
        let shift = 64 - self.width;
        ((self.limb0() << shift) as i64) >> shift
    }

    /// Build a small (inline) value, masking to the width.
    #[inline]
    fn small(width: usize, value: u64) -> Self {
        debug_assert!(width > 0 && width <= 64);
        ApInt {
            width,
            limbs: Limbs::Inline(value & top_mask(width)),
        }
    }

    /// Build a value from a limb vector, canonicalizing the storage and
    /// masking to the width.
    fn from_limb_vec(width: usize, mut limbs: Vec<u64>) -> Self {
        assert!(width > 0, "integer width must be positive");
        if width <= 64 {
            return ApInt::small(width, limbs.first().copied().unwrap_or(0));
        }
        limbs.resize(limbs_for(width), 0);
        *limbs.last_mut().unwrap() &= top_mask(width);
        ApInt {
            width,
            limbs: Limbs::Heap(limbs),
        }
    }

    /// Create the zero value of the given width.
    pub fn zero(width: usize) -> Self {
        assert!(width > 0, "integer width must be positive");
        if width <= 64 {
            ApInt {
                width,
                limbs: Limbs::Inline(0),
            }
        } else {
            ApInt {
                width,
                limbs: Limbs::Heap(vec![0; limbs_for(width)]),
            }
        }
    }

    /// Create the value one of the given width.
    pub fn one(width: usize) -> Self {
        Self::from_u64(width, 1)
    }

    /// Create the all-ones value (i.e. `-1` in two's complement).
    pub fn all_ones(width: usize) -> Self {
        assert!(width > 0, "integer width must be positive");
        if width <= 64 {
            return ApInt::small(width, u64::MAX);
        }
        ApInt::from_limb_vec(width, vec![u64::MAX; limbs_for(width)])
    }

    /// Create a value from a `u64`, truncating or zero-extending to `width`.
    pub fn from_u64(width: usize, value: u64) -> Self {
        assert!(width > 0, "integer width must be positive");
        if width <= 64 {
            return ApInt::small(width, value);
        }
        let mut limbs = vec![0; limbs_for(width)];
        limbs[0] = value;
        ApInt::from_limb_vec(width, limbs)
    }

    /// Create a value from an `i64`, sign-extending to `width`.
    pub fn from_i64(width: usize, value: i64) -> Self {
        assert!(width > 0, "integer width must be positive");
        if width <= 64 {
            return ApInt::small(width, value as u64);
        }
        let fill = if value < 0 { u64::MAX } else { 0 };
        let mut limbs = vec![fill; limbs_for(width)];
        limbs[0] = value as u64;
        ApInt::from_limb_vec(width, limbs)
    }

    /// Create a value from raw little-endian limbs.
    pub fn from_limbs(width: usize, limbs: Vec<u64>) -> Self {
        ApInt::from_limb_vec(width, limbs)
    }

    /// Parse a decimal string (optionally prefixed with `-`) into a value of
    /// the given width.
    ///
    /// Returns `None` if the string contains non-digit characters or is
    /// empty.
    pub fn from_str_radix10(width: usize, s: &str) -> Option<Self> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        if digits.is_empty() {
            return None;
        }
        let mut value = ApInt::zero(width);
        let ten = ApInt::from_u64(width, 10);
        for c in digits.chars() {
            let d = c.to_digit(10)? as u64;
            value = value.mul(&ten).add(&ApInt::from_u64(width, d));
        }
        if neg {
            value = value.neg();
        }
        Some(value)
    }

    /// The bit width of this value.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The raw little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        match &self.limbs {
            Limbs::Inline(l) => std::slice::from_ref(l),
            Limbs::Heap(v) => v,
        }
    }

    fn limbs_mut(&mut self) -> &mut [u64] {
        match &mut self.limbs {
            Limbs::Inline(l) => std::slice::from_mut(l),
            Limbs::Heap(v) => v,
        }
    }

    /// Check whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs().iter().all(|&l| l == 0)
    }

    /// Check whether the value is one.
    pub fn is_one(&self) -> bool {
        let limbs = self.limbs();
        limbs[0] == 1 && limbs[1..].iter().all(|&l| l == 0)
    }

    /// Check whether all bits are set.
    pub fn is_all_ones(&self) -> bool {
        *self == ApInt::all_ones(self.width)
    }

    /// Get the bit at the given position (LSB is position 0).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= width`.
    pub fn bit(&self, pos: usize) -> bool {
        assert!(pos < self.width, "bit index out of range");
        (self.limbs()[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Return a copy with the bit at `pos` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= width`.
    pub fn with_bit(&self, pos: usize, value: bool) -> Self {
        assert!(pos < self.width, "bit index out of range");
        let mut r = self.clone();
        let limbs = r.limbs_mut();
        if value {
            limbs[pos / 64] |= 1 << (pos % 64);
        } else {
            limbs[pos / 64] &= !(1 << (pos % 64));
        }
        r
    }

    /// The sign bit (most significant bit).
    pub fn sign_bit(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// Interpret the low 64 bits as a `u64`.
    pub fn to_u64(&self) -> u64 {
        self.limb0()
    }

    /// Interpret the value as an `i64`, sign-extending from the declared
    /// width.
    pub fn to_i64(&self) -> i64 {
        if self.is_small() {
            return self.limb0_signed();
        }
        self.sext(64).limb0() as i64
    }

    /// Interpret the value as a `usize` (low bits).
    pub fn to_usize(&self) -> usize {
        self.to_u64() as usize
    }

    /// Check whether the value fits in a `u64` without truncation.
    pub fn fits_u64(&self) -> bool {
        self.limbs()[1..].iter().all(|&l| l == 0)
    }

    /// Bitwise not.
    pub fn not(&self) -> Self {
        if self.is_small() {
            return ApInt::small(self.width, !self.limb0());
        }
        let limbs = self.limbs().iter().map(|&l| !l).collect();
        ApInt::from_limb_vec(self.width, limbs)
    }

    /// Two's complement negation.
    pub fn neg(&self) -> Self {
        if self.is_small() {
            return ApInt::small(self.width, self.limb0().wrapping_neg());
        }
        self.not().add(&ApInt::one(self.width))
    }

    fn check_width(&self, other: &Self) {
        assert_eq!(
            self.width, other.width,
            "operands must have identical widths ({} vs {})",
            self.width, other.width
        );
    }

    /// Wrapping addition.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn add(&self, other: &Self) -> Self {
        self.check_width(other);
        if self.is_small() {
            return ApInt::small(self.width, self.limb0().wrapping_add(other.limb0()));
        }
        let a = self.limbs();
        let b = other.limbs();
        let mut limbs = Vec::with_capacity(a.len());
        let mut carry = 0u64;
        for (a, b) in a.iter().zip(b.iter()) {
            let (s1, c1) = a.overflowing_add(*b);
            let (s2, c2) = s1.overflowing_add(carry);
            limbs.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        ApInt::from_limb_vec(self.width, limbs)
    }

    /// Wrapping subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn sub(&self, other: &Self) -> Self {
        self.check_width(other);
        if self.is_small() {
            return ApInt::small(self.width, self.limb0().wrapping_sub(other.limb0()));
        }
        self.add(&other.neg())
    }

    /// Wrapping multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn mul(&self, other: &Self) -> Self {
        self.check_width(other);
        if self.is_small() {
            return ApInt::small(self.width, self.limb0().wrapping_mul(other.limb0()));
        }
        let a = self.limbs();
        let b = other.limbs();
        let n = a.len();
        let mut acc = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate().take(n - i) {
                let idx = i + j;
                let prod = (ai as u128) * (bj as u128) + (acc[idx] as u128) + carry;
                acc[idx] = prod as u64;
                carry = prod >> 64;
            }
        }
        ApInt::from_limb_vec(self.width, acc)
    }

    /// Unsigned division. Division by zero yields the all-ones value, which
    /// mirrors the common hardware convention.
    pub fn udiv(&self, other: &Self) -> Self {
        self.check_width(other);
        if other.is_zero() {
            return ApInt::all_ones(self.width);
        }
        if self.is_small() {
            return ApInt::small(self.width, self.limb0() / other.limb0());
        }
        self.udiv_rem(other).0
    }

    /// Unsigned remainder. Remainder by zero yields the dividend.
    pub fn urem(&self, other: &Self) -> Self {
        self.check_width(other);
        if other.is_zero() {
            return self.clone();
        }
        if self.is_small() {
            return ApInt::small(self.width, self.limb0() % other.limb0());
        }
        self.udiv_rem(other).1
    }

    /// Unsigned modulo (identical to [`ApInt::urem`]).
    pub fn umod(&self, other: &Self) -> Self {
        self.urem(other)
    }

    /// Signed division (round towards zero). Division by zero yields all
    /// ones.
    pub fn sdiv(&self, other: &Self) -> Self {
        self.check_width(other);
        if other.is_zero() {
            return ApInt::all_ones(self.width);
        }
        if self.is_small() {
            // i128 intermediate: i64::MIN / -1 must wrap, not trap.
            let q = self.limb0_signed() as i128 / other.limb0_signed() as i128;
            return ApInt::small(self.width, q as u64);
        }
        let (a_neg, a) = self.abs_parts();
        let (b_neg, b) = other.abs_parts();
        let q = a.udiv(&b);
        if a_neg != b_neg {
            q.neg()
        } else {
            q
        }
    }

    /// Signed remainder: the result has the sign of the dividend.
    pub fn srem(&self, other: &Self) -> Self {
        self.check_width(other);
        if other.is_zero() {
            return self.clone();
        }
        if self.is_small() {
            let r = self.limb0_signed() as i128 % other.limb0_signed() as i128;
            return ApInt::small(self.width, r as u64);
        }
        let (a_neg, a) = self.abs_parts();
        let (_, b) = other.abs_parts();
        let r = a.urem(&b);
        if a_neg {
            r.neg()
        } else {
            r
        }
    }

    /// Signed modulo: the result has the sign of the divisor.
    pub fn smod(&self, other: &Self) -> Self {
        self.check_width(other);
        if other.is_zero() {
            return self.clone();
        }
        let r = self.srem(other);
        if r.is_zero() || r.sign_bit() == other.sign_bit() {
            r
        } else {
            r.add(other)
        }
    }

    fn abs_parts(&self) -> (bool, Self) {
        if self.sign_bit() {
            (true, self.neg())
        } else {
            (false, self.clone())
        }
    }

    /// Combined unsigned division and remainder via schoolbook long
    /// division.
    ///
    /// # Panics
    ///
    /// Panics if the divisor is zero or the widths differ.
    pub fn udiv_rem(&self, other: &Self) -> (Self, Self) {
        self.check_width(other);
        assert!(!other.is_zero(), "division by zero");
        if self.is_small() {
            return (
                ApInt::small(self.width, self.limb0() / other.limb0()),
                ApInt::small(self.width, self.limb0() % other.limb0()),
            );
        }
        let mut quotient = ApInt::zero(self.width);
        let mut remainder = ApInt::zero(self.width);
        for i in (0..self.width).rev() {
            remainder = remainder.shl_bits(1);
            if self.bit(i) {
                remainder = remainder.with_bit(0, true);
            }
            if remainder.ucmp(other) != Ordering::Less {
                remainder = remainder.sub(other);
                quotient = quotient.with_bit(i, true);
            }
        }
        (quotient, remainder)
    }

    /// Divide by a small unsigned constant, returning quotient and remainder.
    fn div_rem_small(&self, d: u64) -> (Self, u64) {
        assert!(d != 0);
        let src = self.limbs();
        let mut rem: u128 = 0;
        let mut limbs = vec![0u64; src.len()];
        for i in (0..src.len()).rev() {
            let acc = (rem << 64) | src[i] as u128;
            limbs[i] = (acc / d as u128) as u64;
            rem = acc % d as u128;
        }
        (ApInt::from_limb_vec(self.width, limbs), rem as u64)
    }

    /// Bitwise and.
    pub fn and(&self, other: &Self) -> Self {
        self.check_width(other);
        if self.is_small() {
            return ApInt::small(self.width, self.limb0() & other.limb0());
        }
        let limbs = self
            .limbs()
            .iter()
            .zip(other.limbs().iter())
            .map(|(a, b)| a & b)
            .collect();
        ApInt::from_limb_vec(self.width, limbs)
    }

    /// Bitwise or.
    pub fn or(&self, other: &Self) -> Self {
        self.check_width(other);
        if self.is_small() {
            return ApInt::small(self.width, self.limb0() | other.limb0());
        }
        let limbs = self
            .limbs()
            .iter()
            .zip(other.limbs().iter())
            .map(|(a, b)| a | b)
            .collect();
        ApInt::from_limb_vec(self.width, limbs)
    }

    /// Bitwise xor.
    pub fn xor(&self, other: &Self) -> Self {
        self.check_width(other);
        if self.is_small() {
            return ApInt::small(self.width, self.limb0() ^ other.limb0());
        }
        let limbs = self
            .limbs()
            .iter()
            .zip(other.limbs().iter())
            .map(|(a, b)| a ^ b)
            .collect();
        ApInt::from_limb_vec(self.width, limbs)
    }

    /// Logical shift left by `amount` bits. Bits shifted beyond the width are
    /// discarded.
    pub fn shl_bits(&self, amount: usize) -> Self {
        if amount >= self.width {
            return ApInt::zero(self.width);
        }
        if self.is_small() {
            return ApInt::small(self.width, self.limb0() << amount);
        }
        let src = self.limbs();
        let limb_shift = amount / 64;
        let bit_shift = amount % 64;
        let n = src.len();
        let mut limbs = vec![0u64; n];
        for i in (0..n).rev() {
            let mut v = 0u64;
            if i >= limb_shift {
                v = src[i - limb_shift] << bit_shift;
                if bit_shift > 0 && i > limb_shift {
                    v |= src[i - limb_shift - 1] >> (64 - bit_shift);
                }
            }
            limbs[i] = v;
        }
        ApInt::from_limb_vec(self.width, limbs)
    }

    /// Logical shift right by `amount` bits, filling with zeros.
    pub fn lshr_bits(&self, amount: usize) -> Self {
        if amount >= self.width {
            return ApInt::zero(self.width);
        }
        if self.is_small() {
            return ApInt::small(self.width, self.limb0() >> amount);
        }
        let src = self.limbs();
        let limb_shift = amount / 64;
        let bit_shift = amount % 64;
        let n = src.len();
        let mut limbs = vec![0u64; n];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let pos = i + limb_shift;
            let mut v = 0u64;
            if pos < n {
                v = src[pos] >> bit_shift;
                if bit_shift > 0 && pos + 1 < n {
                    v |= src[pos + 1] << (64 - bit_shift);
                }
            }
            *limb = v;
        }
        ApInt::from_limb_vec(self.width, limbs)
    }

    /// Arithmetic shift right by `amount` bits, replicating the sign bit.
    pub fn ashr_bits(&self, amount: usize) -> Self {
        let sign = self.sign_bit();
        if amount >= self.width {
            return if sign {
                ApInt::all_ones(self.width)
            } else {
                ApInt::zero(self.width)
            };
        }
        if self.is_small() {
            let shifted = ((self.limb0_signed()) >> amount) as u64;
            return ApInt::small(self.width, shifted);
        }
        let shifted = self.lshr_bits(amount);
        if !sign {
            return shifted;
        }
        // Fill the top `amount` bits with ones.
        let mut v = shifted;
        for pos in (self.width - amount)..self.width {
            v = v.with_bit(pos, true);
        }
        v
    }

    /// Unsigned comparison.
    pub fn ucmp(&self, other: &Self) -> Ordering {
        self.check_width(other);
        for (a, b) in self
            .limbs()
            .iter()
            .rev()
            .zip(other.limbs().iter().rev())
        {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Signed comparison.
    pub fn scmp(&self, other: &Self) -> Ordering {
        self.check_width(other);
        match (self.sign_bit(), other.sign_bit()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.ucmp(other),
        }
    }

    /// Zero-extend or truncate to a new width.
    pub fn zext(&self, new_width: usize) -> Self {
        assert!(new_width > 0);
        if new_width <= 64 {
            return ApInt::small(new_width, self.limb0());
        }
        let mut limbs = self.limbs().to_vec();
        limbs.resize(limbs_for(new_width), 0);
        ApInt::from_limb_vec(new_width, limbs)
    }

    /// Sign-extend or truncate to a new width.
    pub fn sext(&self, new_width: usize) -> Self {
        assert!(new_width > 0);
        if new_width <= self.width {
            return self.zext(new_width);
        }
        if self.is_small() && new_width <= 64 {
            return ApInt::small(new_width, self.limb0_signed() as u64);
        }
        let sign = self.sign_bit();
        let mut v = self.zext(new_width);
        if sign {
            for pos in self.width..new_width {
                v = v.with_bit(pos, true);
            }
        }
        v
    }

    /// Truncate to a smaller width (alias for [`ApInt::zext`] with a smaller
    /// width).
    pub fn trunc(&self, new_width: usize) -> Self {
        assert!(new_width <= self.width);
        self.zext(new_width)
    }

    /// Extract `length` bits starting at bit `offset` as a new value of width
    /// `length`.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds the value's width.
    pub fn extract_slice(&self, offset: usize, length: usize) -> Self {
        assert!(
            offset + length <= self.width,
            "slice [{}+{}] out of range for i{}",
            offset,
            length,
            self.width
        );
        self.lshr_bits(offset).trunc(length.max(1))
    }

    /// Return a copy with `slice.width()` bits starting at `offset` replaced
    /// by `slice`.
    ///
    /// # Panics
    ///
    /// Panics if the slice exceeds the value's width.
    pub fn insert_slice(&self, offset: usize, slice: &Self) -> Self {
        assert!(
            offset + slice.width() <= self.width,
            "slice [{}+{}] out of range for i{}",
            offset,
            slice.width(),
            self.width
        );
        let mut result = self.clone();
        for i in 0..slice.width() {
            result = result.with_bit(offset + i, slice.bit(i));
        }
        result
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.limbs().iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Number of leading zero bits (counting from the MSB of the declared
    /// width).
    pub fn leading_zeros(&self) -> usize {
        for i in (0..self.width).rev() {
            if self.bit(i) {
                return self.width - 1 - i;
            }
        }
        self.width
    }

    /// Format the value as an unsigned decimal string.
    pub fn to_string_unsigned(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut v = self.clone();
        while !v.is_zero() {
            let (q, r) = v.div_rem_small(10);
            digits.push((b'0' + r as u8) as char);
            v = q;
        }
        digits.iter().rev().collect()
    }

    /// Format the value as a signed decimal string.
    pub fn to_string_signed(&self) -> String {
        if self.sign_bit() {
            format!("-{}", self.neg().to_string_unsigned())
        } else {
            self.to_string_unsigned()
        }
    }
}

impl fmt::Display for ApInt {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "{}", self.to_string_unsigned())
    }
}

impl fmt::Debug for ApInt {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "i{} {}", self.width, self.to_string_unsigned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_masking() {
        assert_eq!(ApInt::from_u64(8, 256).to_u64(), 0);
        assert_eq!(ApInt::from_u64(8, 255).to_u64(), 255);
        assert_eq!(ApInt::from_u64(4, 0xff).to_u64(), 0xf);
        assert_eq!(ApInt::from_u64(64, u64::MAX).to_u64(), u64::MAX);
        assert_eq!(ApInt::from_u64(128, 7).to_u64(), 7);
    }

    #[test]
    fn from_i64_sign_extension() {
        assert_eq!(ApInt::from_i64(8, -1), ApInt::all_ones(8));
        assert_eq!(ApInt::from_i64(32, -5).to_i64(), -5);
        assert_eq!(ApInt::from_i64(128, -5).to_i64(), -5);
        assert_eq!(ApInt::from_i64(16, 300).to_u64(), 300);
    }

    #[test]
    fn add_sub_wrap() {
        let a = ApInt::from_u64(8, 200);
        let b = ApInt::from_u64(8, 100);
        assert_eq!(a.add(&b).to_u64(), 44);
        assert_eq!(b.sub(&a).to_u64(), 156); // -100 mod 256
        let wide_a = ApInt::from_u64(128, u64::MAX);
        let wide_b = ApInt::from_u64(128, 1);
        let sum = wide_a.add(&wide_b);
        assert_eq!(sum.limbs()[0], 0);
        assert_eq!(sum.limbs()[1], 1);
    }

    #[test]
    fn mul_div_rem() {
        let a = ApInt::from_u64(32, 1000);
        let b = ApInt::from_u64(32, 37);
        assert_eq!(a.mul(&b).to_u64(), 37000);
        assert_eq!(a.udiv(&b).to_u64(), 27);
        assert_eq!(a.urem(&b).to_u64(), 1);
        // multiplication wraps
        let c = ApInt::from_u64(8, 16);
        assert_eq!(c.mul(&c).to_u64(), 0);
    }

    #[test]
    fn wide_mul() {
        let a = ApInt::from_u64(128, u64::MAX);
        let b = ApInt::from_u64(128, 2);
        let p = a.mul(&b);
        assert_eq!(p.limbs()[0], u64::MAX - 1);
        assert_eq!(p.limbs()[1], 1);
    }

    #[test]
    fn signed_div_rem_mod() {
        let a = ApInt::from_i64(16, -7);
        let b = ApInt::from_i64(16, 3);
        assert_eq!(a.sdiv(&b).to_i64(), -2);
        assert_eq!(a.srem(&b).to_i64(), -1);
        assert_eq!(a.smod(&b).to_i64(), 2);
        let c = ApInt::from_i64(16, 7);
        let d = ApInt::from_i64(16, -3);
        assert_eq!(c.sdiv(&d).to_i64(), -2);
        assert_eq!(c.srem(&d).to_i64(), 1);
        assert_eq!(c.smod(&d).to_i64(), -2);
    }

    #[test]
    fn signed_div_agrees_with_wide_path() {
        // The small (inline) fast path and the generic limb path must
        // implement the same function.
        for (a, b) in [(-7i64, 3i64), (7, -3), (-7, -3), (100, 7), (-128, 1)] {
            let small_q = ApInt::from_i64(16, a).sdiv(&ApInt::from_i64(16, b));
            let wide_q = ApInt::from_i64(80, a).sdiv(&ApInt::from_i64(80, b));
            assert_eq!(small_q.to_i64(), wide_q.to_i64(), "{} / {}", a, b);
            let small_r = ApInt::from_i64(16, a).srem(&ApInt::from_i64(16, b));
            let wide_r = ApInt::from_i64(80, a).srem(&ApInt::from_i64(80, b));
            assert_eq!(small_r.to_i64(), wide_r.to_i64(), "{} % {}", a, b);
        }
    }

    #[test]
    fn division_by_zero_convention() {
        let a = ApInt::from_u64(8, 42);
        let z = ApInt::zero(8);
        assert_eq!(a.udiv(&z), ApInt::all_ones(8));
        assert_eq!(a.urem(&z), a);
        assert_eq!(a.sdiv(&z), ApInt::all_ones(8));
        assert_eq!(a.srem(&z), a);
    }

    #[test]
    fn bitwise_ops() {
        let a = ApInt::from_u64(8, 0b1100_1010);
        let b = ApInt::from_u64(8, 0b1010_0101);
        assert_eq!(a.and(&b).to_u64(), 0b1000_0000);
        assert_eq!(a.or(&b).to_u64(), 0b1110_1111);
        assert_eq!(a.xor(&b).to_u64(), 0b0110_1111);
        assert_eq!(a.not().to_u64(), 0b0011_0101);
    }

    #[test]
    fn shifts() {
        let a = ApInt::from_u64(8, 0b1001_0110);
        assert_eq!(a.shl_bits(2).to_u64(), 0b0101_1000);
        assert_eq!(a.lshr_bits(2).to_u64(), 0b0010_0101);
        assert_eq!(a.ashr_bits(2).to_u64(), 0b1110_0101);
        assert_eq!(a.shl_bits(8).to_u64(), 0);
        assert_eq!(a.lshr_bits(9).to_u64(), 0);
        assert_eq!(a.ashr_bits(100), ApInt::all_ones(8));
        // cross-limb shifts
        let w = ApInt::from_u64(128, 1);
        assert_eq!(w.shl_bits(64).limbs()[1], 1);
        assert_eq!(w.shl_bits(64).lshr_bits(64).to_u64(), 1);
    }

    #[test]
    fn comparisons() {
        let a = ApInt::from_u64(8, 200);
        let b = ApInt::from_u64(8, 100);
        assert_eq!(a.ucmp(&b), Ordering::Greater);
        // 200 as signed i8 is -56, which is less than 100
        assert_eq!(a.scmp(&b), Ordering::Less);
        assert_eq!(a.ucmp(&a), Ordering::Equal);
    }

    #[test]
    fn extension_and_truncation() {
        let a = ApInt::from_u64(8, 0x80);
        assert_eq!(a.zext(16).to_u64(), 0x80);
        assert_eq!(a.sext(16).to_u64(), 0xff80);
        assert_eq!(a.sext(128).to_i64(), -128);
        assert_eq!(ApInt::from_u64(16, 0x1234).trunc(8).to_u64(), 0x34);
    }

    #[test]
    fn extension_across_the_limb_boundary() {
        // Small -> wide and wide -> small conversions keep the value.
        let a = ApInt::from_u64(48, 0xdead_beef_cafe);
        assert_eq!(a.zext(96).trunc(48), a);
        let neg = ApInt::from_i64(48, -3);
        assert_eq!(neg.sext(96).to_i64(), -3);
        assert_eq!(neg.sext(96).trunc(48), neg);
        let wide = ApInt::from_u64(96, 0x1234_5678);
        assert_eq!(wide.trunc(32).to_u64(), 0x1234_5678);
    }

    #[test]
    fn slices() {
        let a = ApInt::from_u64(16, 0xabcd);
        assert_eq!(a.extract_slice(4, 8).to_u64(), 0xbc);
        assert_eq!(a.extract_slice(0, 4).to_u64(), 0xd);
        assert_eq!(a.extract_slice(12, 4).to_u64(), 0xa);
        let patched = a.insert_slice(4, &ApInt::from_u64(8, 0x55));
        assert_eq!(patched.to_u64(), 0xa55d);
    }

    #[test]
    fn bit_helpers() {
        let a = ApInt::from_u64(8, 0b0000_1000);
        assert!(a.bit(3));
        assert!(!a.bit(2));
        assert_eq!(a.count_ones(), 1);
        assert_eq!(a.leading_zeros(), 4);
        assert_eq!(ApInt::zero(8).leading_zeros(), 8);
        assert!(ApInt::from_u64(8, 0x80).sign_bit());
    }

    #[test]
    fn decimal_strings() {
        let a = ApInt::from_u64(32, 1337);
        assert_eq!(a.to_string_unsigned(), "1337");
        assert_eq!(ApInt::from_i64(32, -42).to_string_signed(), "-42");
        assert_eq!(ApInt::zero(32).to_string_unsigned(), "0");
        let big = ApInt::from_str_radix10(128, "340282366920938463463374607431768211455").unwrap();
        assert_eq!(big, ApInt::all_ones(128));
        assert_eq!(
            big.to_string_unsigned(),
            "340282366920938463463374607431768211455"
        );
        assert_eq!(ApInt::from_str_radix10(8, "-1").unwrap(), ApInt::all_ones(8));
        assert!(ApInt::from_str_radix10(8, "12a").is_none());
        assert!(ApInt::from_str_radix10(8, "").is_none());
    }

    #[test]
    fn roundtrip_parse_print() {
        for v in [0u64, 1, 17, 255, 256, 65535, 123456789] {
            let a = ApInt::from_u64(48, v);
            let s = a.to_string_unsigned();
            assert_eq!(ApInt::from_str_radix10(48, &s).unwrap(), a);
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_widths_panic() {
        ApInt::from_u64(8, 1).add(&ApInt::from_u64(16, 1));
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        ApInt::zero(0);
    }
}
