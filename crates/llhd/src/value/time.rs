//! Time values.
//!
//! LLHD models physical time as a triple of
//! (femtoseconds, delta steps, epsilon steps):
//!
//! * the **physical** component advances real time (the paper's `1ns`,
//!   `2ns` delays),
//! * the **delta** component orders zero-delay events relative to each other
//!   (one delta step is the smallest amount of "time" between dependent
//!   signal updates within the same physical instant),
//! * the **epsilon** component orders updates within the same delta step and
//!   is used by the simulator to sequence instantaneous re-evaluations.
//!
//! The triple orders lexicographically.

use std::fmt;
use std::ops::Add;

/// Femtoseconds per second, the base unit of [`TimeValue`].
pub const FEMTOS_PER_SECOND: u128 = 1_000_000_000_000_000;

/// A point in time or a delay, as `(fs, delta, epsilon)`.
///
/// # Examples
///
/// ```
/// use llhd::value::TimeValue;
/// let a = TimeValue::from_nanos(1);
/// let b = TimeValue::from_nanos(2);
/// assert!(a < b);
/// assert_eq!((a + b).as_femtos(), 3_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TimeValue {
    femtos: u128,
    delta: u32,
    epsilon: u32,
}

impl TimeValue {
    /// The zero time.
    pub const ZERO: TimeValue = TimeValue {
        femtos: 0,
        delta: 0,
        epsilon: 0,
    };

    /// Create a time value from its components.
    pub fn new(femtos: u128, delta: u32, epsilon: u32) -> Self {
        TimeValue {
            femtos,
            delta,
            epsilon,
        }
    }

    /// A purely physical time in femtoseconds.
    pub fn from_femtos(femtos: u128) -> Self {
        TimeValue::new(femtos, 0, 0)
    }

    /// A purely physical time in picoseconds.
    pub fn from_picos(picos: u128) -> Self {
        TimeValue::from_femtos(picos * 1_000)
    }

    /// A purely physical time in nanoseconds.
    pub fn from_nanos(nanos: u128) -> Self {
        TimeValue::from_femtos(nanos * 1_000_000)
    }

    /// A purely physical time in microseconds.
    pub fn from_micros(micros: u128) -> Self {
        TimeValue::from_femtos(micros * 1_000_000_000)
    }

    /// A pure delta-step delay.
    pub fn from_delta(delta: u32) -> Self {
        TimeValue::new(0, delta, 0)
    }

    /// A pure epsilon-step delay.
    pub fn from_epsilon(epsilon: u32) -> Self {
        TimeValue::new(0, 0, epsilon)
    }

    /// The physical component in femtoseconds.
    pub fn as_femtos(&self) -> u128 {
        self.femtos
    }

    /// The physical component in (truncated) nanoseconds.
    pub fn as_nanos(&self) -> u128 {
        self.femtos / 1_000_000
    }

    /// The delta component.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// The epsilon component.
    pub fn epsilon(&self) -> u32 {
        self.epsilon
    }

    /// Whether all components are zero.
    pub fn is_zero(&self) -> bool {
        *self == TimeValue::ZERO
    }

    /// Advance this absolute time by a (relative) delay.
    ///
    /// Adding a delay with a non-zero physical component resets the delta and
    /// epsilon counters, matching event-queue semantics: a `1ns` delay always
    /// lands at the first delta step of the new time instant.
    pub fn advance_by(&self, delay: &TimeValue) -> TimeValue {
        if delay.femtos > 0 {
            TimeValue::new(self.femtos + delay.femtos, delay.delta, delay.epsilon)
        } else {
            TimeValue::new(
                self.femtos,
                self.delta + delay.delta,
                if delay.delta > 0 {
                    delay.epsilon
                } else {
                    self.epsilon + delay.epsilon
                },
            )
        }
    }
}

impl Add for TimeValue {
    type Output = TimeValue;
    fn add(self, rhs: TimeValue) -> TimeValue {
        TimeValue::new(
            self.femtos + rhs.femtos,
            self.delta + rhs.delta,
            self.epsilon + rhs.epsilon,
        )
    }
}

impl fmt::Display for TimeValue {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        // Print with the largest unit that divides the value exactly.
        let (value, unit) = if self.femtos == 0 {
            (0, "s")
        } else if self.femtos.is_multiple_of(1_000_000_000) {
            (self.femtos / 1_000_000_000, "us")
        } else if self.femtos.is_multiple_of(1_000_000) {
            (self.femtos / 1_000_000, "ns")
        } else if self.femtos.is_multiple_of(1_000) {
            (self.femtos / 1_000, "ps")
        } else {
            (self.femtos, "fs")
        };
        write!(f, "{}{}", value, unit)?;
        if self.delta > 0 {
            write!(f, " {}d", self.delta)?;
        }
        if self.epsilon > 0 {
            write!(f, " {}e", self.epsilon)?;
        }
        Ok(())
    }
}

impl fmt::Debug for TimeValue {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Parse a time literal such as `1ns`, `500ps`, `2us`, optionally followed by
/// delta (`3d`) and epsilon (`4e`) components.
pub fn parse_time(s: &str) -> Option<TimeValue> {
    let mut femtos = 0u128;
    let mut delta = 0u32;
    let mut epsilon = 0u32;
    for (i, part) in s.split_whitespace().enumerate() {
        let digits_end = part
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(part.len());
        let (num_str, suffix) = part.split_at(digits_end);
        let num: u128 = num_str.parse().ok()?;
        match suffix {
            "s" => femtos += num * FEMTOS_PER_SECOND,
            "ms" => femtos += num * 1_000_000_000_000,
            "us" => femtos += num * 1_000_000_000,
            "ns" => femtos += num * 1_000_000,
            "ps" => femtos += num * 1_000,
            "fs" => femtos += num,
            "d" => delta = num as u32,
            "e" => epsilon = num as u32,
            _ if i == 0 => return None,
            _ => return None,
        }
    }
    Some(TimeValue::new(femtos, delta, epsilon))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(TimeValue::from_nanos(1).as_femtos(), 1_000_000);
        assert_eq!(TimeValue::from_picos(1).as_femtos(), 1_000);
        assert_eq!(TimeValue::from_micros(1).as_femtos(), 1_000_000_000);
        assert_eq!(TimeValue::from_nanos(3).as_nanos(), 3);
    }

    #[test]
    fn lexicographic_ordering() {
        let t1 = TimeValue::new(1000, 0, 0);
        let t2 = TimeValue::new(1000, 1, 0);
        let t3 = TimeValue::new(1000, 1, 1);
        let t4 = TimeValue::new(2000, 0, 0);
        assert!(t1 < t2);
        assert!(t2 < t3);
        assert!(t3 < t4);
        assert!(TimeValue::ZERO < t1);
    }

    #[test]
    fn advancing_time() {
        let now = TimeValue::new(5_000_000, 3, 2);
        let later = now.advance_by(&TimeValue::from_nanos(1));
        assert_eq!(later, TimeValue::new(6_000_000, 0, 0));
        let delta = now.advance_by(&TimeValue::from_delta(1));
        assert_eq!(delta, TimeValue::new(5_000_000, 4, 0));
        let eps = now.advance_by(&TimeValue::from_epsilon(1));
        assert_eq!(eps, TimeValue::new(5_000_000, 3, 3));
    }

    #[test]
    fn display_uses_natural_unit() {
        assert_eq!(TimeValue::from_nanos(1).to_string(), "1ns");
        assert_eq!(TimeValue::from_picos(500).to_string(), "500ps");
        assert_eq!(TimeValue::from_femtos(7).to_string(), "7fs");
        assert_eq!(TimeValue::from_micros(2).to_string(), "2us");
        assert_eq!(TimeValue::ZERO.to_string(), "0s");
        assert_eq!(TimeValue::new(1_000_000, 2, 3).to_string(), "1ns 2d 3e");
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["1ns", "500ps", "2us", "7fs", "0s", "1ns 2d 3e"] {
            let t = parse_time(s).unwrap();
            assert_eq!(t.to_string(), s, "roundtrip of {}", s);
        }
        assert_eq!(parse_time("1ns 1d"), Some(TimeValue::new(1_000_000, 1, 0)));
        assert_eq!(parse_time("garbage"), None);
        assert_eq!(parse_time("1xx"), None);
    }

    #[test]
    fn addition() {
        let a = TimeValue::new(10, 1, 2);
        let b = TimeValue::new(20, 3, 4);
        assert_eq!(a + b, TimeValue::new(30, 4, 6));
    }
}
