//! Constant values.
//!
//! A [`ConstValue`] is the runtime/compile-time representation of any LLHD
//! value: integers, enumerations, nine-valued logic, time, arrays, and
//! structs. Constant values are used by `const` instructions, by the constant
//! folder, and as the signal/variable state of the simulators.

mod apint;
mod logic;
mod time;

pub use apint::ApInt;
pub use logic::{LogicBit, LogicVector};
pub use time::{parse_time, TimeValue, FEMTOS_PER_SECOND};

use crate::ty::{self, Type, TypeKind};
use std::fmt;

/// A constant LLHD value of any type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ConstValue {
    /// The void value.
    Void,
    /// A point in time or delay.
    Time(TimeValue),
    /// An `iN` integer.
    Int(ApInt),
    /// An `nN` enumeration value: `value` out of `states`.
    Enum { states: usize, value: usize },
    /// An `lN` nine-valued logic vector.
    Logic(LogicVector),
    /// An array of homogeneous elements.
    Array(Vec<ConstValue>),
    /// A struct of heterogeneous fields.
    Struct(Vec<ConstValue>),
}

impl ConstValue {
    /// Create an integer constant from a `u64`.
    pub fn int(width: usize, value: u64) -> Self {
        ConstValue::Int(ApInt::from_u64(width, value))
    }

    /// Create an integer constant from an `i64` (sign-extended).
    pub fn int_signed(width: usize, value: i64) -> Self {
        ConstValue::Int(ApInt::from_i64(width, value))
    }

    /// Create a single-bit boolean constant (`i1`).
    pub fn bool(value: bool) -> Self {
        ConstValue::int(1, value as u64)
    }

    /// Create a time constant.
    pub fn time(value: TimeValue) -> Self {
        ConstValue::Time(value)
    }

    /// Create the canonical "zero" value for the given type: integer 0,
    /// logic all-`U`, zero time, enum state 0, element-wise zero for
    /// aggregates.
    ///
    /// # Panics
    ///
    /// Panics for `void`, function, and entity types which have no values.
    pub fn zero_of(ty: &Type) -> Self {
        match ty.kind() {
            TypeKind::Void => ConstValue::Void,
            TypeKind::Time => ConstValue::Time(TimeValue::ZERO),
            TypeKind::Int(w) => ConstValue::Int(ApInt::zero(*w)),
            TypeKind::Enum(n) => ConstValue::Enum {
                states: *n,
                value: 0,
            },
            TypeKind::Logic(w) => ConstValue::Logic(LogicVector::uninitialized(*w)),
            TypeKind::Array(len, inner) => {
                ConstValue::Array(vec![ConstValue::zero_of(inner); *len])
            }
            TypeKind::Struct(fields) => {
                ConstValue::Struct(fields.iter().map(ConstValue::zero_of).collect())
            }
            TypeKind::Signal(inner) | TypeKind::Pointer(inner) => ConstValue::zero_of(inner),
            TypeKind::Func(..) | TypeKind::Entity(..) => {
                panic!("type {} has no zero value", ty)
            }
        }
    }

    /// The type of this constant.
    pub fn ty(&self) -> Type {
        match self {
            ConstValue::Void => ty::void_ty(),
            ConstValue::Time(_) => ty::time_ty(),
            ConstValue::Int(v) => ty::int_ty(v.width()),
            ConstValue::Enum { states, .. } => ty::enum_ty(*states),
            ConstValue::Logic(v) => ty::logic_ty(v.width()),
            ConstValue::Array(elems) => {
                let inner = elems
                    .first()
                    .map(|e| e.ty())
                    .unwrap_or_else(ty::void_ty);
                ty::array_ty(elems.len(), inner)
            }
            ConstValue::Struct(fields) => {
                ty::struct_ty(fields.iter().map(|f| f.ty()).collect())
            }
        }
    }

    /// Interpret the value as a boolean, if it is a defined single-bit value.
    pub fn to_bool(&self) -> Option<bool> {
        match self {
            ConstValue::Int(v) if v.width() == 1 => Some(!v.is_zero()),
            ConstValue::Logic(v) if v.width() == 1 => v.bit(0).to_bool(),
            _ => None,
        }
    }

    /// Whether the value is "truthy": any defined non-zero integer/logic.
    pub fn is_truthy(&self) -> bool {
        match self {
            ConstValue::Int(v) => !v.is_zero(),
            ConstValue::Logic(v) => !v.to_apint_lossy().is_zero(),
            ConstValue::Enum { value, .. } => *value != 0,
            _ => false,
        }
    }

    /// Get the integer payload, if this is an integer constant.
    pub fn as_int(&self) -> Option<&ApInt> {
        match self {
            ConstValue::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Get the time payload, if this is a time constant.
    pub fn as_time(&self) -> Option<&TimeValue> {
        match self {
            ConstValue::Time(t) => Some(t),
            _ => None,
        }
    }

    /// Get the logic payload, if this is a logic constant.
    pub fn as_logic(&self) -> Option<&LogicVector> {
        match self {
            ConstValue::Logic(v) => Some(v),
            _ => None,
        }
    }

    /// Get the array elements, if this is an array constant.
    pub fn as_array(&self) -> Option<&[ConstValue]> {
        match self {
            ConstValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Get the struct fields, if this is a struct constant.
    pub fn as_struct(&self) -> Option<&[ConstValue]> {
        match self {
            ConstValue::Struct(v) => Some(v),
            _ => None,
        }
    }

    /// The low 64 bits of an integer or enum constant.
    pub fn to_u64(&self) -> Option<u64> {
        match self {
            ConstValue::Int(v) => Some(v.to_u64()),
            ConstValue::Enum { value, .. } => Some(*value as u64),
            ConstValue::Logic(v) => v.to_apint().map(|a| a.to_u64()),
            _ => None,
        }
    }

    /// An estimate of the in-memory footprint of this constant in bytes, for
    /// the Table 4 size accounting.
    pub fn memory_size(&self) -> usize {
        let inner = match self {
            ConstValue::Int(v) => v.limbs().len() * 8,
            ConstValue::Logic(v) => v.width(),
            ConstValue::Array(elems) => elems.iter().map(|e| e.memory_size()).sum(),
            ConstValue::Struct(fields) => fields.iter().map(|f| f.memory_size()).sum(),
            _ => 0,
        };
        std::mem::size_of::<ConstValue>() + inner
    }

    /// Extract the element/field at `index` from an aggregate, or the bit at
    /// `index` from an integer.
    pub fn extract_field(&self, index: usize) -> Option<ConstValue> {
        match self {
            ConstValue::Array(elems) => elems.get(index).cloned(),
            ConstValue::Struct(fields) => fields.get(index).cloned(),
            ConstValue::Int(v) if index < v.width() => {
                Some(ConstValue::Int(v.extract_slice(index, 1)))
            }
            _ => None,
        }
    }

    /// Replace the element/field at `index` of an aggregate.
    pub fn insert_field(&self, index: usize, value: ConstValue) -> Option<ConstValue> {
        match self {
            ConstValue::Array(elems) if index < elems.len() => {
                let mut e = elems.clone();
                e[index] = value;
                Some(ConstValue::Array(e))
            }
            ConstValue::Struct(fields) if index < fields.len() => {
                let mut f = fields.clone();
                f[index] = value;
                Some(ConstValue::Struct(f))
            }
            ConstValue::Int(v) if index < v.width() => {
                let bit = value.as_int()?;
                Some(ConstValue::Int(v.insert_slice(index, bit)))
            }
            _ => None,
        }
    }

    /// Extract a slice `[offset, offset+length)` of an array or integer.
    pub fn extract_slice(&self, offset: usize, length: usize) -> Option<ConstValue> {
        match self {
            ConstValue::Array(elems) if offset + length <= elems.len() => {
                Some(ConstValue::Array(elems[offset..offset + length].to_vec()))
            }
            ConstValue::Int(v) if offset + length <= v.width() => {
                Some(ConstValue::Int(v.extract_slice(offset, length)))
            }
            _ => None,
        }
    }

    /// Insert a slice of an array or integer at `offset`.
    pub fn insert_slice(&self, offset: usize, value: &ConstValue) -> Option<ConstValue> {
        match (self, value) {
            (ConstValue::Array(elems), ConstValue::Array(new)) => {
                if offset + new.len() > elems.len() {
                    return None;
                }
                let mut e = elems.clone();
                e[offset..offset + new.len()].clone_from_slice(new);
                Some(ConstValue::Array(e))
            }
            (ConstValue::Int(v), ConstValue::Int(new)) => {
                if offset + new.width() > v.width() {
                    return None;
                }
                Some(ConstValue::Int(v.insert_slice(offset, new)))
            }
            _ => None,
        }
    }
}

impl fmt::Display for ConstValue {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match self {
            ConstValue::Void => write!(f, "void"),
            ConstValue::Time(t) => write!(f, "{}", t),
            ConstValue::Int(v) => write!(f, "{}", v.to_string_unsigned()),
            ConstValue::Enum { value, .. } => write!(f, "{}", value),
            ConstValue::Logic(v) => write!(f, "\"{}\"", v),
            ConstValue::Array(elems) => {
                write!(f, "[")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", e)?;
                }
                write!(f, "]")
            }
            ConstValue::Struct(fields) => {
                write!(f, "{{")?;
                for (i, e) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", e)?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::*;

    #[test]
    fn zero_values() {
        assert_eq!(ConstValue::zero_of(&int_ty(8)), ConstValue::int(8, 0));
        assert_eq!(ConstValue::zero_of(&time_ty()), ConstValue::Time(TimeValue::ZERO));
        assert_eq!(
            ConstValue::zero_of(&enum_ty(4)),
            ConstValue::Enum { states: 4, value: 0 }
        );
        assert_eq!(
            ConstValue::zero_of(&array_ty(2, int_ty(4))),
            ConstValue::Array(vec![ConstValue::int(4, 0), ConstValue::int(4, 0)])
        );
        assert_eq!(
            ConstValue::zero_of(&signal_ty(int_ty(8))),
            ConstValue::int(8, 0)
        );
        let l = ConstValue::zero_of(&logic_ty(3));
        assert_eq!(l, ConstValue::Logic(LogicVector::uninitialized(3)));
    }

    #[test]
    fn value_types() {
        assert_eq!(ConstValue::int(32, 7).ty(), int_ty(32));
        assert_eq!(ConstValue::bool(true).ty(), int_ty(1));
        assert_eq!(ConstValue::Time(TimeValue::ZERO).ty(), time_ty());
        assert_eq!(
            ConstValue::Struct(vec![ConstValue::int(1, 0), ConstValue::int(2, 0)]).ty(),
            struct_ty(vec![int_ty(1), int_ty(2)])
        );
        assert_eq!(
            ConstValue::Array(vec![ConstValue::int(4, 0); 3]).ty(),
            array_ty(3, int_ty(4))
        );
    }

    #[test]
    fn booleans_and_truthiness() {
        assert_eq!(ConstValue::bool(true).to_bool(), Some(true));
        assert_eq!(ConstValue::bool(false).to_bool(), Some(false));
        assert_eq!(ConstValue::int(8, 1).to_bool(), None);
        assert!(ConstValue::int(8, 3).is_truthy());
        assert!(!ConstValue::int(8, 0).is_truthy());
        let x = ConstValue::Logic(LogicVector::from_str("X").unwrap());
        assert_eq!(x.to_bool(), None);
    }

    #[test]
    fn field_and_slice_access() {
        let arr = ConstValue::Array(vec![
            ConstValue::int(8, 10),
            ConstValue::int(8, 20),
            ConstValue::int(8, 30),
        ]);
        assert_eq!(arr.extract_field(1), Some(ConstValue::int(8, 20)));
        assert_eq!(arr.extract_field(5), None);
        let arr2 = arr.insert_field(2, ConstValue::int(8, 99)).unwrap();
        assert_eq!(arr2.extract_field(2), Some(ConstValue::int(8, 99)));
        assert_eq!(
            arr.extract_slice(1, 2),
            Some(ConstValue::Array(vec![
                ConstValue::int(8, 20),
                ConstValue::int(8, 30)
            ]))
        );
        let int = ConstValue::int(16, 0xabcd);
        assert_eq!(int.extract_slice(4, 8), Some(ConstValue::int(8, 0xbc)));
        assert_eq!(
            int.insert_slice(0, &ConstValue::int(4, 0xf)),
            Some(ConstValue::int(16, 0xabcf))
        );
        let s = ConstValue::Struct(vec![ConstValue::bool(true), ConstValue::int(8, 5)]);
        assert_eq!(s.extract_field(0), Some(ConstValue::bool(true)));
    }

    #[test]
    fn display() {
        assert_eq!(ConstValue::int(8, 42).to_string(), "42");
        assert_eq!(ConstValue::Time(TimeValue::from_nanos(2)).to_string(), "2ns");
        assert_eq!(
            ConstValue::Array(vec![ConstValue::int(4, 1), ConstValue::int(4, 2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(
            ConstValue::Struct(vec![ConstValue::int(4, 1)]).to_string(),
            "{1}"
        );
    }

    #[test]
    fn memory_size_scales() {
        let small = ConstValue::int(8, 1);
        let big = ConstValue::Array(vec![ConstValue::int(8, 1); 16]);
        assert!(big.memory_size() > small.memory_size());
    }
}
