//! Nine-valued logic values as defined by IEEE 1164.
//!
//! The `lN` type models the states a physical signal wire may be in beyond
//! plain `0` and `1`: uninitialized, unknown, high impedance, weak drives,
//! and don't-care. LLHD uses these to faithfully capture VHDL `std_logic`
//! and (as a superset) SystemVerilog four-valued logic.

use super::apint::ApInt;
use std::fmt;

/// A single IEEE 1164 logic digit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum LogicBit {
    /// `U`: uninitialized.
    Uninitialized,
    /// `X`: forcing unknown.
    Unknown,
    /// `0`: forcing zero.
    Zero,
    /// `1`: forcing one.
    One,
    /// `Z`: high impedance.
    HighImpedance,
    /// `W`: weak unknown.
    WeakUnknown,
    /// `L`: weak zero.
    WeakZero,
    /// `H`: weak one.
    WeakOne,
    /// `-`: don't care.
    DontCare,
}

impl LogicBit {
    /// All nine states in IEEE 1164 table order.
    pub const ALL: [LogicBit; 9] = [
        LogicBit::Uninitialized,
        LogicBit::Unknown,
        LogicBit::Zero,
        LogicBit::One,
        LogicBit::HighImpedance,
        LogicBit::WeakUnknown,
        LogicBit::WeakZero,
        LogicBit::WeakOne,
        LogicBit::DontCare,
    ];

    /// The character used in the standard to denote this state.
    pub fn to_char(self) -> char {
        match self {
            LogicBit::Uninitialized => 'U',
            LogicBit::Unknown => 'X',
            LogicBit::Zero => '0',
            LogicBit::One => '1',
            LogicBit::HighImpedance => 'Z',
            LogicBit::WeakUnknown => 'W',
            LogicBit::WeakZero => 'L',
            LogicBit::WeakOne => 'H',
            LogicBit::DontCare => '-',
        }
    }

    /// Parse a logic state from its standard character (case-insensitive).
    pub fn from_char(c: char) -> Option<Self> {
        Some(match c.to_ascii_uppercase() {
            'U' => LogicBit::Uninitialized,
            'X' => LogicBit::Unknown,
            '0' => LogicBit::Zero,
            '1' => LogicBit::One,
            'Z' => LogicBit::HighImpedance,
            'W' => LogicBit::WeakUnknown,
            'L' => LogicBit::WeakZero,
            'H' => LogicBit::WeakOne,
            '-' => LogicBit::DontCare,
            _ => return None,
        })
    }

    /// A dense index 0..9, used by the resolution and operator tables.
    pub fn index(self) -> usize {
        match self {
            LogicBit::Uninitialized => 0,
            LogicBit::Unknown => 1,
            LogicBit::Zero => 2,
            LogicBit::One => 3,
            LogicBit::HighImpedance => 4,
            LogicBit::WeakUnknown => 5,
            LogicBit::WeakZero => 6,
            LogicBit::WeakOne => 7,
            LogicBit::DontCare => 8,
        }
    }

    /// Reduce to the `X01` subset: strong unknown, zero, or one.
    pub fn to_x01(self) -> LogicBit {
        match self {
            LogicBit::Zero | LogicBit::WeakZero => LogicBit::Zero,
            LogicBit::One | LogicBit::WeakOne => LogicBit::One,
            _ => LogicBit::Unknown,
        }
    }

    /// Interpret as a boolean if possible (`0`/`L` → false, `1`/`H` → true).
    pub fn to_bool(self) -> Option<bool> {
        match self.to_x01() {
            LogicBit::Zero => Some(false),
            LogicBit::One => Some(true),
            _ => None,
        }
    }

    /// Whether this state is one of the two defined binary states after X01
    /// reduction.
    pub fn is_binary(self) -> bool {
        self.to_bool().is_some()
    }

    /// IEEE 1164 resolution function: combine two drivers of the same wire.
    pub fn resolve(self, other: LogicBit) -> LogicBit {
        use LogicBit::*;
        // Resolution table from IEEE 1164-1993, indexed [self][other].
        const TABLE: [[LogicBit; 9]; 9] = [
            // U              X        0        1        Z        W            L         H        -
            [
                Uninitialized,
                Uninitialized,
                Uninitialized,
                Uninitialized,
                Uninitialized,
                Uninitialized,
                Uninitialized,
                Uninitialized,
                Uninitialized,
            ],
            [
                Uninitialized,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
            ],
            [
                Uninitialized,
                Unknown,
                Zero,
                Unknown,
                Zero,
                Zero,
                Zero,
                Zero,
                Unknown,
            ],
            [
                Uninitialized,
                Unknown,
                Unknown,
                One,
                One,
                One,
                One,
                One,
                Unknown,
            ],
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                HighImpedance,
                WeakUnknown,
                WeakZero,
                WeakOne,
                Unknown,
            ],
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                WeakUnknown,
                WeakUnknown,
                WeakUnknown,
                WeakUnknown,
                Unknown,
            ],
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                WeakZero,
                WeakUnknown,
                WeakZero,
                WeakUnknown,
                Unknown,
            ],
            [
                Uninitialized,
                Unknown,
                Zero,
                One,
                WeakOne,
                WeakUnknown,
                WeakUnknown,
                WeakOne,
                Unknown,
            ],
            [
                Uninitialized,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
                Unknown,
            ],
        ];
        TABLE[self.index()][other.index()]
    }

    /// Logic and per IEEE 1164 (on the X01 reduction, with `U` dominance).
    pub fn and(self, other: LogicBit) -> LogicBit {
        if self == LogicBit::Uninitialized || other == LogicBit::Uninitialized {
            return LogicBit::Uninitialized;
        }
        match (self.to_x01(), other.to_x01()) {
            (LogicBit::Zero, _) | (_, LogicBit::Zero) => LogicBit::Zero,
            (LogicBit::One, LogicBit::One) => LogicBit::One,
            _ => LogicBit::Unknown,
        }
    }

    /// Logic or per IEEE 1164.
    pub fn or(self, other: LogicBit) -> LogicBit {
        if self == LogicBit::Uninitialized || other == LogicBit::Uninitialized {
            return LogicBit::Uninitialized;
        }
        match (self.to_x01(), other.to_x01()) {
            (LogicBit::One, _) | (_, LogicBit::One) => LogicBit::One,
            (LogicBit::Zero, LogicBit::Zero) => LogicBit::Zero,
            _ => LogicBit::Unknown,
        }
    }

    /// Logic xor per IEEE 1164.
    pub fn xor(self, other: LogicBit) -> LogicBit {
        if self == LogicBit::Uninitialized || other == LogicBit::Uninitialized {
            return LogicBit::Uninitialized;
        }
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => {
                if a ^ b {
                    LogicBit::One
                } else {
                    LogicBit::Zero
                }
            }
            _ => LogicBit::Unknown,
        }
    }

    /// Logic not per IEEE 1164. Deliberately *not* `std::ops::Not`: nine-
    /// valued negation is a domain operation (X/Z propagate), and hiding it
    /// behind `!` would read as boolean complement.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> LogicBit {
        if self == LogicBit::Uninitialized {
            return LogicBit::Uninitialized;
        }
        match self.to_x01() {
            LogicBit::Zero => LogicBit::One,
            LogicBit::One => LogicBit::Zero,
            _ => LogicBit::Unknown,
        }
    }
}

impl fmt::Display for LogicBit {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A vector of nine-valued logic digits, MSB first when printed.
///
/// # Examples
///
/// ```
/// use llhd::value::LogicVector;
/// let v = LogicVector::from_str("10XZ").unwrap();
/// assert_eq!(v.width(), 4);
/// assert_eq!(v.to_string(), "10XZ");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LogicVector {
    /// Digits stored LSB-first (index 0 is bit 0).
    bits: Vec<LogicBit>,
}

impl LogicVector {
    /// Create a vector of `width` digits all set to `fill`.
    pub fn filled(width: usize, fill: LogicBit) -> Self {
        LogicVector {
            bits: vec![fill; width],
        }
    }

    /// Create a vector of `width` uninitialized (`U`) digits.
    pub fn uninitialized(width: usize) -> Self {
        Self::filled(width, LogicBit::Uninitialized)
    }

    /// Create a vector of `width` unknown (`X`) digits.
    pub fn unknown(width: usize) -> Self {
        Self::filled(width, LogicBit::Unknown)
    }

    /// Create a logic vector from a binary integer value.
    pub fn from_apint(value: &ApInt) -> Self {
        let bits = (0..value.width())
            .map(|i| {
                if value.bit(i) {
                    LogicBit::One
                } else {
                    LogicBit::Zero
                }
            })
            .collect();
        LogicVector { bits }
    }

    /// Create a logic vector from LSB-first digits.
    pub fn from_bits(bits: Vec<LogicBit>) -> Self {
        LogicVector { bits }
    }

    /// Parse an MSB-first string of IEEE 1164 characters. Not the
    /// `FromStr` trait because the failure carries no error payload and
    /// call sites want `Option` composition.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Self> {
        let mut bits = Vec::with_capacity(s.len());
        for c in s.chars().rev() {
            bits.push(LogicBit::from_char(c)?);
        }
        if bits.is_empty() {
            return None;
        }
        Some(LogicVector { bits })
    }

    /// The number of digits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Get the digit at position `pos` (LSB is 0).
    pub fn bit(&self, pos: usize) -> LogicBit {
        self.bits[pos]
    }

    /// Return a copy with digit `pos` replaced.
    pub fn with_bit(&self, pos: usize, value: LogicBit) -> Self {
        let mut r = self.clone();
        r.bits[pos] = value;
        r
    }

    /// The digits, LSB first.
    pub fn bits(&self) -> &[LogicBit] {
        &self.bits
    }

    /// Whether every digit is `0` or `1` (after X01 reduction, strongly
    /// driven only).
    pub fn is_fully_defined(&self) -> bool {
        self.bits.iter().all(|b| b.is_binary())
    }

    /// Convert to a binary integer; unknown digits map to zero.
    pub fn to_apint_lossy(&self) -> ApInt {
        let mut v = ApInt::zero(self.width().max(1));
        for (i, b) in self.bits.iter().enumerate() {
            if b.to_bool() == Some(true) {
                v = v.with_bit(i, true);
            }
        }
        v
    }

    /// Convert to a binary integer if fully defined.
    pub fn to_apint(&self) -> Option<ApInt> {
        if self.is_fully_defined() {
            Some(self.to_apint_lossy())
        } else {
            None
        }
    }

    /// Resolve two drivers digit-wise.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn resolve(&self, other: &Self) -> Self {
        assert_eq!(self.width(), other.width(), "logic widths must match");
        LogicVector {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(a, b)| a.resolve(*b))
                .collect(),
        }
    }

    /// Digit-wise and.
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.width(), other.width(), "logic widths must match");
        LogicVector {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(a, b)| a.and(*b))
                .collect(),
        }
    }

    /// Digit-wise or.
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.width(), other.width(), "logic widths must match");
        LogicVector {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(a, b)| a.or(*b))
                .collect(),
        }
    }

    /// Digit-wise xor.
    pub fn xor(&self, other: &Self) -> Self {
        assert_eq!(self.width(), other.width(), "logic widths must match");
        LogicVector {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(a, b)| a.xor(*b))
                .collect(),
        }
    }

    /// Digit-wise not.
    pub fn not(&self) -> Self {
        LogicVector {
            bits: self.bits.iter().map(|b| b.not()).collect(),
        }
    }
}

impl fmt::Display for LogicVector {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        for b in self.bits.iter().rev() {
            write!(f, "{}", b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_roundtrip() {
        for b in LogicBit::ALL {
            assert_eq!(LogicBit::from_char(b.to_char()), Some(b));
        }
        assert_eq!(LogicBit::from_char('q'), None);
        assert_eq!(LogicBit::from_char('x'), Some(LogicBit::Unknown));
    }

    #[test]
    fn resolution_is_commutative() {
        for a in LogicBit::ALL {
            for b in LogicBit::ALL {
                assert_eq!(a.resolve(b), b.resolve(a), "resolve({a:?},{b:?})");
            }
        }
    }

    #[test]
    fn resolution_u_dominates() {
        for b in LogicBit::ALL {
            assert_eq!(
                LogicBit::Uninitialized.resolve(b),
                LogicBit::Uninitialized
            );
        }
    }

    #[test]
    fn resolution_strong_drives_win_over_weak() {
        assert_eq!(
            LogicBit::Zero.resolve(LogicBit::WeakOne),
            LogicBit::Zero
        );
        assert_eq!(
            LogicBit::One.resolve(LogicBit::WeakZero),
            LogicBit::One
        );
        assert_eq!(
            LogicBit::Zero.resolve(LogicBit::One),
            LogicBit::Unknown,
            "drive conflict must produce X"
        );
        assert_eq!(
            LogicBit::HighImpedance.resolve(LogicBit::WeakOne),
            LogicBit::WeakOne
        );
        assert_eq!(
            LogicBit::HighImpedance.resolve(LogicBit::HighImpedance),
            LogicBit::HighImpedance
        );
    }

    #[test]
    fn gate_operations() {
        assert_eq!(LogicBit::One.and(LogicBit::One), LogicBit::One);
        assert_eq!(LogicBit::Zero.and(LogicBit::Unknown), LogicBit::Zero);
        assert_eq!(LogicBit::One.and(LogicBit::Unknown), LogicBit::Unknown);
        assert_eq!(LogicBit::One.or(LogicBit::Unknown), LogicBit::One);
        assert_eq!(LogicBit::Zero.or(LogicBit::Zero), LogicBit::Zero);
        assert_eq!(LogicBit::One.xor(LogicBit::One), LogicBit::Zero);
        assert_eq!(LogicBit::One.xor(LogicBit::Unknown), LogicBit::Unknown);
        assert_eq!(LogicBit::WeakOne.not(), LogicBit::Zero);
        assert_eq!(LogicBit::HighImpedance.not(), LogicBit::Unknown);
    }

    #[test]
    fn vector_string_roundtrip() {
        let v = LogicVector::from_str("10XZWLH-U").unwrap();
        assert_eq!(v.width(), 9);
        assert_eq!(v.to_string(), "10XZWLH-U");
        assert!(LogicVector::from_str("").is_none());
        assert!(LogicVector::from_str("012").is_none());
    }

    #[test]
    fn vector_apint_conversion() {
        let a = ApInt::from_u64(8, 0b1010_0110);
        let v = LogicVector::from_apint(&a);
        assert_eq!(v.to_string(), "10100110");
        assert!(v.is_fully_defined());
        assert_eq!(v.to_apint().unwrap(), a);
        let x = LogicVector::from_str("1X10").unwrap();
        assert!(!x.is_fully_defined());
        assert_eq!(x.to_apint(), None);
        assert_eq!(x.to_apint_lossy().to_u64(), 0b1010);
    }

    #[test]
    fn vector_ops() {
        let a = LogicVector::from_str("1100").unwrap();
        let b = LogicVector::from_str("1010").unwrap();
        assert_eq!(a.and(&b).to_string(), "1000");
        assert_eq!(a.or(&b).to_string(), "1110");
        assert_eq!(a.xor(&b).to_string(), "0110");
        assert_eq!(a.not().to_string(), "0011");
        let z = LogicVector::filled(4, LogicBit::HighImpedance);
        assert_eq!(a.resolve(&z), a);
    }

    #[test]
    fn x01_reduction() {
        assert_eq!(LogicBit::WeakOne.to_x01(), LogicBit::One);
        assert_eq!(LogicBit::WeakZero.to_x01(), LogicBit::Zero);
        assert_eq!(LogicBit::HighImpedance.to_x01(), LogicBit::Unknown);
        assert_eq!(LogicBit::WeakOne.to_bool(), Some(true));
        assert_eq!(LogicBit::DontCare.to_bool(), None);
    }
}
