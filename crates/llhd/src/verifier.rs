//! IR verification and dialect conformance checks.
//!
//! The verifier checks the structural invariants of units (terminators,
//! operand types, opcode/unit-kind compatibility) and classifies units and
//! modules into the three LLHD dialects of §2.2:
//!
//! * **Behavioural** — everything is allowed.
//! * **Structural** — only entities (plus the functions they may still call
//!   for constant computation); processes must have been lowered away.
//! * **Netlist** — only entities containing `sig`, `con`, `del`, `inst`, and
//!   the constants they need.

use crate::ir::{Module, Opcode, UnitData, UnitKind};
use crate::ty::TypeKind;
use std::fmt;

/// The three dialects (levels) of LLHD.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Dialect {
    /// Netlist LLHD: entities, signals, connections, delays, instances.
    Netlist,
    /// Structural LLHD: entities with data flow and registers.
    Structural,
    /// Behavioural LLHD: the full IR including processes and functions.
    Behavioural,
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match self {
            Dialect::Netlist => write!(f, "netlist"),
            Dialect::Structural => write!(f, "structural"),
            Dialect::Behavioural => write!(f, "behavioural"),
        }
    }
}

/// A single verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifierError {
    /// The unit in which the error occurred, if any.
    pub unit: Option<String>,
    /// A human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for VerifierError {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match &self.unit {
            Some(unit) => write!(f, "in {}: {}", unit, self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifierError {}

/// The list of errors found during verification.
pub type VerifierResult = Result<(), Vec<VerifierError>>;

fn err(unit: &UnitData, message: impl Into<String>) -> VerifierError {
    VerifierError {
        unit: Some(unit.name().to_string()),
        message: message.into(),
    }
}

/// Verify a whole module: every unit individually plus cross-unit reference
/// signatures.
pub fn verify_module(module: &Module) -> VerifierResult {
    let mut errors = vec![];
    for id in module.units() {
        if let Err(mut e) = verify_unit(module.unit(id)) {
            errors.append(&mut e);
        }
    }
    if let Err(e) = module.check_references() {
        errors.push(VerifierError {
            unit: None,
            message: e.to_string(),
        });
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verify the structural invariants of a single unit.
pub fn verify_unit(unit: &UnitData) -> VerifierResult {
    let mut errors = vec![];
    let kind = unit.kind();

    // Signature checks: processes and entities may only have signal-typed
    // arguments (§2.4.2).
    if kind != UnitKind::Function {
        for (i, ty) in unit
            .sig()
            .inputs()
            .iter()
            .chain(unit.sig().outputs())
            .enumerate()
        {
            if !ty.is_signal() {
                errors.push(err(
                    unit,
                    format!("argument {} of a {} must be a signal, got {}", i, kind, ty),
                ));
            }
        }
    }

    // Block-level checks.
    for block in unit.blocks() {
        let insts = unit.insts(block);
        match kind {
            UnitKind::Function | UnitKind::Process => {
                // Control flow units: every block needs exactly one
                // terminator, at the end.
                match unit.terminator(block) {
                    None => errors.push(err(
                        unit,
                        format!(
                            "block {} lacks a terminator",
                            unit.block_display(block)
                        ),
                    )),
                    Some(_) => {
                        for &inst in &insts[..insts.len().saturating_sub(1)] {
                            if unit.inst_data(inst).opcode.is_terminator() {
                                errors.push(err(
                                    unit,
                                    format!(
                                        "terminator {} in the middle of block {}",
                                        unit.inst_data(inst).opcode,
                                        unit.block_display(block)
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            UnitKind::Entity => {
                // Entities: no terminators at all, single body block.
                for &inst in &insts {
                    if unit.inst_data(inst).opcode.is_terminator() {
                        errors.push(err(
                            unit,
                            format!(
                                "entity contains terminator {}",
                                unit.inst_data(inst).opcode
                            ),
                        ));
                    }
                }
            }
        }
    }
    if kind == UnitKind::Entity && unit.blocks().len() != 1 {
        errors.push(err(unit, "entity must consist of exactly one body block"));
    }

    // Instruction-level checks.
    for inst in unit.all_insts() {
        let data = unit.inst_data(inst);
        let op = data.opcode;
        if !op.allowed_in(kind) {
            errors.push(err(
                unit,
                format!("instruction {} is not allowed in a {}", op, kind),
            ));
        }
        // Operand type sanity for the most important hardware instructions.
        match op {
            Opcode::Prb
                if !unit.value_type(data.args[0]).is_signal() => {
                    errors.push(err(unit, "prb operand must be a signal"));
                }
            Opcode::Drv | Opcode::DrvCond => {
                let sig_ty = unit.value_type(data.args[0]);
                if !sig_ty.is_signal() {
                    errors.push(err(unit, "drv target must be a signal"));
                } else {
                    let value_ty = unit.value_type(data.args[1]);
                    if sig_ty.unwrap_signal() != &value_ty {
                        errors.push(err(
                            unit,
                            format!(
                                "drv value type {} does not match signal payload {}",
                                value_ty,
                                sig_ty.unwrap_signal()
                            ),
                        ));
                    }
                }
                if !unit.value_type(data.args[2]).is_time() {
                    errors.push(err(unit, "drv delay must be a time value"));
                }
                if op == Opcode::DrvCond {
                    let cond_ty = unit.value_type(data.args[3]);
                    if !matches!(cond_ty.kind(), TypeKind::Int(1)) {
                        errors.push(err(unit, "drv condition must be an i1"));
                    }
                }
            }
            Opcode::Reg => {
                if !unit.value_type(data.args[0]).is_signal() {
                    errors.push(err(unit, "reg target must be a signal"));
                }
                if data.triggers.is_empty() {
                    errors.push(err(unit, "reg needs at least one trigger"));
                }
            }
            Opcode::Wait | Opcode::WaitTime
                if data.blocks.len() != 1 => {
                    errors.push(err(unit, "wait needs exactly one resume block"));
                }
            Opcode::BrCond => {
                if data.blocks.len() != 2 {
                    errors.push(err(unit, "conditional branch needs two targets"));
                }
                let cond_ty = unit.value_type(data.args[0]);
                if !matches!(cond_ty.kind(), TypeKind::Int(1)) {
                    errors.push(err(unit, "branch condition must be an i1"));
                }
            }
            Opcode::Phi
                if (data.args.len() != data.blocks.len() || data.args.is_empty()) => {
                    errors.push(err(
                        unit,
                        "phi needs matching value and block operand counts",
                    ));
                }
            Opcode::Call | Opcode::Inst
                if data.ext_unit.is_none() => {
                    errors.push(err(unit, format!("{} needs a target unit", op)));
                }
            Opcode::Con => {
                let a = unit.value_type(data.args[0]);
                let b = unit.value_type(data.args[1]);
                if !a.is_signal() || !b.is_signal() || a != b {
                    errors.push(err(unit, "con requires two signals of identical type"));
                }
            }
            _ => {}
        }
        // Binary arithmetic requires matching operand types.
        if (op.is_comparison()
            || matches!(
                op,
                Opcode::Add
                    | Opcode::Sub
                    | Opcode::And
                    | Opcode::Or
                    | Opcode::Xor
                    | Opcode::Umul
                    | Opcode::Udiv
                    | Opcode::Smul
                    | Opcode::Sdiv
            ))
            && data.args.len() == 2 {
                let a = unit.value_type(data.args[0]);
                let b = unit.value_type(data.args[1]);
                if a != b {
                    errors.push(err(
                        unit,
                        format!("operand types of {} differ: {} vs {}", op, a, b),
                    ));
                }
            }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Determine the lowest (most restrictive) dialect a unit conforms to.
pub fn unit_dialect(unit: &UnitData) -> Dialect {
    match unit.kind() {
        UnitKind::Process | UnitKind::Function => Dialect::Behavioural,
        UnitKind::Entity => {
            let netlist = unit
                .all_insts()
                .iter()
                .all(|&i| unit.inst_data(i).opcode.allowed_in_netlist());
            if netlist {
                Dialect::Netlist
            } else {
                Dialect::Structural
            }
        }
    }
}

/// Determine the lowest dialect an entire module conforms to: the maximum of
/// its units' dialects.
pub fn module_dialect(module: &Module) -> Dialect {
    module
        .units()
        .into_iter()
        .map(|id| unit_dialect(module.unit(id)))
        .max()
        .unwrap_or(Dialect::Netlist)
}

/// Check that a module conforms to the given dialect.
pub fn verify_dialect(module: &Module, dialect: Dialect) -> VerifierResult {
    let actual = module_dialect(module);
    if actual <= dialect {
        Ok(())
    } else {
        Err(vec![VerifierError {
            unit: None,
            message: format!(
                "module is {} LLHD but {} LLHD was required",
                actual, dialect
            ),
        }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{InstData, Signature, UnitBuilder, UnitData, UnitKind, UnitName};
    use crate::ty::*;
    use crate::value::{ConstValue, TimeValue};

    fn valid_process() -> UnitData {
        let mut unit = UnitData::new(
            UnitKind::Process,
            UnitName::global("p"),
            Signature::new_entity(vec![signal_ty(int_ty(8))], vec![signal_ty(int_ty(8))]),
        );
        let a = unit.arg_value(0);
        let q = unit.arg_value(1);
        let mut b = UnitBuilder::new(&mut unit);
        let entry = b.block("entry");
        b.append_to(entry);
        let ap = b.prb(a);
        let delay = b.const_time(TimeValue::from_nanos(1));
        b.drv(q, ap, delay);
        b.wait(entry, vec![a]);
        unit
    }

    #[test]
    fn valid_process_verifies() {
        assert!(verify_unit(&valid_process()).is_ok());
    }

    #[test]
    fn missing_terminator_is_reported() {
        let mut unit = UnitData::new(
            UnitKind::Function,
            UnitName::global("f"),
            Signature::new_func(vec![], void_ty()),
        );
        unit.create_block(Some("entry".into()));
        let errors = verify_unit(&unit).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("terminator")));
    }

    #[test]
    fn non_signal_process_argument_is_reported() {
        let unit = UnitData::new(
            UnitKind::Process,
            UnitName::global("p"),
            Signature::new_entity(vec![int_ty(8)], vec![]),
        );
        let errors = verify_unit(&unit).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("must be a signal")));
    }

    #[test]
    fn drv_type_mismatch_is_reported() {
        let mut unit = UnitData::new(
            UnitKind::Process,
            UnitName::global("p"),
            Signature::new_entity(vec![], vec![signal_ty(int_ty(8))]),
        );
        let q = unit.arg_value(0);
        let mut b = UnitBuilder::new(&mut unit);
        let entry = b.block("entry");
        b.append_to(entry);
        let wrong = b.const_int(16, 0);
        let delay = b.const_time(TimeValue::ZERO);
        b.drv(q, wrong, delay);
        b.halt();
        let errors = verify_unit(&unit).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("does not match")));
    }

    #[test]
    fn wait_in_function_is_reported() {
        let mut unit = UnitData::new(
            UnitKind::Function,
            UnitName::global("f"),
            Signature::new_func(vec![], void_ty()),
        );
        let mut b = UnitBuilder::new(&mut unit);
        let entry = b.block("entry");
        b.append_to(entry);
        let mut data = InstData::new(crate::ir::Opcode::Halt, vec![]);
        data.blocks = vec![];
        b.build(data);
        let errors = verify_unit(&unit).unwrap_err();
        assert!(errors.iter().any(|e| e.message.contains("not allowed")));
    }

    #[test]
    fn entity_dialects() {
        // A netlist entity: only sig/const.
        let mut net = UnitData::new(
            UnitKind::Entity,
            UnitName::global("net"),
            Signature::new_entity(vec![], vec![signal_ty(int_ty(1))]),
        );
        {
            let mut b = UnitBuilder::new(&mut net);
            let zero = b.ins_const(ConstValue::int(1, 0));
            b.sig(zero);
        }
        assert_eq!(unit_dialect(&net), Dialect::Netlist);

        // A structural entity: contains arithmetic.
        let mut s = UnitData::new(
            UnitKind::Entity,
            UnitName::global("s"),
            Signature::new_entity(vec![signal_ty(int_ty(8))], vec![signal_ty(int_ty(8))]),
        );
        {
            let a = s.arg_value(0);
            let q = s.arg_value(1);
            let mut b = UnitBuilder::new(&mut s);
            let ap = b.prb(a);
            let one = b.const_int(8, 1);
            let sum = b.add(ap, one);
            let delay = b.const_time(TimeValue::ZERO);
            b.drv(q, sum, delay);
        }
        assert_eq!(unit_dialect(&s), Dialect::Structural);
        assert!(verify_unit(&s).is_ok());

        // A process makes the module behavioural.
        let mut module = Module::new();
        module.add_unit(net);
        module.add_unit(s);
        assert_eq!(module_dialect(&module), Dialect::Structural);
        module.add_unit(valid_process());
        assert_eq!(module_dialect(&module), Dialect::Behavioural);
        assert!(verify_dialect(&module, Dialect::Behavioural).is_ok());
        assert!(verify_dialect(&module, Dialect::Structural).is_err());
    }

    #[test]
    fn verify_module_aggregates_errors() {
        let mut module = Module::new();
        let mut bad = UnitData::new(
            UnitKind::Function,
            UnitName::global("bad"),
            Signature::new_func(vec![], void_ty()),
        );
        bad.create_block(None);
        module.add_unit(bad);
        module.add_unit(valid_process());
        let errors = verify_module(&module).unwrap_err();
        assert_eq!(errors.len(), 1);
    }
}
