//! The LLHD type system.
//!
//! LLHD is strongly typed: every value carries a [`Type`]. Besides the types
//! common to imperative compiler IRs (`void`, `iN`, pointers, arrays,
//! structs), LLHD defines hardware-specific types: `time` for points in
//! physical time, `nN` enumerations, `lN` nine-valued logic (IEEE 1164), and
//! `T$` signals carrying a value of type `T`.
//!
//! Types are cheap to clone: a [`Type`] is a reference-counted handle to an
//! immutable [`TypeKind`].

use std::fmt;
use std::sync::Arc;

/// A handle to an LLHD type.
///
/// Dereferences to [`TypeKind`]. Equality compares structurally.
///
/// # Examples
///
/// ```
/// use llhd::ty::{int_ty, signal_ty};
/// let t = signal_ty(int_ty(32));
/// assert!(t.is_signal());
/// assert_eq!(t.unwrap_signal(), &int_ty(32));
/// assert_eq!(format!("{}", t), "i32$");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Type(Arc<TypeKind>);

/// The different kinds of types in LLHD.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TypeKind {
    /// The `void` type: no value.
    Void,
    /// The `time` type: a point in physical time plus delta/epsilon steps.
    Time,
    /// An `iN` integer type of `N` bits.
    Int(usize),
    /// An `nN` enumeration type with `N` distinct states.
    Enum(usize),
    /// An `lN` nine-valued logic type of `N` digits (IEEE 1164).
    Logic(usize),
    /// A `T*` pointer to memory holding a value of type `T`.
    Pointer(Type),
    /// A `T$` signal carrying a value of type `T`.
    Signal(Type),
    /// An `[N x T]` array of `N` elements of type `T`.
    Array(usize, Type),
    /// A `{T1, T2, ...}` structure.
    Struct(Vec<Type>),
    /// A `(A1, A2, ...) -> R` function type.
    Func(Vec<Type>, Type),
    /// An `(I1, ...) -> (O1, ...)` entity/process signature type.
    Entity(Vec<Type>, Vec<Type>),
}

impl std::ops::Deref for Type {
    type Target = TypeKind;
    fn deref(&self) -> &TypeKind {
        &self.0
    }
}

impl Type {
    /// Create a new type from a [`TypeKind`].
    pub fn new(kind: TypeKind) -> Self {
        Type(Arc::new(kind))
    }

    /// The kind of this type.
    pub fn kind(&self) -> &TypeKind {
        &self.0
    }

    /// Check whether this is the void type.
    pub fn is_void(&self) -> bool {
        matches!(**self, TypeKind::Void)
    }

    /// Check whether this is the time type.
    pub fn is_time(&self) -> bool {
        matches!(**self, TypeKind::Time)
    }

    /// Check whether this is an integer type.
    pub fn is_int(&self) -> bool {
        matches!(**self, TypeKind::Int(_))
    }

    /// Check whether this is an enumeration type.
    pub fn is_enum(&self) -> bool {
        matches!(**self, TypeKind::Enum(_))
    }

    /// Check whether this is a nine-valued logic type.
    pub fn is_logic(&self) -> bool {
        matches!(**self, TypeKind::Logic(_))
    }

    /// Check whether this is a pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(**self, TypeKind::Pointer(_))
    }

    /// Check whether this is a signal type.
    pub fn is_signal(&self) -> bool {
        matches!(**self, TypeKind::Signal(_))
    }

    /// Check whether this is an array type.
    pub fn is_array(&self) -> bool {
        matches!(**self, TypeKind::Array(..))
    }

    /// Check whether this is a struct type.
    pub fn is_struct(&self) -> bool {
        matches!(**self, TypeKind::Struct(_))
    }

    /// Check whether this is a function type.
    pub fn is_func(&self) -> bool {
        matches!(**self, TypeKind::Func(..))
    }

    /// Check whether this is an entity signature type.
    pub fn is_entity(&self) -> bool {
        matches!(**self, TypeKind::Entity(..))
    }

    /// Get the bit width of an `iN`, `nN`, or `lN` type.
    ///
    /// Returns `None` for any other type.
    pub fn width(&self) -> Option<usize> {
        match **self {
            TypeKind::Int(w) | TypeKind::Enum(w) | TypeKind::Logic(w) => Some(w),
            _ => None,
        }
    }

    /// Get the width of an integer type.
    ///
    /// # Panics
    ///
    /// Panics if the type is not an integer type.
    pub fn unwrap_int(&self) -> usize {
        match **self {
            TypeKind::Int(w) => w,
            _ => panic!("type {} is not an integer", self),
        }
    }

    /// Get the number of states of an enum type.
    ///
    /// # Panics
    ///
    /// Panics if the type is not an enum type.
    pub fn unwrap_enum(&self) -> usize {
        match **self {
            TypeKind::Enum(w) => w,
            _ => panic!("type {} is not an enum", self),
        }
    }

    /// Get the number of digits of a logic type.
    ///
    /// # Panics
    ///
    /// Panics if the type is not a logic type.
    pub fn unwrap_logic(&self) -> usize {
        match **self {
            TypeKind::Logic(w) => w,
            _ => panic!("type {} is not a logic type", self),
        }
    }

    /// Get the element type of a pointer.
    ///
    /// # Panics
    ///
    /// Panics if the type is not a pointer type.
    pub fn unwrap_pointer(&self) -> &Type {
        match **self {
            TypeKind::Pointer(ref t) => t,
            _ => panic!("type {} is not a pointer", self),
        }
    }

    /// Get the element type of a signal.
    ///
    /// # Panics
    ///
    /// Panics if the type is not a signal type.
    pub fn unwrap_signal(&self) -> &Type {
        match **self {
            TypeKind::Signal(ref t) => t,
            _ => panic!("type {} is not a signal", self),
        }
    }

    /// Get the length and element type of an array.
    ///
    /// # Panics
    ///
    /// Panics if the type is not an array type.
    pub fn unwrap_array(&self) -> (usize, &Type) {
        match **self {
            TypeKind::Array(len, ref t) => (len, t),
            _ => panic!("type {} is not an array", self),
        }
    }

    /// Get the field types of a struct.
    ///
    /// # Panics
    ///
    /// Panics if the type is not a struct type.
    pub fn unwrap_struct(&self) -> &[Type] {
        match **self {
            TypeKind::Struct(ref fields) => fields,
            _ => panic!("type {} is not a struct", self),
        }
    }

    /// Get the argument and return types of a function type.
    ///
    /// # Panics
    ///
    /// Panics if the type is not a function type.
    pub fn unwrap_func(&self) -> (&[Type], &Type) {
        match **self {
            TypeKind::Func(ref args, ref ret) => (args, ret),
            _ => panic!("type {} is not a function", self),
        }
    }

    /// Get the input and output types of an entity signature type.
    ///
    /// # Panics
    ///
    /// Panics if the type is not an entity signature type.
    pub fn unwrap_entity(&self) -> (&[Type], &[Type]) {
        match **self {
            TypeKind::Entity(ref ins, ref outs) => (ins, outs),
            _ => panic!("type {} is not an entity signature", self),
        }
    }

    /// The type carried behind a signal or pointer, or the type itself.
    ///
    /// `i32$` and `i32*` both strip to `i32`; `i32` strips to itself.
    pub fn strip(&self) -> &Type {
        match **self {
            TypeKind::Signal(ref t) | TypeKind::Pointer(ref t) => t,
            _ => self,
        }
    }

    /// An estimate of the number of bits needed to store a value of this type
    /// in hardware (signals and pointers count their payload).
    pub fn bit_size(&self) -> usize {
        match **self {
            TypeKind::Void | TypeKind::Time => 0,
            TypeKind::Int(w) | TypeKind::Logic(w) => w,
            TypeKind::Enum(n) => {
                // ceil(log2(n)) bits, at least 1
                let mut bits = 0;
                while (1usize << bits) < n {
                    bits += 1;
                }
                bits.max(1)
            }
            TypeKind::Pointer(ref t) | TypeKind::Signal(ref t) => t.bit_size(),
            TypeKind::Array(len, ref t) => len * t.bit_size(),
            TypeKind::Struct(ref fields) => fields.iter().map(|t| t.bit_size()).sum(),
            TypeKind::Func(..) | TypeKind::Entity(..) => 0,
        }
    }

    /// An estimate of the in-memory footprint of this type descriptor in
    /// bytes, used for the Table 4 size accounting.
    pub fn memory_size(&self) -> usize {
        let inner = match **self {
            TypeKind::Pointer(ref t) | TypeKind::Signal(ref t) => t.memory_size(),
            TypeKind::Array(_, ref t) => t.memory_size(),
            TypeKind::Struct(ref fields) => fields.iter().map(|t| t.memory_size()).sum(),
            TypeKind::Func(ref args, ref ret) => {
                args.iter().map(|t| t.memory_size()).sum::<usize>() + ret.memory_size()
            }
            TypeKind::Entity(ref ins, ref outs) => ins
                .iter()
                .chain(outs.iter())
                .map(|t| t.memory_size())
                .sum(),
            _ => 0,
        };
        std::mem::size_of::<TypeKind>() + inner
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match **self {
            TypeKind::Void => write!(f, "void"),
            TypeKind::Time => write!(f, "time"),
            TypeKind::Int(w) => write!(f, "i{}", w),
            TypeKind::Enum(w) => write!(f, "n{}", w),
            TypeKind::Logic(w) => write!(f, "l{}", w),
            TypeKind::Pointer(ref t) => write!(f, "{}*", t),
            TypeKind::Signal(ref t) => write!(f, "{}$", t),
            TypeKind::Array(len, ref t) => write!(f, "[{} x {}]", len, t),
            TypeKind::Struct(ref fields) => {
                write!(f, "{{")?;
                for (i, t) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", t)?;
                }
                write!(f, "}}")
            }
            TypeKind::Func(ref args, ref ret) => {
                write!(f, "(")?;
                for (i, t) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", t)?;
                }
                write!(f, ") {}", ret)
            }
            TypeKind::Entity(ref ins, ref outs) => {
                write!(f, "(")?;
                for (i, t) in ins.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", t)?;
                }
                write!(f, ") -> (")?;
                for (i, t) in outs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", t)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Create a `void` type.
pub fn void_ty() -> Type {
    Type::new(TypeKind::Void)
}

/// Create a `time` type.
pub fn time_ty() -> Type {
    Type::new(TypeKind::Time)
}

/// Create an `iN` integer type.
pub fn int_ty(width: usize) -> Type {
    Type::new(TypeKind::Int(width))
}

/// Create an `nN` enumeration type.
pub fn enum_ty(states: usize) -> Type {
    Type::new(TypeKind::Enum(states))
}

/// Create an `lN` nine-valued logic type.
pub fn logic_ty(width: usize) -> Type {
    Type::new(TypeKind::Logic(width))
}

/// Create a `T*` pointer type.
pub fn pointer_ty(inner: Type) -> Type {
    Type::new(TypeKind::Pointer(inner))
}

/// Create a `T$` signal type.
pub fn signal_ty(inner: Type) -> Type {
    Type::new(TypeKind::Signal(inner))
}

/// Create an `[N x T]` array type.
pub fn array_ty(len: usize, inner: Type) -> Type {
    Type::new(TypeKind::Array(len, inner))
}

/// Create a `{T1, T2, ...}` struct type.
pub fn struct_ty(fields: Vec<Type>) -> Type {
    Type::new(TypeKind::Struct(fields))
}

/// Create a function type.
pub fn func_ty(args: Vec<Type>, ret: Type) -> Type {
    Type::new(TypeKind::Func(args, ret))
}

/// Create an entity signature type.
pub fn entity_ty(inputs: Vec<Type>, outputs: Vec<Type>) -> Type {
    Type::new(TypeKind::Entity(inputs, outputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_simple_types() {
        assert_eq!(void_ty().to_string(), "void");
        assert_eq!(time_ty().to_string(), "time");
        assert_eq!(int_ty(42).to_string(), "i42");
        assert_eq!(enum_ty(7).to_string(), "n7");
        assert_eq!(logic_ty(9).to_string(), "l9");
    }

    #[test]
    fn display_compound_types() {
        assert_eq!(pointer_ty(int_ty(8)).to_string(), "i8*");
        assert_eq!(signal_ty(int_ty(32)).to_string(), "i32$");
        assert_eq!(array_ty(4, int_ty(16)).to_string(), "[4 x i16]");
        assert_eq!(
            struct_ty(vec![int_ty(1), time_ty()]).to_string(),
            "{i1, time}"
        );
        assert_eq!(
            func_ty(vec![int_ty(32), int_ty(32)], void_ty()).to_string(),
            "(i32, i32) void"
        );
        assert_eq!(
            entity_ty(vec![signal_ty(int_ty(1))], vec![signal_ty(int_ty(8))]).to_string(),
            "(i1$) -> (i8$)"
        );
    }

    #[test]
    fn structural_equality() {
        assert_eq!(int_ty(32), int_ty(32));
        assert_ne!(int_ty(32), int_ty(31));
        assert_eq!(signal_ty(int_ty(8)), signal_ty(int_ty(8)));
        assert_ne!(signal_ty(int_ty(8)), pointer_ty(int_ty(8)));
        assert_eq!(
            struct_ty(vec![int_ty(1), int_ty(2)]),
            struct_ty(vec![int_ty(1), int_ty(2)])
        );
    }

    #[test]
    fn predicates() {
        assert!(void_ty().is_void());
        assert!(int_ty(4).is_int());
        assert!(enum_ty(4).is_enum());
        assert!(logic_ty(4).is_logic());
        assert!(signal_ty(int_ty(4)).is_signal());
        assert!(pointer_ty(int_ty(4)).is_pointer());
        assert!(array_ty(3, int_ty(4)).is_array());
        assert!(struct_ty(vec![]).is_struct());
        assert!(!int_ty(4).is_signal());
    }

    #[test]
    fn unwrap_accessors() {
        assert_eq!(int_ty(12).unwrap_int(), 12);
        assert_eq!(enum_ty(5).unwrap_enum(), 5);
        assert_eq!(logic_ty(3).unwrap_logic(), 3);
        assert_eq!(signal_ty(int_ty(8)).unwrap_signal(), &int_ty(8));
        assert_eq!(pointer_ty(int_ty(8)).unwrap_pointer(), &int_ty(8));
        let a = array_ty(7, int_ty(2));
        assert_eq!(a.unwrap_array(), (7, &int_ty(2)));
        let s = struct_ty(vec![int_ty(1), int_ty(2)]);
        assert_eq!(s.unwrap_struct(), &[int_ty(1), int_ty(2)]);
    }

    #[test]
    #[should_panic]
    fn unwrap_int_panics_on_wrong_type() {
        void_ty().unwrap_int();
    }

    #[test]
    fn strip_signal_and_pointer() {
        assert_eq!(signal_ty(int_ty(8)).strip(), &int_ty(8));
        assert_eq!(pointer_ty(int_ty(8)).strip(), &int_ty(8));
        assert_eq!(int_ty(8).strip(), &int_ty(8));
    }

    #[test]
    fn bit_sizes() {
        assert_eq!(int_ty(32).bit_size(), 32);
        assert_eq!(logic_ty(9).bit_size(), 9);
        assert_eq!(enum_ty(2).bit_size(), 1);
        assert_eq!(enum_ty(3).bit_size(), 2);
        assert_eq!(enum_ty(9).bit_size(), 4);
        assert_eq!(array_ty(4, int_ty(8)).bit_size(), 32);
        assert_eq!(struct_ty(vec![int_ty(1), int_ty(31)]).bit_size(), 32);
        assert_eq!(signal_ty(int_ty(16)).bit_size(), 16);
        assert_eq!(void_ty().bit_size(), 0);
    }

    #[test]
    fn width_helper() {
        assert_eq!(int_ty(5).width(), Some(5));
        assert_eq!(logic_ty(5).width(), Some(5));
        assert_eq!(enum_ty(5).width(), Some(5));
        assert_eq!(void_ty().width(), None);
        assert_eq!(signal_ty(int_ty(5)).width(), None);
    }

    #[test]
    fn memory_size_is_positive_and_monotone() {
        assert!(int_ty(8).memory_size() > 0);
        assert!(struct_ty(vec![int_ty(8), int_ty(8)]).memory_size() > int_ty(8).memory_size());
    }
}
