//! The in-memory LLHD intermediate representation.
//!
//! A [`Module`] contains [`units`](UnitData): functions, processes, and
//! entities. Each unit owns its values, basic blocks, and instructions,
//! addressed by the dense handles [`Value`], [`Block`], and [`Inst`]. The
//! [`UnitBuilder`] provides a convenient API to emit instructions.

mod builder;
mod inst;
mod module;
pub mod size;
mod unit;

pub use builder::UnitBuilder;
pub use inst::{InstData, Opcode, RegMode, RegTrigger};
pub use module::{ExtUnitData, LinkError, Module};
pub use unit::{BlockData, UnitData, UnitKind, ValueData, ValueDef};

use crate::ty::{self, Type};
use std::fmt;

/// Declare a dense ID newtype used to address IR entities within a unit or
/// module.
macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index of this handle.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct a handle from a raw index.
            pub fn from_index(index: usize) -> Self {
                $name(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_type!(
    /// A handle to an SSA value within a unit.
    Value,
    "v"
);
id_type!(
    /// A handle to an instruction within a unit.
    Inst,
    "i"
);
id_type!(
    /// A handle to a basic block within a unit.
    Block,
    "bb"
);
id_type!(
    /// A handle to an external unit declaration within a unit.
    ExtUnit,
    "ext"
);
id_type!(
    /// A handle to a unit within a module.
    UnitId,
    "u"
);

/// The name of a unit or external declaration.
///
/// LLHD distinguishes global names (`@foo`, visible across modules during
/// linking), local names (`%foo`, module-private), and anonymous names
/// (`%42`).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum UnitName {
    /// A global name `@name`.
    Global(String),
    /// A local name `%name`.
    Local(String),
    /// An anonymous name `%N`.
    Anonymous(u32),
}

impl UnitName {
    /// Create a global name.
    pub fn global(name: impl Into<String>) -> Self {
        UnitName::Global(name.into())
    }

    /// Create a local name.
    pub fn local(name: impl Into<String>) -> Self {
        UnitName::Local(name.into())
    }

    /// Whether this name is visible to other modules during linking.
    pub fn is_global(&self) -> bool {
        matches!(self, UnitName::Global(_))
    }

    /// The bare identifier without sigil, if any.
    pub fn ident(&self) -> Option<&str> {
        match self {
            UnitName::Global(s) | UnitName::Local(s) => Some(s),
            UnitName::Anonymous(_) => None,
        }
    }
}

impl fmt::Display for UnitName {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match self {
            UnitName::Global(s) => write!(f, "@{}", s),
            UnitName::Local(s) => write!(f, "%{}", s),
            UnitName::Anonymous(n) => write!(f, "%{}", n),
        }
    }
}

/// The signature of a unit.
///
/// Functions have `inputs` (argument types) and a `return_type`. Processes
/// and entities have `inputs` and `outputs`, all of which must be signal
/// types, and a void return type.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Signature {
    inputs: Vec<Type>,
    outputs: Vec<Type>,
    return_type: Option<Type>,
}

impl Signature {
    /// Create an empty signature (no inputs, no outputs, void return).
    pub fn new() -> Self {
        Signature::default()
    }

    /// Create a function signature.
    pub fn new_func(args: Vec<Type>, return_type: Type) -> Self {
        Signature {
            inputs: args,
            outputs: vec![],
            return_type: Some(return_type),
        }
    }

    /// Create a process or entity signature from input and output signal
    /// types.
    pub fn new_entity(inputs: Vec<Type>, outputs: Vec<Type>) -> Self {
        Signature {
            inputs,
            outputs,
            return_type: None,
        }
    }

    /// Add an input argument type. Returns the argument index.
    pub fn add_input(&mut self, ty: Type) -> usize {
        self.inputs.push(ty);
        self.inputs.len() - 1
    }

    /// Add an output argument type. Returns the argument index relative to
    /// the outputs.
    pub fn add_output(&mut self, ty: Type) -> usize {
        self.outputs.push(ty);
        self.outputs.len() - 1
    }

    /// Set the return type.
    pub fn set_return_type(&mut self, ty: Type) {
        self.return_type = Some(ty);
    }

    /// The input argument types.
    pub fn inputs(&self) -> &[Type] {
        &self.inputs
    }

    /// The output argument types.
    pub fn outputs(&self) -> &[Type] {
        &self.outputs
    }

    /// The return type (void unless explicitly set).
    pub fn return_type(&self) -> Type {
        self.return_type.clone().unwrap_or_else(ty::void_ty)
    }

    /// The total number of arguments (inputs followed by outputs).
    pub fn num_args(&self) -> usize {
        self.inputs.len() + self.outputs.len()
    }

    /// The type of argument `index`, counting inputs then outputs.
    pub fn arg_type(&self, index: usize) -> Type {
        if index < self.inputs.len() {
            self.inputs[index].clone()
        } else {
            self.outputs[index - self.inputs.len()].clone()
        }
    }

    /// Whether argument `index` is an output.
    pub fn is_output(&self, index: usize) -> bool {
        index >= self.inputs.len()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t)?;
        }
        write!(f, ")")?;
        if !self.outputs.is_empty() || self.return_type.is_none() {
            write!(f, " -> (")?;
            for (i, t) in self.outputs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", t)?;
            }
            write!(f, ")")?;
        } else {
            write!(f, " {}", self.return_type())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::*;

    #[test]
    fn id_types() {
        let v = Value(3);
        assert_eq!(v.index(), 3);
        assert_eq!(Value::from_index(3), v);
        assert_eq!(format!("{}", v), "v3");
        assert_eq!(format!("{:?}", Block(1)), "bb1");
    }

    #[test]
    fn unit_names() {
        assert_eq!(UnitName::global("acc").to_string(), "@acc");
        assert_eq!(UnitName::local("tmp").to_string(), "%tmp");
        assert_eq!(UnitName::Anonymous(7).to_string(), "%7");
        assert!(UnitName::global("acc").is_global());
        assert!(!UnitName::local("acc").is_global());
        assert_eq!(UnitName::global("acc").ident(), Some("acc"));
        assert_eq!(UnitName::Anonymous(7).ident(), None);
    }

    #[test]
    fn function_signature() {
        let sig = Signature::new_func(vec![int_ty(32), int_ty(32)], void_ty());
        assert_eq!(sig.num_args(), 2);
        assert_eq!(sig.arg_type(1), int_ty(32));
        assert_eq!(sig.return_type(), void_ty());
        assert!(!sig.is_output(1));
        assert_eq!(sig.to_string(), "(i32, i32) void");
    }

    #[test]
    fn entity_signature() {
        let sig = Signature::new_entity(
            vec![signal_ty(int_ty(1)), signal_ty(int_ty(32))],
            vec![signal_ty(int_ty(32))],
        );
        assert_eq!(sig.num_args(), 3);
        assert!(sig.is_output(2));
        assert!(!sig.is_output(1));
        assert_eq!(sig.arg_type(2), signal_ty(int_ty(32)));
        assert_eq!(sig.to_string(), "(i1$, i32$) -> (i32$)");
    }

    #[test]
    fn signature_building() {
        let mut sig = Signature::new();
        assert_eq!(sig.add_input(signal_ty(int_ty(1))), 0);
        assert_eq!(sig.add_input(signal_ty(int_ty(8))), 1);
        assert_eq!(sig.add_output(signal_ty(int_ty(8))), 0);
        assert_eq!(sig.num_args(), 3);
        assert_eq!(sig.return_type(), void_ty());
    }
}
